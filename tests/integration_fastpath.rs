//! The scheduler-bypass fast path is a pure host-speed optimization: with
//! it on or off, a simulation must produce the *same* virtual-time
//! execution — same events, same times, same sequence numbers, same
//! per-actor results. These tests pin that contract.

use proptest::prelude::*;

use hupc::gasnet::FaultPlan;
use hupc::sim::{set_fast_path_default, time, Simulation, SimulationStats, TraceEvent};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

/// splitmix64 — the test's own op-stream generator, so one `seed` pins an
/// entire random program.
fn next(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one seed-derived random program and return its full event trace plus
/// the stats. The program mixes every simcall shape the bypass touches:
/// plain advances, lazy advances, contended resource charges, mutex-guarded
/// work, child spawn/join — with a barrier closing each round so lazy time
/// is always flushed and all actors stay in lockstep rounds.
fn run_program(seed: u64, fast: bool) -> (Vec<TraceEvent>, SimulationStats) {
    let mut sim = Simulation::new();
    sim.set_fast_path(fast);
    let (res, bar, mtx, n_actors, rounds) = {
        let mut k = sim.kernel();
        k.record_event_log(true);
        let n_actors = 2 + (seed % 3) as usize;
        (
            k.new_resource("shared-link"),
            k.new_barrier(n_actors),
            k.new_mutex(),
            n_actors,
            1 + (seed >> 8) % 4,
        )
    };
    for a in 0..n_actors {
        sim.spawn(format!("actor{a}"), move |ctx| {
            let mut s = seed ^ (a as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
            for _ in 0..rounds {
                let n_ops = next(&mut s) % 8;
                for _ in 0..n_ops {
                    match next(&mut s) % 5 {
                        0 => ctx.advance(time::ns(1 + next(&mut s) % 1_000)),
                        1 => ctx.advance_lazy(time::ns(1 + next(&mut s) % 1_000)),
                        2 => ctx.acquire(res, time::ns(1 + next(&mut s) % 500)),
                        3 => {
                            ctx.mutex_lock(mtx);
                            ctx.advance(time::ns(1 + next(&mut s) % 200));
                            ctx.mutex_unlock(mtx);
                        }
                        _ => {
                            let dt = time::ns(1 + next(&mut s) % 300);
                            let child =
                                ctx.spawn("child", move |c| c.advance(dt));
                            ctx.join(child);
                        }
                    }
                }
                ctx.barrier_wait(bar);
            }
        });
    }
    let stats = sim.run();
    let log = sim.kernel().take_event_log();
    (log, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-identical virtual-time behavior, fast path on vs off: the full
    /// `(time, seq, kind)` event trace matches, along with end time, event
    /// count and actor count. Only the host-speed counters may differ.
    #[test]
    fn fast_path_trace_identical(seed in any::<u64>()) {
        let (trace_on, stats_on) = run_program(seed, true);
        let (trace_off, stats_off) = run_program(seed, false);
        prop_assert_eq!(trace_on, trace_off);
        prop_assert_eq!(stats_on.end_time, stats_off.end_time);
        prop_assert_eq!(stats_on.events, stats_off.events);
        prop_assert_eq!(stats_on.actors, stats_off.actors);
        // The fast path must actually relieve the scheduler when it fires.
        prop_assert_eq!(
            stats_off.fast_path_hits, 0,
            "slow mode must never bypass"
        );
        prop_assert!(stats_on.handoffs <= stats_off.handoffs);
    }
}

/// End-to-end regression at application scale: a faulty UTS run (packet
/// loss, retransmissions, backoff) lands on the exact same virtual-time
/// results with the bypass on or off. Uses the process-global default
/// because `run_uts` builds its own `Simulation`; every other test in this
/// binary sets the per-simulation flag explicitly, so toggling the global
/// here cannot perturb them.
#[test]
fn fault_uts_results_unchanged_by_fast_path() {
    let run = |fast: bool| {
        set_fast_path_default(fast);
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 13);
        cfg.fault = Some(FaultPlan::new(0xFEED).loss(0.05));
        let r = run_uts(cfg);
        set_fast_path_default(true);
        r
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast.total_nodes, slow.total_nodes);
    assert_eq!(fast.max_depth, slow.max_depth);
    assert_eq!(fast.leaves, slow.leaves);
    assert_eq!(fast.comm_failures, slow.comm_failures);
    assert!(
        (fast.seconds - slow.seconds).abs() < 1e-12,
        "virtual time diverged: {} vs {}",
        fast.seconds,
        slow.seconds
    );
}

/// The near-bucket + lazy clock must not leak into observable time: a
/// simple two-actor producer/consumer program's end time is a closed-form
/// value, independent of the fast-path setting.
#[test]
fn closed_form_end_time_both_modes() {
    for fast in [true, false] {
        let mut sim = Simulation::new();
        sim.set_fast_path(fast);
        let bar = sim.kernel().new_barrier(2);
        for id in 0..2u64 {
            sim.spawn(format!("w{id}"), move |ctx| {
                for _ in 0..100 {
                    ctx.advance_lazy(time::us(1) * (id + 1));
                }
                ctx.barrier_wait(bar);
            });
        }
        let stats = sim.run();
        assert_eq!(stats.end_time, time::us(200));
    }
}
