//! Property-based invariants over the core data structures and models.

use proptest::prelude::*;

use hupc::fft::{dft_reference, Complex, Direction, FftPlan};
use hupc::net::Conduit;
use hupc::prelude::*;
use hupc::uts::{sequential_traverse, Node, TreeParams};

// ----- block-cyclic layout ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ownership and local indices partition every element exactly once and
    /// round-trip through the affinity iterator.
    #[test]
    fn shared_array_layout_partitions(
        threads in 1usize..5, // the one-node test platform has 4 PUs
        n in 1usize..400,
        block in 0usize..33,
    ) {
        let job = UpcJob::new(UpcConfig::test_default(threads, 1));
        let a = job.alloc_shared::<f64>(n, block);
        let mut seen = vec![0u32; n];
        for t in 0..threads {
            for i in a.indices_with_affinity(t) {
                prop_assert_eq!(a.owner(i), t);
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // local indices are injective per thread
        for t in 0..threads {
            let mut locs: Vec<usize> =
                a.indices_with_affinity(t).map(|i| a.local_index(i)).collect();
            let before = locs.len();
            locs.sort_unstable();
            locs.dedup();
            prop_assert_eq!(locs.len(), before);
            prop_assert!(locs.iter().all(|&l| l < a.per_thread_elems()));
        }
    }

    /// FFT inverse recovers random signals for every power-of-two length.
    #[test]
    fn fft_round_trip(log_n in 0u32..11, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n);
        let mut s = seed | 1;
        let sig: Vec<Complex> = (0..n).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let re = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let im = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
            Complex::new(re, im)
        }).collect();
        let mut y = sig.clone();
        plan.transform(&mut y, Direction::Forward);
        plan.transform(&mut y, Direction::Inverse);
        for (a, b) in sig.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// FFT agrees with the O(n²) DFT on small sizes.
    #[test]
    fn fft_matches_dft(log_n in 0u32..6, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let mut s = seed | 1;
        let sig: Vec<Complex> = (0..n).map(|_| {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            Complex::new(((s >> 40) as f64) / 1e6, ((s >> 20) as f64 % 1e6) / 1e6)
        }).collect();
        let want = dft_reference(&sig, Direction::Forward);
        let mut got = sig.clone();
        FftPlan::new(n).transform(&mut got, Direction::Forward);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.re - w.re).abs() < 1e-7);
            prop_assert!((g.im - w.im).abs() < 1e-7);
        }
    }

    /// UTS node serialization round-trips for arbitrary digests/depths.
    #[test]
    fn uts_node_words_round_trip(bytes in prop::array::uniform20(any::<u8>()), depth in any::<u32>()) {
        let n = Node { digest: bytes, depth };
        prop_assert_eq!(Node::from_words(&n.to_words()), n);
    }

    /// Conduit costs are monotone in message size.
    #[test]
    fn conduit_costs_monotone(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        for c in [Conduit::ib_qdr(), Conduit::ib_ddr(), Conduit::gige()] {
            prop_assert!(c.conn_service(lo) <= c.conn_service(hi));
            prop_assert!(c.nic_service(lo) <= c.nic_service(hi));
            prop_assert!(c.uncontended_delivery(lo) <= c.uncontended_delivery(hi));
        }
    }

    /// Affinity mask algebra behaves like sets.
    #[test]
    fn mask_set_algebra(xs in prop::collection::vec(0usize..128, 0..40),
                        ys in prop::collection::vec(0usize..128, 0..40)) {
        use hupc::topo::{AffinityMask, PuId};
        let a = AffinityMask::from_pus(128, xs.iter().map(|&i| PuId(i)));
        let b = AffinityMask::from_pus(128, ys.iter().map(|&i| PuId(i)));
        let both = a.and(&b);
        let either = a.or(&b);
        for i in 0..128 {
            let p = PuId(i);
            prop_assert_eq!(both.contains(p), a.contains(p) && b.contains(p));
            prop_assert_eq!(either.contains(p), a.contains(p) || b.contains(p));
        }
        prop_assert!(both.count() <= a.count().min(b.count()));
        prop_assert!(either.count() >= a.count().max(b.count()));
    }
}

proptest! {
    // Simulation-heavy properties get fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Virtual time is monotone under arbitrary op sequences, and the run
    /// is deterministic.
    #[test]
    fn virtual_time_monotone_and_deterministic(ops in prop::collection::vec(0u8..4, 1..20)) {
        fn run(ops: &[u8]) -> Time {
            let mut sim = Simulation::new();
            let bar = sim.kernel().new_barrier(2);
            let res = sim.kernel().new_resource("r");
            for t in 0..2u64 {
                let ops = ops.to_vec();
                sim.spawn(format!("a{t}"), move |ctx| {
                    let mut last = ctx.now();
                    for (i, &op) in ops.iter().enumerate() {
                        match op {
                            0 => ctx.advance(time::ns(50 + t * 7 + i as u64)),
                            1 => ctx.acquire(res, time::ns(100)),
                            2 => ctx.barrier_wait(bar),
                            _ => ctx.advance(0),
                        }
                        assert!(ctx.now() >= last, "time went backwards");
                        last = ctx.now();
                    }
                });
            }
            sim.run().end_time
        }
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a, b);
    }

    /// UTS parallel count equals the sequential count for random small
    /// trees and arbitrary granularity.
    #[test]
    fn uts_count_invariant(seed in 1u32..200, gran in 1usize..9) {
        use hupc::uts::{run_uts, StealStrategy, UtsConfig};
        let seq = sequential_traverse(&TreeParams::small_binomial(seed));
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, seed);
        cfg.steal_granularity = gran;
        let r = run_uts(cfg);
        prop_assert_eq!(r.total_nodes, seq.0);
    }
}

// ----- fault model invariants ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An identity fault plan (no loss, no jitter, no degradation) is
    /// invisible: for any plan seed and transfer size, the run's end time
    /// and event count are bit-identical to a run with no plan at all.
    #[test]
    fn identity_fault_plan_is_invisible(plan_seed in any::<u64>(), len in 1usize..200) {
        fn run(fault: Option<FaultPlan>, len: usize) -> (Time, u64) {
            let mut cfg = UpcConfig::test_default(4, 2);
            cfg.gasnet.fault = fault;
            let job = UpcJob::new(cfg);
            let off = job.runtime().alloc_words(len);
            let stats = job.run(move |upc| {
                let me = upc.mythread();
                let data = vec![me as u64 + 1; len];
                upc.memput((me + 1) % 4, off, &data);
                upc.barrier();
                let mut back = vec![0u64; len];
                upc.memget((me + 3) % 4, off, &mut back);
                assert_eq!(back, vec![((me + 2) % 4) as u64 + 1; len]);
                upc.barrier();
            });
            (stats.end_time, stats.events)
        }
        let base = run(None, len);
        let planned = run(Some(FaultPlan::new(plan_seed)), len);
        prop_assert_eq!(base, planned);
    }

    /// Fault injection is reproducible: two runs under the same lossy,
    /// jittery plan are bit-identical, and a different seed is allowed to
    /// (and for this workload does) behave differently.
    #[test]
    fn same_seed_fault_runs_are_identical(plan_seed in any::<u64>(), tree_seed in 1u32..60) {
        use hupc::uts::{run_uts, StealStrategy, UtsConfig};
        fn run(plan_seed: u64, tree_seed: u32) -> (f64, u64, u64, u64) {
            let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, tree_seed);
            cfg.conduit = Conduit::gige();
            cfg.fault = Some(
                FaultPlan::new(plan_seed)
                    .loss(0.02)
                    .jitter(hupc::gasnet::Jitter::Uniform { max: time::us(3) }),
            );
            let r = run_uts(cfg);
            (r.seconds, r.local_steals, r.remote_steals, r.comm_failures)
        }
        let a = run(plan_seed, tree_seed);
        let b = run(plan_seed, tree_seed);
        prop_assert_eq!(a, b);
    }
}

// ----- zero-copy data plane + batched host kernels ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched child derivation (shared template, precomputed prefix, SIMD
    /// lane groups) is bit-identical to scalar `sha1_child` for arbitrary
    /// parents and index ranges, including ranges near `u32::MAX`.
    #[test]
    fn sha1_children_match_scalar(
        parent in prop::array::uniform20(any::<u8>()),
        start_lo in 0u32..1000,
        near_max in any::<bool>(),
        len in 0u32..40,
    ) {
        use hupc::uts::{sha1_child, sha1_children};
        let start = if near_max { u32::MAX - 50 + start_lo % 50 } else { start_lo };
        let end = start.saturating_add(len);
        let mut got = Vec::new();
        sha1_children(&parent, start..end, |i, d| got.push((i, d)));
        prop_assert_eq!(got.len() as u32, end - start);
        for (i, d) in got {
            prop_assert_eq!(d, sha1_child(&parent, i));
        }
    }

    /// The fused radix-4 sweep of `transform` produces bit-identical output
    /// to the plain radix-2 reference for every size and direction.
    #[test]
    fn radix4_bit_identical_to_radix2(
        log_n in 0u32..12,
        seed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n);
        let mut s = seed | 1;
        let sig: Vec<Complex> = (0..n).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let re = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let im = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
            Complex::new(re, im)
        }).collect();
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };
        let mut a = sig.clone();
        plan.transform(&mut a, dir);
        let mut b = sig;
        plan.transform_radix2(&mut b, dir);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The zero-copy bulk get (`memget_elems` via `memget_elems_into`)
    /// returns the same values AND charges the same virtual time as the
    /// historical staged path (fresh word buffer + per-element decode) it
    /// replaced.
    #[test]
    fn bulk_get_zero_copy_preserves_values_and_time(
        half_threads in 1usize..3,
        count in 1usize..80,
        seed in any::<u64>(),
    ) {
        use std::sync::Arc;
        fn run(threads: usize, count: usize, seed: u64, zero_copy: bool) -> (Time, Vec<[u64; 2]>) {
            let job = UpcJob::new(UpcConfig::test_default(threads, 2)); // network path
            let a = job.alloc_shared::<[u64; 2]>(threads * count, count);
            let out: Arc<SimCell<Vec<[u64; 2]>>> = Arc::new(SimCell::default());
            let out2 = Arc::clone(&out);
            let stats = job.run(move |upc| {
                let me = upc.mythread();
                for i in a.indices_with_affinity(me) {
                    a.poke(&upc, i, [seed ^ i as u64, i as u64]);
                }
                upc.barrier();
                if me == 0 {
                    let src = upc.threads() - 1;
                    let vals = if zero_copy {
                        a.memget_elems(&upc, src * count, count)
                    } else {
                        let mut words = vec![0u64; count * 2];
                        upc.memget(src, a.word_of(src * count), &mut words);
                        words.chunks_exact(2).map(<[u64; 2]>::from_words).collect()
                    };
                    out2.with_mut(|o| *o = vals);
                }
                upc.barrier();
            });
            (stats.end_time, Arc::try_unwrap(out).expect("still shared").into_inner())
        }
        let threads = 2 * half_threads;
        let staged = run(threads, count, seed, false);
        let zero = run(threads, count, seed, true);
        prop_assert_eq!(staged, zero);
    }
}
