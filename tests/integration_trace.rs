//! Observability-layer conformance: golden-trace replay, observational
//! freedom (tracing never perturbs virtual time), and merged-trace ordering.
//!
//! Golden files live in `tests/golden/*.jsonl`. To re-bless after an
//! intentional change to the event taxonomy or the simulated platform:
//!
//! ```text
//! HUPC_BLESS=1 cargo test --test integration_trace
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use hupc::gups::{run_gups, GupsConfig, Routing};
use hupc::fft::{run_ft_upc, FtConfig};
use hupc::prelude::*;
use hupc::trace::{to_chrome_trace, to_jsonl, Event, EventKind, TraceLevel, Tracer};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

/// Small per-actor rings so the committed goldens stay a few hundred KB.
/// Eviction is deterministic, so bounded traces are still byte-identical.
/// UTS needs a deeper ring: its reporting epilogue (nine allreduces) alone
/// emits a few hundred kernel events per actor, and the steal activity that
/// makes the golden interesting must survive it.
const GOLDEN_RING: usize = 256;
const GOLDEN_RING_UTS: usize = 2048;
/// FT's epilogue (checksum + phase-maximum reductions) now runs through the
/// staged collective provider, whose per-phase events would evict the FT
/// spans from a 256-entry ring.
const GOLDEN_RING_FT: usize = 1024;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Compare `got` against the committed golden (or overwrite it under
/// `HUPC_BLESS=1`), reporting the first mismatching line instead of dumping
/// two multi-thousand-line strings.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("HUPC_BLESS").is_some() {
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run with HUPC_BLESS=1 to create it")
    });
    if got == want {
        return;
    }
    let (mut line, mut g, mut w) = (0, "<eof>", "<eof>");
    for (i, pair) in got.lines().zip(want.lines()).enumerate() {
        if pair.0 != pair.1 {
            (line, g, w) = (i + 1, pair.0, pair.1);
            break;
        }
    }
    if line == 0 {
        line = got.lines().count().min(want.lines().count()) + 1;
        g = got.lines().nth(line - 1).unwrap_or("<eof>");
        w = want.lines().nth(line - 1).unwrap_or("<eof>");
    }
    panic!(
        "golden {name} diverged at line {line} \
         ({} got vs {} want lines)\n  got:  {g}\n  want: {w}",
        got.lines().count(),
        want.lines().count(),
    );
}

/// Run `work` twice under a fresh Full tracer and return the (byte-identical)
/// JSONL export. The double run IS the replay test: any nondeterminism in
/// event recording or the split near/far queue shows up as a diff here
/// before it can reach the goldens.
fn traced_jsonl(ring: usize, work: impl Fn()) -> String {
    let run_once = || {
        let t = Arc::new(Tracer::with_capacity(TraceLevel::Full, ring));
        let g = t.install();
        work();
        drop(g);
        to_jsonl(&t.merge())
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "trace replay is not byte-identical across runs");
    a
}

#[test]
fn golden_trace_uts() {
    // A few-hundred-node tree: big enough to force steals, small enough
    // that the bounded rings keep the interesting middle of the run.
    let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, 7);
    cfg.tree = hupc::uts::TreeParams::Binomial {
        b0: 30,
        m: 4,
        q: 0.2,
        seed: 7,
    };
    let jsonl = traced_jsonl(GOLDEN_RING_UTS, move || {
        let r = run_uts(cfg.clone());
        assert!(r.total_nodes > 0);
    });
    assert!(jsonl.contains("\"k\":\"steal_try\""), "no steal attempts traced");
    assert!(jsonl.contains("\"k\":\"lock\""), "no lock events traced");
    check_golden("uts_small.jsonl", &jsonl);
}

#[test]
fn golden_trace_ft() {
    let jsonl = traced_jsonl(GOLDEN_RING_FT, || {
        let r = run_ft_upc(FtConfig::test_custom(8, 8, 8, 1, 2, 2));
        assert!(r.total_seconds > 0.0);
    });
    assert!(jsonl.contains("\"k\":\"span_begin\""), "no FT spans traced");
    assert!(jsonl.contains("\"k\":\"put\""), "no puts traced");
    check_golden("ft_small.jsonl", &jsonl);
}

#[test]
fn golden_trace_gups() {
    let jsonl = traced_jsonl(GOLDEN_RING, || {
        let r = run_gups(GupsConfig::small(4, 2, Routing::PerThread));
        assert_eq!(r.errors, 0);
    });
    assert!(jsonl.contains("\"k\":\"span_begin\""), "no GUPS spans traced");
    check_golden("gups_small.jsonl", &jsonl);
}

/// The thread→coroutine switch is invisible to the observability layer:
/// the same workload traced on the OS-thread backend produces JSONL that is
/// byte-identical to the committed golden — which `golden_trace_gups` and
/// `golden_trace_uts` already check under the coroutine default. Same
/// `(t, seq)` total order, same payloads, same eviction.
#[test]
fn golden_traces_identical_across_backends() {
    use hupc::sim::{set_actor_backend_default, ActorBackend};
    // Restore the auto default even if a trace assertion panics, so this
    // test can't leak the OS-thread default into the rest of the binary.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_actor_backend_default(None);
        }
    }
    let _r = Restore;
    set_actor_backend_default(Some(ActorBackend::OsThread));
    let jsonl = traced_jsonl(GOLDEN_RING, || {
        let r = run_gups(GupsConfig::small(4, 2, Routing::PerThread));
        assert_eq!(r.errors, 0);
    });
    check_golden("gups_small.jsonl", &jsonl);
    let uts = traced_jsonl(GOLDEN_RING_UTS, || {
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, 7);
        cfg.tree = hupc::uts::TreeParams::Binomial {
            b0: 30,
            m: 4,
            q: 0.2,
            seed: 7,
        };
        let r = run_uts(cfg);
        assert!(r.total_nodes > 0);
    });
    check_golden("uts_small.jsonl", &uts);
}

#[test]
fn golden_trace_coll_allreduce() {
    // A hierarchical allreduce on 2 nodes: the golden pins the CollBegin/
    // CollEnd taxonomy (op | algo | phase payload packing) and the staged
    // intra/inter phase structure of the provider.
    let jsonl = traced_jsonl(GOLDEN_RING, || {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        CollDomain::install_auto(&job);
        job.run(|upc| {
            let me = upc.mythread() as u64;
            let mut v: Vec<u64> = (0..24).map(|i| me + i).collect();
            upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
            assert_eq!(v[0], 28);
            let s = upc.allreduce_sum_f64(me as f64);
            assert_eq!(s, 28.0);
        });
    });
    assert!(jsonl.contains("\"k\":\"coll_begin\""), "no coll events traced");
    assert!(jsonl.contains("\"k\":\"coll_end\""), "unbalanced coll events");
    check_golden("coll_allreduce_small.jsonl", &jsonl);
}

/// The chrome exporter must stay valid JSON with balanced span begin/ends
/// for a real workload (viewers silently drop malformed records).
#[test]
fn chrome_export_balances_spans() {
    let t = Arc::new(Tracer::new(TraceLevel::Full));
    let g = t.install();
    run_gups(GupsConfig::small(4, 2, Routing::Hierarchical));
    drop(g);
    let merged = t.merge();
    let begins = merged.iter().filter(|e| e.kind == EventKind::SpanBegin).count();
    let ends = merged.iter().filter(|e| e.kind == EventKind::SpanEnd).count();
    assert!(begins > 0);
    assert_eq!(begins, ends, "unbalanced spans");
    let chrome = to_chrome_trace(&merged);
    assert_eq!(chrome.matches("\"ph\":\"B\"").count(), begins);
    assert_eq!(chrome.matches("\"ph\":\"E\"").count(), ends);
    assert!(chrome.starts_with('{') && chrome.trim_end().ends_with('}'));
}

/// Steal metrics land in the registry keyed by topology location, and the
/// distance histogram sees every successful steal.
#[test]
fn uts_steal_metrics_are_recorded() {
    let t = Arc::new(Tracer::new(TraceLevel::Counters));
    let g = t.install();
    let r = run_uts(UtsConfig::small(4, 2, StealStrategy::LocalFirst, 11));
    drop(g);
    let steals = r.local_steals + r.remote_steals;
    assert!(steals > 0, "workload produced no steals");
    assert_eq!(t.metrics().counter_total("uts.steals"), steals);
    assert_eq!(t.metrics().counter_total("uts.steals_local"), r.local_steals);
    assert_eq!(t.metrics().counter_total("uts.steals_remote"), r.remote_steals);
    // Counters level records metrics only — no events, no seqs.
    assert_eq!(t.events_recorded(), 0);
}

fn assert_totally_ordered(m: &[Event]) {
    for w in m.windows(2) {
        assert!(
            (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
            "merged trace not strictly ordered: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    let mut seqs: Vec<u64> = m.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    let n = seqs.len();
    seqs.dedup();
    assert_eq!(seqs.len(), n, "duplicate trace seqs across actors");
}

proptest! {
    // Simulation-heavy properties: few cases, strong assertions.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Observational freedom under fault injection: for random `FaultPlan`
    /// seeds, a run with no tracer, a run at `Counters`, and a run at `Full`
    /// are bit-identical in end time, event counts, fast-path hits, and the
    /// application's own results.
    #[test]
    fn tracing_is_observationally_free_under_faults(
        plan_seed in any::<u64>(),
        tree_seed in 1u32..50,
    ) {
        fn uts_run(plan_seed: u64, tree_seed: u32, level: Option<TraceLevel>) -> (f64, u64, u64, u64, u64) {
            let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, tree_seed);
            cfg.conduit = Conduit::gige();
            cfg.fault = Some(
                FaultPlan::new(plan_seed)
                    .loss(0.03)
                    .jitter(Jitter::Uniform { max: hupc::sim::time::us(2) }),
            );
            let tracer = level.map(|l| Arc::new(Tracer::new(l)));
            let guard = tracer.as_ref().map(|t| t.install());
            let r = run_uts(cfg);
            drop(guard);
            if level == Some(TraceLevel::Full) {
                let t = tracer.unwrap();
                assert!(t.events_recorded() > 0, "Full tracer saw no events");
            }
            (r.seconds, r.total_nodes, r.local_steals, r.remote_steals, r.comm_failures)
        }
        let bare = uts_run(plan_seed, tree_seed, None);
        let counters = uts_run(plan_seed, tree_seed, Some(TraceLevel::Counters));
        let full = uts_run(plan_seed, tree_seed, Some(TraceLevel::Full));
        prop_assert_eq!(bare, counters);
        prop_assert_eq!(bare, full);
    }

    /// Observational freedom at the kernel-stats level: identical
    /// `SimulationStats` (end_time, events, fast_path_hits, handoffs,
    /// heap_ops) with tracing off vs Full, for random put/get sizes under a
    /// random fault plan seed.
    #[test]
    fn tracing_leaves_kernel_stats_bit_identical(
        plan_seed in any::<u64>(),
        len in 1usize..120,
    ) {
        fn run(plan_seed: u64, len: usize, traced: bool) -> (Time, u64, u64, u64, u64) {
            let mut cfg = UpcConfig::test_default(4, 2);
            cfg.gasnet.fault = Some(FaultPlan::new(plan_seed).loss(0.02));
            let tracer = traced.then(|| Arc::new(Tracer::new(TraceLevel::Full)));
            let guard = tracer.as_ref().map(|t| t.install());
            let job = UpcJob::new(cfg);
            let off = job.runtime().alloc_words(len);
            let lock = job.alloc_lock();
            let stats = job.run(move |upc| {
                let me = upc.mythread();
                let data = vec![me as u64 + 1; len];
                upc.memput((me + 1) % 4, off, &data);
                upc.barrier();
                let mut back = vec![0u64; len];
                upc.memget((me + 3) % 4, off, &mut back);
                lock.lock(&upc);
                lock.unlock(&upc);
                let _ = upc.allreduce_sum_u64(back[0]);
            });
            drop(guard);
            (stats.end_time, stats.events, stats.fast_path_hits, stats.handoffs, stats.heap_ops)
        }
        let off = run(plan_seed, len, false);
        let on = run(plan_seed, len, true);
        prop_assert_eq!(off, on);
    }

    /// The merged trace is totally ordered by `(time, seq)` with no
    /// duplicate seqs across actors — including fast-path-bypass events,
    /// whose count must equal the kernel's own `fast_path_hits` counter
    /// when nothing was evicted.
    #[test]
    fn merged_trace_totally_ordered_including_bypass(ops in prop::collection::vec(0u8..4, 4..24)) {
        let t = Arc::new(Tracer::new(TraceLevel::Full));
        let g = t.install();
        let mut sim = Simulation::new();
        let bar = sim.kernel().new_barrier(2);
        let res = sim.kernel().new_resource("r");
        for a in 0..2u64 {
            let ops = ops.clone();
            sim.spawn(format!("a{a}"), move |ctx| {
                for (i, &op) in ops.iter().enumerate() {
                    match op {
                        0 => ctx.advance(hupc::sim::time::ns(40 + a * 11 + i as u64)),
                        1 => ctx.acquire(res, hupc::sim::time::ns(90)),
                        2 => ctx.barrier_wait(bar),
                        _ => ctx.advance(0),
                    }
                }
                // Rendezvous, then actor 0 advances alone: with actor 1
                // terminated these resolve on the bypass fast path.
                ctx.barrier_wait(bar);
                if a == 0 {
                    for k in 0..4 {
                        ctx.advance(hupc::sim::time::us(1 + k));
                    }
                }
            });
        }
        let stats = sim.run();
        drop(g);
        let m = t.merge();
        prop_assert!(!m.is_empty());
        assert_totally_ordered(&m);
        prop_assert_eq!(t.events_dropped(), 0);
        let bypasses = m.iter().filter(|e| e.kind == EventKind::FastPathBypass).count() as u64;
        prop_assert!(bypasses > 0, "scenario never hit the fast path");
        prop_assert_eq!(bypasses, stats.fast_path_hits);
    }

    /// Application traces obey the same total order (the app emits interleave
    /// with kernel emits through the same seq counter).
    #[test]
    fn uts_trace_totally_ordered(tree_seed in 1u32..40, gran in 1usize..6) {
        let t = Arc::new(Tracer::new(TraceLevel::Full));
        let g = t.install();
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, tree_seed);
        cfg.steal_granularity = gran;
        run_uts(cfg);
        drop(g);
        let m = t.merge();
        prop_assert!(!m.is_empty());
        assert_totally_ordered(&m);
    }
}
