//! Cross-application / cross-variant agreement: the evaluation workloads
//! must compute identical answers regardless of transport, schedule,
//! backend, or execution hierarchy.

use hupc::fft::{
    run_ft_mpi, run_ft_upc, seq_checksums, ComputeMode, ExchangeKind, FtClass, FtConfig,
    SubthreadSpec,
};
use hupc::net::Conduit;
use hupc::stream::{run_twisted_triad, TriadVariant, TwistedConfig};
use hupc::subthreads::SubthreadModel;
use hupc::uts::{run_uts, sequential_traverse, StealStrategy, TreeParams, UtsConfig};

#[test]
fn ft_all_variants_agree_with_reference_and_each_other() {
    let class = FtClass::Custom {
        nx: 16,
        ny: 8,
        nz: 8,
        iters: 2,
    };
    let want = seq_checksums(class);
    let mk = || {
        let mut c = FtConfig::test_custom(16, 8, 8, 2, 4, 2);
        c.class = class;
        c
    };
    let mut variants: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    let split = run_ft_upc(mk());
    variants.push(("upc split".into(), split.checksums));

    let mut c = mk();
    c.exchange = ExchangeKind::Overlap;
    variants.push(("upc overlap".into(), run_ft_upc(c).checksums));

    let mut c = mk();
    c.exchange = ExchangeKind::SplitPhaseBlocking;
    variants.push(("upc blocking".into(), run_ft_upc(c).checksums));

    let mut c = mk();
    c.threads = 2;
    c.subthreads = Some(SubthreadSpec {
        n: 2,
        model: SubthreadModel::Pool,
    });
    variants.push(("hybrid".into(), run_ft_upc(c).checksums));

    variants.push(("mpi".into(), run_ft_mpi(mk()).checksums));

    for (name, sums) in &variants {
        assert_eq!(sums.len(), want.len(), "{name}");
        for (i, ((re, im), c)) in sums.iter().zip(&want).enumerate() {
            let s = c.re.abs().max(c.im.abs()).max(1.0);
            assert!(
                (re - c.re).abs() / s < 1e-9 && (im - c.im).abs() / s < 1e-9,
                "{name} iter {i}"
            );
        }
    }
}

#[test]
fn uts_invariant_under_everything() {
    let seq = sequential_traverse(&TreeParams::small_binomial(21));
    for (threads, nodes, strategy, conduit) in [
        (2, 2, StealStrategy::Random, Conduit::ib_qdr()),
        (4, 2, StealStrategy::LocalFirst, Conduit::gige()),
        (6, 2, StealStrategy::LocalFirstRapid, Conduit::ib_ddr()),
        (8, 2, StealStrategy::LocalFirstRapid, Conduit::ib_qdr()),
    ] {
        let mut cfg = UtsConfig::small(threads, nodes, strategy, 21);
        cfg.conduit = conduit;
        let r = run_uts(cfg);
        assert_eq!(
            (r.total_nodes, r.max_depth as u32, r.leaves),
            seq,
            "threads={threads} {strategy:?}"
        );
    }
}

#[test]
fn uts_faster_network_is_never_slower() {
    let mut a = UtsConfig::small(4, 2, StealStrategy::Random, 13);
    a.conduit = Conduit::ib_qdr();
    let mut b = UtsConfig::small(4, 2, StealStrategy::Random, 13);
    b.conduit = Conduit::gige();
    let fast = run_uts(a);
    let slow = run_uts(b);
    assert!(
        fast.seconds <= slow.seconds,
        "IB {} vs GigE {}",
        fast.seconds,
        slow.seconds
    );
}

#[test]
fn stream_variants_all_verify_and_order_correctly() {
    let mut results = Vec::new();
    for v in TriadVariant::all() {
        let r = run_twisted_triad(TwistedConfig::small(v));
        assert_eq!(r.max_error, 0.0, "{}", r.variant);
        results.push((r.variant.clone(), r.gbps));
    }
    // baseline < re-localization < cast
    assert!(results[0].1 < results[1].1);
    assert!(results[1].1 < results[2].1);
}

#[test]
fn ft_model_and_execute_modes_agree_on_time_shape() {
    // Time ratios between thread counts must match across modes (the Model
    // mode is what regenerates class-B figures).
    fn total(threads: usize, mode: ComputeMode) -> f64 {
        let mut c = FtConfig::test_custom(16, 16, 16, 2, threads, 2);
        c.mode = mode;
        run_ft_upc(c).total_seconds
    }
    let e2 = total(2, ComputeMode::Execute);
    let e4 = total(4, ComputeMode::Execute);
    let m2 = total(2, ComputeMode::Model);
    let m4 = total(4, ComputeMode::Model);
    let exec_ratio = e2 / e4;
    let model_ratio = m2 / m4;
    assert!(
        (exec_ratio / model_ratio - 1.0).abs() < 0.05,
        "execute {exec_ratio:.3} vs model {model_ratio:.3}"
    );
}

#[test]
fn mpi_collective_beats_blocking_upc_exchange() {
    // The thesis' observation: the optimized MPI collective outperforms the
    // naive blocking UPC exchange (Fig 4.5's MPI advantage) — at realistic
    // message sizes, where bandwidth rather than per-message software
    // dominates (Model mode keeps the large grid cheap).
    let mut upc = FtConfig::test_custom(128, 64, 64, 2, 8, 2);
    upc.mode = ComputeMode::Model;
    upc.exchange = ExchangeKind::SplitPhaseBlocking;
    let mut mpi = upc.clone();
    mpi.exchange = ExchangeKind::SplitPhase; // ignored by MPI
    let u = run_ft_upc(upc);
    let m = run_ft_mpi(mpi);
    assert!(
        m.comm_seconds < u.comm_seconds * 1.05,
        "mpi {} vs blocking upc {}",
        m.comm_seconds,
        u.comm_seconds
    );
}
