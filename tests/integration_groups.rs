//! Thread groups (Chapter 3) exercised end-to-end: topology-driven
//! partitions, cast tables, group barriers, and a miniature
//! locality-conscious work-stealing interaction.

use std::sync::Arc;

use hupc::prelude::*;

#[test]
fn node_groups_cover_and_respect_topology() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    let set = GroupSet::partition(&mut job.kernel(), job.runtime(), GroupLevel::Node);
    assert_eq!(set.len(), 2);
    for g in set.groups() {
        assert_eq!(g.size(), 4);
        assert!(g.has_cast_table());
    }
    // groups really partition
    let mut seen = [false; 8];
    for g in set.groups() {
        for &m in g.members() {
            assert!(!seen[m]);
            seen[m] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn group_neighbor_writes_via_cast_table() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    let a = job.alloc_shared::<u64>(8 * 4, 4);
    let set = Arc::new(GroupSet::partition(
        &mut job.kernel(),
        job.runtime(),
        GroupLevel::Node,
    ));
    job.run(move |upc| {
        let me = upc.mythread();
        let g = set.group_of(me);
        // ring write within the group through pre-cast pointers
        let succ = g.peers_of(me)[0];
        g.with_member_words(&upc, &a, succ, |w| {
            w[0] = 7000 + me as u64;
        });
        g.barrier(&upc);
        let pred = *g.peers_of(me).last().expect("group of 4");
        a.with_local_words(&upc, |w| assert_eq!(w[0], 7000 + pred as u64));
    });
}

#[test]
fn group_barrier_does_not_synchronize_other_groups() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    let set = Arc::new(GroupSet::partition(
        &mut job.kernel(),
        job.runtime(),
        GroupLevel::Node,
    ));
    let finish = Arc::new(SimCell::new([0u64; 8]));
    let f2 = Arc::clone(&finish);
    job.run(move |upc| {
        let me = upc.mythread();
        // group 0 members idle briefly; group 1 members idle long
        let delay = if me < 4 { time::us(10) } else { time::ms(5) };
        upc.ctx().advance(delay);
        set.group_of(me).barrier(&upc);
        f2.with_mut(|f| f[me] = upc.now());
    });
    let f = finish.get();
    // group 0 finished its barrier long before group 1
    assert!(f[..4].iter().max().unwrap() < f[4..].iter().min().unwrap());
}

#[test]
fn steal_prefers_group_then_falls_back() {
    // A hand-rolled micro work-steal using groups: thread 7 has no work,
    // its group is dry, so it must fetch from the remote group.
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    let work = job.alloc_shared::<u64>(8, 1);
    let set = Arc::new(GroupSet::partition(
        &mut job.kernel(),
        job.runtime(),
        GroupLevel::Node,
    ));
    job.run(move |upc| {
        let me = upc.mythread();
        // only thread 0 (remote group from 7's perspective) has work
        work.poke(&upc, me, if me == 0 { 42 } else { 0 });
        upc.barrier();
        if me == 7 {
            let g = set.group_of(7);
            let local_hit = g
                .peers_of(7)
                .into_iter()
                .find(|&p| work.get(&upc, p) != 0);
            assert_eq!(local_hit, None, "local discovery must come up dry");
            let remote_hit = set
                .outsiders_of(7)
                .into_iter()
                .find(|&p| work.get(&upc, p) != 0);
            assert_eq!(remote_hit, Some(0));
        }
        upc.barrier();
    });
}

#[test]
fn overlapping_group_sets_are_independent() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    let k = &mut job.kernel();
    let nodes = GroupSet::partition(k, job.runtime(), GroupLevel::Node);
    let sockets = GroupSet::partition(k, job.runtime(), GroupLevel::Socket);
    // every socket group is contained in exactly one node group
    for sg in sockets.groups() {
        let owner = nodes.group_index_of(sg.members()[0]);
        for &m in sg.members() {
            assert_eq!(nodes.group_index_of(m), owner);
        }
    }
    assert!(sockets.len() > nodes.len());
}
