//! End-to-end SPMD semantics across the stack: launcher + shared arrays +
//! one-sided ops + collectives + locks, over several backends and conduits.

use std::sync::Arc;

use hupc::prelude::*;

fn cfg(threads: usize, nodes: usize, backend: Backend, conduit: Conduit) -> UpcConfig {
    let mut c = UpcConfig::test_default(threads, nodes);
    c.gasnet.backend = backend;
    c.gasnet.conduit = conduit;
    c
}

#[test]
fn ring_pass_over_every_backend() {
    for backend in [
        Backend::processes(),
        Backend::processes_pshm(),
        Backend::pthreads(4),
        Backend::mixed(2, true),
    ] {
        let job = UpcJob::new(cfg(8, 2, backend, Conduit::ib_qdr()));
        let a = job.alloc_shared::<u64>(8, 1);
        job.run(move |upc| {
            let me = upc.mythread();
            // Each thread writes a token into its ring successor's element.
            a.poke(&upc, me, 0);
            upc.barrier();
            let next = (me + 1) % 8;
            a.put(&upc, next, 1000 + me as u64);
            upc.barrier();
            let prev = (me + 8 - 1) % 8;
            assert_eq!(a.get(&upc, me), 1000 + prev as u64, "{backend:?}");
        });
    }
}

#[test]
fn every_conduit_delivers() {
    for conduit in [Conduit::ib_qdr(), Conduit::ib_ddr(), Conduit::gige()] {
        let slower_latency = conduit.wire_latency;
        let job = UpcJob::new(cfg(2, 2, Backend::processes_pshm(), conduit));
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(4);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                let t0 = upc.now();
                upc.memput(1, off, &[5, 6, 7]);
                assert!(upc.now() - t0 >= slower_latency);
            }
            upc.barrier();
            if upc.mythread() == 1 {
                let mut out = [0u64; 3];
                upc.memget(1, off, &mut out);
                assert_eq!(out, [5, 6, 7]);
            }
        });
    }
}

#[test]
fn barrier_orders_all_prior_communication() {
    // Classic producer/consumer: data written before a barrier must be
    // visible after it, including async puts that were never waited on.
    let job = UpcJob::new(UpcConfig::test_default(6, 2));
    let a = job.alloc_shared::<u64>(6 * 64, 64);
    job.run(move |upc| {
        let me = upc.mythread();
        let peer = (me + 1) % 6;
        let data: Vec<u64> = (0..64).map(|k| (me * 64 + k) as u64).collect();
        let _unwaited = upc.memput_nb(peer, a.word_offset(), &data);
        upc.barrier();
        a.with_local_words(&upc, |w| {
            let pred = (me + 5) % 6;
            for (k, v) in w.iter().enumerate().take(64) {
                assert_eq!(*v, (pred * 64 + k) as u64);
            }
        });
    });
}

#[test]
fn locks_serialize_read_modify_write_across_nodes() {
    let job = UpcJob::new(UpcConfig::test_default(6, 2));
    let lock = job.alloc_lock_at(3);
    let rt = Arc::clone(job.runtime());
    let off = rt.alloc_words(1);
    job.run(move |upc| {
        for _ in 0..5 {
            lock.lock(&upc);
            let mut v = [0u64];
            upc.memget(0, off, &mut v);
            upc.compute(time::ns(100));
            upc.memput(0, off, &[v[0] + 1]);
            lock.unlock(&upc);
        }
        upc.barrier();
        if upc.mythread() == 0 {
            assert_eq!(upc.gasnet().segment(0).read_word(off), 30);
        }
    });
}

#[test]
fn collectives_compose() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    job.run(|upc| {
        let me = upc.mythread() as u64;
        // broadcast → reduce → broadcast chain
        let seed = upc.broadcast_word(3, if me == 3 { 99 } else { 0 });
        let total = upc.allreduce_sum_u64(seed + me);
        assert_eq!(total, 8 * 99 + 28);
        let max = upc.allreduce_max_u64(me * seed);
        assert_eq!(max, 7 * 99);
    });
}

#[test]
fn exchange_then_verify_under_gige() {
    let mut c = UpcConfig::test_default(4, 2);
    c.gasnet.conduit = Conduit::gige();
    let job = UpcJob::new(c);
    let src = job.alloc_shared::<u64>(4 * 4, 4);
    let dst = job.alloc_shared::<u64>(4 * 4, 4);
    job.run(move |upc| {
        let me = upc.mythread();
        src.with_local_words(&upc, |w| {
            for (j, x) in w.iter_mut().enumerate() {
                *x = (me * 10 + j) as u64;
            }
        });
        upc.barrier();
        upc.all_exchange(src, dst, 1, true);
        dst.with_local_words(&upc, |w| {
            for (j, x) in w.iter().enumerate().take(4) {
                assert_eq!(*x, (j * 10 + me) as u64);
            }
        });
    });
}

#[test]
fn deterministic_end_to_end() {
    fn run_once() -> (u64, Time) {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let a = job.alloc_shared::<u64>(256, 8);
        let out = Arc::new(SimCell::new((0u64, 0u64)));
        let o2 = Arc::clone(&out);
        job.run(move |upc| {
            let me = upc.mythread();
            for i in a.indices_with_affinity(me) {
                a.put(&upc, i, (i * 7) as u64);
            }
            upc.barrier();
            let mut sum = 0;
            for i in 0..256 {
                sum += a.get(&upc, i);
            }
            let total = upc.allreduce_sum_u64(sum);
            if me == 0 {
                o2.with_mut(|v| *v = (total, upc.now()));
            }
        });
        let (sum, t) = out.get();
        (sum, t)
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
    assert_eq!(a.0, (0..256u64).map(|i| i * 7).sum::<u64>() * 8);
}

#[test]
fn split_phase_barrier_overlaps_local_work() {
    // upc_notify / upc_wait: pre-notify writes are visible after wait, and
    // the local work between them genuinely overlaps the barrier.
    let job = UpcJob::new(UpcConfig::test_default(4, 2));
    let a = job.alloc_shared::<u64>(4, 1);
    job.run(move |upc| {
        let me = upc.mythread();
        for round in 0..3u64 {
            a.poke(&upc, me, 100 * round + me as u64);
            upc.notify();
            // overlapped local compute while others arrive
            upc.compute(time::us(10 * (me as u64 + 1)));
            upc.wait();
            for t in 0..4 {
                assert_eq!(a.peek(&upc, t), 100 * round + t as u64, "round {round}");
            }
            upc.barrier();
        }
    });
}

#[test]
fn gups_random_access_end_to_end() {
    use hupc::gups::{run_gups, GupsConfig, Routing};
    let r = run_gups(GupsConfig::small(8, 2, Routing::Hierarchical));
    assert_eq!(r.errors, 0);
    assert!(r.gups > 0.0);
    assert_eq!(r.total_updates, 8 * 300);
}
