//! Hierarchical sub-threads (Chapter 4) end-to-end: pools under SPMD
//! threads, PGAS access from workers, thread-safety levels, profiles.

use std::sync::Arc;

use hupc::prelude::*;

#[test]
fn every_upc_thread_can_run_its_own_pool() {
    let job = UpcJob::new(UpcConfig::test_default(4, 2));
    let counts = Arc::new(SimCell::new([0u64; 4]));
    let c2 = Arc::clone(&counts);
    job.run(move |upc| {
        let me = upc.mythread();
        let pool = SubPool::spawn(&upc, 2, SubthreadModel::Pool);
        let c3 = Arc::clone(&c2);
        pool.parallel_for(upc.ctx(), 10, move |w, range| {
            w.compute(time::us(10));
            c3.with_mut(|c| c[me] += range.len() as u64);
        });
        pool.shutdown(upc.ctx());
        upc.barrier();
    });
    assert_eq!(counts.get(), [10, 10, 10, 10]);
}

#[test]
fn subthread_remote_puts_respect_upc_semantics() {
    let job = UpcJob::new(UpcConfig::test_default(2, 2));
    let rt = Arc::clone(job.runtime());
    let a = job.alloc_shared::<u64>(2 * 32, 32);
    job.run(move |upc| {
        let me = upc.mythread();
        let peer = 1 - me;
        let pool = SubPool::spawn(&upc, 4, SubthreadModel::OpenMp);
        let rt2 = Arc::clone(upc.runtime());
        pool.parallel_for(upc.ctx(), 32, move |w, range| {
            let view = rt2.view(w.ctx(), me);
            for i in range {
                view.memput(peer, a.word_offset() + i, &[(me * 1000 + i) as u64]);
            }
        });
        pool.shutdown(upc.ctx());
        upc.barrier(); // drains the workers' outstanding puts too
        a.with_local_words(&upc, |wds| {
            for (i, v) in wds.iter().enumerate().take(32) {
                assert_eq!(*v, (peer * 1000 + i) as u64);
            }
        });
        let _ = &rt;
    });
}

#[test]
fn serialized_safety_level_works_but_multiple_is_faster() {
    fn run(level: ThreadSafety) -> Time {
        let mut cfg = UpcConfig::test_default(2, 2);
        cfg.safety = level;
        let job = UpcJob::new(cfg);
        let rt = Arc::clone(job.runtime());
        let off = rt.alloc_words(64);
        let out = Arc::new(SimCell::new(0u64));
        let o2 = Arc::clone(&out);
        job.run(move |upc| {
            let me = upc.mythread();
            let pool = SubPool::spawn(&upc, 4, SubthreadModel::OpenMp);
            let rt2 = Arc::clone(upc.runtime());
            let t0 = upc.now();
            pool.parallel_for(upc.ctx(), 32, move |w, range| {
                let view = rt2.view(w.ctx(), me);
                for i in range {
                    view.memput(1 - me, off + i, &[i as u64]);
                }
            });
            if me == 0 {
                o2.with_mut(|v| *v = upc.now() - t0);
            }
            pool.shutdown(upc.ctx());
            upc.barrier();
        });
        out.get()
    }
    let serialized = run(ThreadSafety::Serialized);
    let multiple = run(ThreadSafety::Multiple);
    assert!(
        multiple <= serialized,
        "THREAD_MULTIPLE {multiple} should not be slower than SERIALIZED {serialized}"
    );
}

#[test]
fn profiles_order_total_region_cost() {
    fn region_cost(model: SubthreadModel) -> Time {
        let job = UpcJob::new(UpcConfig::test_default(1, 1));
        let out = Arc::new(SimCell::new(0u64));
        let o2 = Arc::clone(&out);
        job.run(move |upc| {
            let pool = SubPool::spawn(&upc, 2, model);
            let t0 = upc.now();
            for _ in 0..50 {
                pool.parallel_for(upc.ctx(), 2, |w, r| {
                    for _ in r {
                        w.compute(time::us(20));
                    }
                });
            }
            o2.with_mut(|v| *v = upc.now() - t0);
            pool.shutdown(upc.ctx());
        });
        out.get()
    }
    let omp = region_cost(SubthreadModel::OpenMp);
    let pool = region_cost(SubthreadModel::Pool);
    let cilk = region_cost(SubthreadModel::Cilk);
    assert!(omp < pool, "OpenMP {omp} < pool {pool}");
    assert!(pool < cilk, "pool {pool} < Cilk {cilk}");
}

#[test]
fn dynamic_tasks_interleave_with_communication() {
    // Cilk-style spawns while the master issues communication: the overlap
    // pattern of §4.3.3.1 in miniature.
    let job = UpcJob::new(UpcConfig::test_default(2, 2));
    let rt = Arc::clone(job.runtime());
    let off = rt.alloc_words(8);
    job.run(move |upc| {
        let me = upc.mythread();
        if me == 0 {
            let pool = SubPool::spawn(&upc, 3, SubthreadModel::Cilk);
            let mut handles = Vec::new();
            for i in 0..8u64 {
                pool.spawn_task(upc.ctx(), move |w| {
                    w.compute(time::us(100)); // "compute plane i"
                    let _ = i;
                });
                handles.push(upc.memput_nb(1, off + i as usize, &[i]));
            }
            pool.sync(upc.ctx());
            for h in handles {
                upc.wait_sync(h);
            }
            pool.shutdown(upc.ctx());
        }
        upc.barrier();
        if me == 1 {
            for i in 0..8 {
                assert_eq!(upc.gasnet().segment(1).read_word(off + i), i as u64);
            }
        }
    });
}
