//! Hierarchical sub-threads in action: each UPC thread forks a pool of
//! shared-memory workers that can still reach the global address space —
//! the Chapter 4 programming model.
//!
//! Run with `cargo run --release --example hybrid_hello`.

use std::sync::Arc;

use hupc::prelude::*;

fn main() {
    let job = UpcJob::new(UpcConfig::test_default(2, 2)); // 1 UPC thread/node
    let rt = Arc::clone(job.runtime());
    let table = job.alloc_shared::<u64>(2 * 16, 16); // 16 slots per thread

    job.run(move |upc| {
        let me = upc.mythread();

        // Fork 4 sub-threads (the master participates as worker 0).
        let pool = SubPool::spawn(&upc, 4, SubthreadModel::OpenMp);
        println!(
            "UPC thread {me}: forked a {} pool of {} sub-threads",
            pool.profile().name(),
            pool.size()
        );

        // parallel_for over 16 items; each sub-thread writes REMOTELY into
        // the *other* UPC thread's partition — sub-threads reach the PGAS.
        let rt2 = Arc::clone(upc.runtime());
        let peer = 1 - me;
        pool.parallel_for(upc.ctx(), 16, move |w, range| {
            let view = rt2.view(w.ctx(), me);
            for i in range {
                w.compute(time::us(50)); // simulated work
                view.memput(
                    peer,
                    table.word_offset() + i,
                    &[(me * 100 + i) as u64],
                );
            }
        });
        pool.shutdown(upc.ctx());
        upc.barrier();

        // Verify what the peer's sub-threads wrote into *my* partition.
        table.with_local_words(&upc, |w| {
            for (i, v) in w.iter().enumerate().take(16) {
                assert_eq!(*v, (peer * 100 + i) as u64);
            }
        });
        if me == 0 {
            println!("all sub-thread writes landed in the right partitions ✓");
            println!("virtual time: {}", time::format(upc.now()));
        }
        let _ = &rt;
    });
}
