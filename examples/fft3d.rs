//! Distributed 3-D FFT (the NAS FT core) with communication/computation
//! overlap, verified against the sequential reference — and a pure/hybrid
//! timing comparison.
//!
//! Run with `cargo run --release --example fft3d`.

use hupc::fft::{
    run_ft_upc, seq_checksums, ComputeMode, ExchangeKind, FtClass, FtConfig, SubthreadSpec,
};
use hupc::subthreads::SubthreadModel;

fn main() {
    let class = FtClass::Custom {
        nx: 32,
        ny: 16,
        nz: 16,
        iters: 4,
    };
    let want = seq_checksums(class);

    // Pure UPC, overlapped exchange, on the small test cluster.
    let mut cfg = FtConfig::test_custom(32, 16, 16, 4, 4, 2);
    cfg.class = class;
    cfg.exchange = ExchangeKind::Overlap;
    cfg.mode = ComputeMode::Execute;
    let pure = run_ft_upc(cfg.clone());

    println!("per-iteration checksums (distributed vs sequential):");
    for (i, ((re, im), c)) in pure.checksums.iter().zip(&want).enumerate() {
        println!(
            "  iter {i}: ({re:14.6}, {im:14.6})  ref ({:14.6}, {:14.6})",
            c.re, c.im
        );
        assert!((re - c.re).abs() < 1e-6 && (im - c.im).abs() < 1e-6);
    }

    // Hierarchical: 2 UPC threads × 2 OpenMP-style sub-threads each.
    let mut hyb = cfg.clone();
    hyb.threads = 2;
    hyb.nodes_used = 2;
    hyb.subthreads = Some(SubthreadSpec {
        n: 2,
        model: SubthreadModel::OpenMp,
    });
    let hybrid = run_ft_upc(hyb);
    for ((re, im), c) in hybrid.checksums.iter().zip(&want) {
        assert!((re - c.re).abs() < 1e-6 && (im - c.im).abs() < 1e-6);
    }

    println!("\nvirtual-time comparison (same 4 cores):");
    println!(
        "  pure UPC 4 threads:        total {:.4}s  comm {:.4}s",
        pure.total_seconds, pure.comm_seconds
    );
    println!(
        "  hybrid 2 UPC × 2 subs:     total {:.4}s  comm {:.4}s",
        hybrid.total_seconds, hybrid.comm_seconds
    );
    println!("\nchecksums identical across decompositions and execution models ✓");
}
