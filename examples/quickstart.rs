//! Quickstart: SPMD hello-world on the PGAS — shared arrays, one-sided
//! puts/gets, barriers, and a reduction.
//!
//! Run with `cargo run --release --example quickstart`.

use hupc::prelude::*;

fn main() {
    // A small simulated cluster: 2 nodes × (2 sockets × 2 cores).
    let job = UpcJob::new(UpcConfig::test_default(8, 2));

    // shared [1] double histogram[64]  — round-robin over threads
    let hist = job.alloc_shared::<f64>(64, 1);

    job.run(move |upc| {
        let me = upc.mythread();
        let p = upc.threads();
        println!(
            "hello from UPC thread {me}/{p} (node {:?})",
            upc.gasnet().thread_node(me)
        );

        // Every thread writes the elements it has affinity to (upc_forall).
        for i in hist.indices_with_affinity(me) {
            hist.put(&upc, i, (i * i) as f64);
        }
        upc.barrier();

        // Thread 0 reads remote elements one-sidedly — no receives anywhere.
        if me == 0 {
            let remote = hist.get(&upc, 63);
            assert_eq!(remote, 63.0 * 63.0);
            println!("hist[63] (owned by thread {}) = {remote}", hist.owner(63));
        }

        // A collective: global sum of locally-owned values.
        let local_sum: f64 = hist
            .indices_with_affinity(me)
            .map(|i| hist.peek(&upc, i))
            .sum();
        let total = upc.allreduce_sum_f64(local_sum);
        if me == 0 {
            let want: f64 = (0..64).map(|i| (i * i) as f64).sum();
            assert_eq!(total, want);
            println!("global sum = {total} (expected {want})");
            println!("virtual time elapsed: {}", time::format(upc.now()));
        }
    });
}
