//! A 1-D heat-diffusion stencil with hierarchical communication: ghost-cell
//! exchange uses the thread-group cast table inside a node (plain memory
//! copies) and one-sided puts across nodes — the Chapter 3 pattern applied
//! to a regular computation.
//!
//! Run with `cargo run --release --example stencil`.
//!
//! The 2-D version of this pattern is a registered workload
//! (`stencil2d` in `crates/app/src/stencil2d.rs`) — run it through the
//! SDK sweep: `cargo run --release -p hupc-bench --bin all_experiments
//! -- --smoke`.

use std::sync::Arc;

use hupc::prelude::*;

const N_PER: usize = 256; // interior cells per thread
const STEPS: usize = 50;
const ALPHA: f64 = 0.25;

fn main() {
    let job = UpcJob::new(UpcConfig::test_default(8, 2));
    // Each thread's row: [left ghost, N_PER interior, right ghost]
    let a = job.alloc_shared::<f64>(8 * (N_PER + 2), N_PER + 2);
    let b = job.alloc_shared::<f64>(8 * (N_PER + 2), N_PER + 2);
    let groups = Arc::new(GroupSet::partition(
        &mut job.kernel(),
        job.runtime(),
        GroupLevel::Node,
    ));

    job.run(move |upc| {
        let me = upc.mythread();
        let p = upc.threads();
        // Initial condition: a hot spike on thread 0.
        a.with_local_words(&upc, |w| {
            for (k, x) in w.iter_mut().enumerate() {
                *x = if me == 0 && k == N_PER / 2 { 1000.0f64 } else { 0.0 }.to_bits();
            }
        });
        upc.barrier();

        let (mut cur, mut next) = (a, b);
        for _step in 0..STEPS {
            // Ghost exchange: my first/last interior cells go to my
            // neighbours' ghost slots.
            let first = f64::from_bits(cur.with_local_words(&upc, |w| w[1]));
            let last = f64::from_bits(cur.with_local_words(&upc, |w| w[N_PER]));
            if me > 0 {
                send_ghost(&upc, &groups, cur, me - 1, N_PER + 1, first);
            }
            if me + 1 < p {
                send_ghost(&upc, &groups, cur, me + 1, 0, last);
            }
            upc.barrier();

            // Local sweep (privatized access, charged as memory traffic).
            // Both arrays live in the same segment, so borrow sequentially.
            let vals: Vec<f64> =
                cur.with_local_words(&upc, |src| src.iter().map(|&x| f64::from_bits(x)).collect());
            next.with_local_words(&upc, |dst| {
                for k in 1..=N_PER {
                    let v = vals[k] + ALPHA * (vals[k - 1] - 2.0 * vals[k] + vals[k + 1]);
                    dst[k] = v.to_bits();
                }
            });
            upc.charge_mem_traffic(upc.segment_home(me), N_PER * 24);
            upc.barrier();
            std::mem::swap(&mut cur, &mut next);
        }

        // Heat is conserved (insulated ends): global sum unchanged.
        let local: f64 = cur.with_local_words(&upc, |w| {
            w[1..=N_PER].iter().map(|&x| f64::from_bits(x)).sum()
        });
        let total = upc.allreduce_sum_f64(local);
        if me == 0 {
            println!("total heat after {STEPS} steps: {total:.6} (expected 1000)");
            assert!((total - 1000.0).abs() < 1e-9);
            println!("virtual time: {}", time::format(upc.now()));
        }
    });
}

/// Write one ghost value into `neighbor`'s slot `slot`: through the cast
/// table when the neighbour shares memory, via a one-sided put otherwise.
fn send_ghost(
    upc: &Upc<'_>,
    groups: &GroupSet,
    arr: SharedArray<f64>,
    neighbor: usize,
    slot: usize,
    v: f64,
) {
    let me = upc.mythread();
    let g = groups.group_of(me);
    if g.rank_of(neighbor).is_some() && g.has_cast_table() {
        g.with_member_words(upc, &arr, neighbor, |w| w[slot] = v.to_bits());
        upc.note_socket_traffic(upc.segment_home(neighbor), 8);
    } else {
        upc.memput(neighbor, arr.word_offset() + slot, &[v.to_bits()]);
    }
}
