//! Unbalanced tree search with hierarchical work stealing: compares the
//! three victim-selection strategies of thesis Fig 3.2/3.3 on a small
//! deterministic tree and checks they all visit exactly the same nodes.
//!
//! Run with `cargo run --release --example tree_search`.

use hupc::net::Conduit;
use hupc::uts::{run_uts, sequential_traverse, StealStrategy, TreeParams, UtsConfig};

fn main() {
    let tree = TreeParams::Binomial {
        b0: 200,
        m: 8,
        q: 0.12,
        seed: 7,
    };
    let (total, depth, leaves) = sequential_traverse(&tree);
    println!("tree: {total} nodes, depth {depth}, {leaves} leaves\n");

    println!(
        "{:38} {:>10} {:>10} {:>8} {:>8}",
        "strategy", "Mnodes/s", "seconds", "steals", "local%"
    );
    for strategy in [
        StealStrategy::Random,
        StealStrategy::LocalFirst,
        StealStrategy::LocalFirstRapid,
    ] {
        let mut cfg = UtsConfig::small(8, 2, strategy, 7);
        cfg.tree = tree.clone();
        cfg.conduit = Conduit::gige(); // locality matters most on Ethernet
        let r = run_uts(cfg);
        assert_eq!(r.total_nodes, total, "every strategy visits every node");
        println!(
            "{:38} {:>10.2} {:>10.4} {:>8} {:>7.1}%",
            strategy.name(),
            r.mnodes_per_sec,
            r.seconds,
            r.local_steals + r.remote_steals,
            100.0 * r.local_steal_ratio()
        );
    }
    println!("\nall strategies counted {total} nodes — tree shape is schedule-independent");
}
