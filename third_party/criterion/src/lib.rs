//! Offline drop-in subset of the `criterion` bench harness.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so instead of the real `criterion` we vendor the thin slice of
//! its API that our `benches/` actually use: groups, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, throughput annotations, and
//! the `criterion_group!`/`criterion_main!` macros. Measurements are honest
//! (median of wall-clock samples) but there is no statistical analysis,
//! warm-up tuning, or HTML reporting.

use std::time::{Duration, Instant};

/// Mirrors `criterion::Throughput` — purely informational here.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Mirrors `criterion::BatchSize`; the stub treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `BenchmarkId::new("name", param)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Passed to the closure given to `bench_function`/`bench_with_input`.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed: Vec::new(),
        }
    }

    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.elapsed.push(t0.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.elapsed.push(t0.elapsed());
            drop(out);
        }
    }

    fn median(&self) -> Duration {
        let mut v = self.elapsed.clone();
        if v.is_empty() {
            return Duration::ZERO;
        }
        v.sort();
        v[v.len() / 2]
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(id, &b);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let med = b.median();
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / med.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                format!("  ({:.2e} elem/s)", n as f64 / med.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {:?} over {} samples{}",
            self.name, id, med, b.samples, extra
        );
    }
}

/// Mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's traditional path.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
        g.bench_with_input(BenchmarkId::new("input", 7), &7usize, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::LargeInput)
        });
        g.finish();
    }
}
