//! Offline drop-in subset of the `proptest` property-testing crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so we vendor the slice of proptest's API that our test suites
//! use: the `proptest!` macro, `ProptestConfig::with_cases`, range / `any` /
//! `prop::array` / `prop::collection::vec` strategies, and the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! splitmix64 stream seeded per test (by test name) and per case, so a
//! failing case is reproducible by rerunning the same test binary; there is
//! no shrinking — the panic message simply reports the case index so the
//! inputs can be recovered by instrumenting the test.

use std::ops::Range;

// ---------------------------------------------------------------------------
// deterministic generator
// ---------------------------------------------------------------------------

/// The RNG handed to strategies. Splitmix64: tiny, fast, and plenty good for
/// spreading test inputs around.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` for `bound > 0` (multiply-shift reduction).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over the test name: stable seed without `std::hash`'s randomness.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// config
// ---------------------------------------------------------------------------

/// Mirrors `proptest::test_runner::Config` as used via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

/// A source of test inputs. Unlike real proptest there is no value tree or
/// shrinking: a strategy just produces a value from the RNG stream.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

/// Unit-interval `f64` strategy used as `0.0..1.0` is not supported by the
/// stub's `Range` impls; use `unit_f64()` instead.
pub struct UnitF64;

pub fn unit_f64() -> UnitF64 {
    UnitF64
}

impl Strategy for UnitF64 {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Fixed-size array strategies (`prop::array::uniform20(inner)`).
pub mod array {
    use super::{Strategy, TestRng};

    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            pub fn $name<S: Strategy>(inner: S) -> UniformArray<S, $n> {
                UniformArray(inner)
            }
        )*};
    }
    uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform20 => 20, uniform32 => 32);
}

/// Collection strategies (`prop::collection::vec(inner, len_range)`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        inner: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { inner, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// `prop_assert!` and friends simply panic — without shrinking there is no
/// reason to thread `Result` through the test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` macro: each contained `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. Doc comments and extra attributes on the functions are preserved.
#[macro_export]
macro_rules! proptest {
    // with a leading #![proptest_config(...)]
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed(
                    $crate::seed_from_name(stringify!($name)),
                );
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let run = || { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} failed for {}",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    // without a config block: default config
    (
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[doc = $doc])*
                #[test]
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Facade matching real proptest's `prop` re-export, so prelude users can
/// write `prop::collection::vec(...)` / `prop::array::uniform20(...)`.
pub mod prop {
    pub use crate::{array, collection};
}

/// Mirror of proptest's prelude: everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vec strategy respects its length range.
        #[test]
        fn vec_len_in_range(xs in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        /// Arrays are exactly N long with in-range elements.
        #[test]
        fn array_strategy(bytes in prop::array::uniform20(any::<u8>()), x in any::<u64>()) {
            prop_assert_eq!(bytes.len(), 20);
            let _ = x;
        }
    }

    proptest! {
        /// Default-config arm compiles and runs.
        #[test]
        fn default_config_arm(n in 0u32..5) {
            prop_assert!(n < 5);
        }
    }
}
