//! `hupc` — **Hierarchical parallelism for a UPC-style PGAS runtime.**
//!
//! A from-scratch Rust reproduction of *"Exploiting Hierarchical Parallelism
//! Using UPC"* (L. Wang, GWU, 2010): a UPC-like partitioned-global-address-
//! space runtime over a deterministic cluster simulator, extended with the
//! thesis' two mechanisms for hierarchical parallelism —
//!
//! 1. **Thread groups** ([`groups`]): topology-driven subsets of SPMD
//!    threads with pre-cast pointer tables and group collectives
//!    (thesis Chapter 3);
//! 2. **Hierarchical sub-threads** ([`subthreads`]): dynamically forked
//!    shared-memory workers under each UPC thread, backed by OpenMP-,
//!    Cilk++- or thread-pool-profiled runtimes (thesis Chapter 4);
//!
//! plus the full application suite the thesis evaluates with (STREAM triad,
//! Unbalanced Tree Search, NAS FT) and an MPI baseline.
//!
//! # Layer map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `hupc-sim` | discrete-event engine, actors, virtual time |
//! | [`topo`] | `hupc-topo` | machine topology, placement, binding |
//! | [`net`] | `hupc-net` | conduits, NICs, CPU + NUMA memory models |
//! | [`gasnet`] | `hupc-gasnet` | segments, one-sided put/get, PSHM, teams |
//! | [`upc`] | `hupc-upc` | SPMD launcher, shared arrays, collectives, locks |
//! | [`groups`] | `hupc-groups` | Chapter 3: cooperative thread groups |
//! | [`coll`] | `hupc-coll` | topology-aware hierarchical collectives |
//! | [`subthreads`] | `hupc-subthreads` | Chapter 4: nested sub-threads |
//! | [`mpi`] | `hupc-mpi` | two-sided baseline substrate |
//! | [`stream`] / [`uts`] / [`fft`] | apps | the evaluation workloads |
//! | [`app`] | `hupc-app` | workload plugin SDK: registry, runner, oracles |
//!
//! # Quickstart
//!
//! ```
//! use hupc::prelude::*;
//!
//! let job = UpcJob::new(UpcConfig::test_default(4, 2));
//! let a = job.alloc_shared::<f64>(1024, 0); // shared [*] double a[1024]
//! job.run(move |upc| {
//!     let me = upc.mythread();
//!     // write my block through a privatized local pointer
//!     a.with_local_words(&upc, |w| {
//!         for (k, x) in w.iter_mut().enumerate() {
//!             *x = ((me * 256 + k) as f64).to_bits();
//!         }
//!     });
//!     upc.barrier();
//!     // one-sided read of a remote element
//!     if me == 0 {
//!         assert_eq!(a.get(&upc, 1000), 1000.0);
//!     }
//! });
//! ```

pub use hupc_app as app;
pub use hupc_coll as coll;
pub use hupc_fft as fft;
pub use hupc_gasnet as gasnet;
pub use hupc_groups as groups;
pub use hupc_mpi as mpi;
pub use hupc_net as net;
pub use hupc_sim as sim;
pub use hupc_stream as stream;
pub use hupc_subthreads as subthreads;
pub use hupc_topo as topo;
pub use hupc_upc as upc;
pub use hupc_uts as uts;
pub use hupc_gups as gups;
pub use hupc_serve as serve;
#[cfg(feature = "trace")]
pub use hupc_trace as trace;

/// The names almost every program needs.
pub mod prelude {
    pub use hupc_app::{Params, RunEnv, Verified, Workload};
    pub use hupc_gasnet::{
        AccessPath, Backend, CommError, FaultPlan, Gasnet, GasnetConfig, Handle, Jitter,
        RetryPolicy,
    };
    pub use hupc_coll::{CollAlgo, CollDomain, CollPlan};
    pub use hupc_groups::{GroupLevel, GroupSet, ThreadGroup};
    pub use hupc_net::Conduit;
    pub use hupc_sim::{time, Ctx, SimCell, SimError, Simulation, Time};
    pub use hupc_subthreads::{Profile, SubPool, SubthreadModel, WorkerCtx};
    pub use hupc_topo::{BindPolicy, Machine, MachineSpec, PuId};
    pub use hupc_upc::{
        PgasElem, SharedArray, ThreadSafety, Upc, UpcConfig, UpcJob, UpcLock, UpcRuntime,
    };
}
