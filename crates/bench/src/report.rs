//! Table rendering and CSV output for the experiment binaries.

use std::io::Write;
use std::path::PathBuf;

/// Command-line options shared by every experiment binary.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pub csv: Option<PathBuf>,
    pub quick: bool,
    /// Baseline JSON to compare against (only the `simcore` binary uses it).
    pub check: Option<PathBuf>,
}

/// Parse `--csv <path>`, `--quick` and `--check <path>` from
/// `std::env::args`.
pub fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => {
                out.csv = Some(PathBuf::from(
                    it.next().expect("--csv requires a path argument"),
                ));
            }
            "--check" => {
                out.check = Some(PathBuf::from(
                    it.next().expect("--check requires a path argument"),
                ));
            }
            "--quick" => out.quick = true,
            "--help" | "-h" => {
                eprintln!("usage: <experiment> [--quick] [--csv <path>] [--check <baseline.json>]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

/// A titled table with aligned text rendering and CSV dumping.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for r in &self.rows {
            println!("{}", line(r));
        }
    }

    /// CSV rendering (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut s = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }
}

/// Print all tables; append them to the CSV file if requested.
pub fn emit(args: &Args, tables: &[Table]) {
    for t in tables {
        t.print();
    }
    if let Some(path) = &args.csv {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open {path:?}: {e}"));
        for t in tables {
            writeln!(f, "{}", t.to_csv()).expect("csv write failed");
        }
        eprintln!("[csv appended to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_dumps() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.row(vec!["long-label".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# demo\na,b\n"));
        assert!(csv.contains("x,1.5"));
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
