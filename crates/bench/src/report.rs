//! Table rendering, CSV output and the shared `--check` regression-gate
//! machinery for the experiment binaries.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Command-line options shared by every experiment binary.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pub csv: Option<PathBuf>,
    pub quick: bool,
    /// Baseline JSON to compare against (the perf-smoke binaries).
    pub check: Option<PathBuf>,
    /// `all_experiments` only: run just the workload-registry sweep.
    pub smoke: bool,
}

/// Parse `--csv <path>`, `--quick`, `--smoke` and `--check <path>` from
/// `std::env::args`.
pub fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => {
                out.csv = Some(PathBuf::from(
                    it.next().expect("--csv requires a path argument"),
                ));
            }
            "--check" => {
                out.check = Some(PathBuf::from(
                    it.next().expect("--check requires a path argument"),
                ));
            }
            "--quick" => out.quick = true,
            "--smoke" => out.smoke = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: <experiment> [--quick] [--smoke] [--csv <path>] \
                     [--check <baseline.json>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Pull one numeric field out of a flat JSON object (the shape every
/// `BENCH_*.json` metrics file writes). Enough of a parser for `--check`;
/// no strings, no nesting.
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Read a committed baseline file and extract `keys`, panicking with the
/// offending path/key on any miss — the shared head of every perf-smoke
/// binary's `--check` path.
pub fn baseline_metrics(path: &Path, keys: &[&str]) -> Vec<f64> {
    let s = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    keys.iter()
        .map(|key| {
            json_number(&s, key).unwrap_or_else(|| panic!("no {key} in {}", path.display()))
        })
        .collect()
}

/// One perf-smoke regression gate: a measured value against a bound.
#[derive(Clone, Debug)]
pub struct Gate {
    pub name: String,
    pub value: f64,
    pub bound: f64,
    /// `true` when the gate wants `value >= bound`, `false` for `<=`.
    pub at_least: bool,
    /// `None` = enforced; `Some(why)` = reported but not enforced.
    pub waived: Option<String>,
}

impl Gate {
    /// Gate demanding `value >= bound` (throughputs, speedups).
    pub fn at_least(name: impl Into<String>, value: f64, bound: f64) -> Gate {
        Gate {
            name: name.into(),
            value,
            bound,
            at_least: true,
            waived: None,
        }
    }

    /// Gate demanding `value <= bound` (latencies, times).
    pub fn at_most(name: impl Into<String>, value: f64, bound: f64) -> Gate {
        Gate {
            name: name.into(),
            value,
            bound,
            at_least: false,
            waived: None,
        }
    }

    /// Report this gate without enforcing it when `cond` holds (e.g. the
    /// host cannot physically pass it).
    pub fn waive_if(mut self, cond: bool, why: impl Into<String>) -> Gate {
        if cond {
            self.waived = Some(why.into());
        }
        self
    }

    pub fn ok(&self) -> bool {
        if self.waived.is_some() {
            return true;
        }
        if self.at_least {
            self.value >= self.bound
        } else {
            self.value <= self.bound
        }
    }

    pub fn json(&self) -> String {
        let verdict = if self.waived.is_some() {
            "waived"
        } else if self.ok() {
            "ok"
        } else {
            "fail"
        };
        let waived = match &self.waived {
            Some(why) => format!(",\"waived\":\"{why}\""),
            None => String::new(),
        };
        // `{:?}` prints the shortest round-trip form, so nanosecond-scale
        // virtual times and million-scale throughputs both stay readable.
        format!(
            "{{\"gate\":\"{}\",\"value\":{:?},\"{}\":{:?},\"verdict\":\"{verdict}\"{waived}}}",
            self.name,
            self.value,
            if self.at_least { "min" } else { "max" },
            self.bound,
        )
    }
}

/// Evaluate every gate and report all of them as one machine-readable line
/// — pass or fail, CI logs capture the whole picture in one grep. Returns
/// `false` (after printing `PERF REGRESSION`) when any enforced gate trips;
/// `context` key/value pairs are embedded in the regression JSON.
pub fn check_gates(context: &[(&str, f64)], gates: &[Gate]) -> bool {
    let joined = |sep: &str| gates.iter().map(Gate::json).collect::<Vec<_>>().join(sep);
    if gates.iter().all(Gate::ok) {
        eprintln!("[perf check ok: {}]", joined(" "));
        true
    } else {
        let ctx: String = context
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.0},"))
            .collect();
        eprintln!("PERF REGRESSION: {{{ctx}\"gates\":[{}]}}", joined(","));
        false
    }
}

/// [`check_gates`], exiting 1 on regression — the tail of every perf-smoke
/// binary.
pub fn enforce_gates(context: &[(&str, f64)], gates: &[Gate]) {
    if !check_gates(context, gates) {
        std::process::exit(1);
    }
}

/// A titled table with aligned text rendering and CSV dumping.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for r in &self.rows {
            println!("{}", line(r));
        }
    }

    /// CSV rendering (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut s = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }
}

/// Print all tables; append them to the CSV file if requested.
pub fn emit(args: &Args, tables: &[Table]) {
    for t in tables {
        t.print();
    }
    if let Some(path) = &args.csv {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open {path:?}: {e}"));
        for t in tables {
            writeln!(f, "{}", t.to_csv()).expect("csv write failed");
        }
        eprintln!("[csv appended to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_dumps() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.row(vec!["long-label".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# demo\na,b\n"));
        assert!(csv.contains("x,1.5"));
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_number_extracts_flat_fields() {
        let j = r#"{"a":1.5,"b":-2e3,"nested":{"c":7},"d":42}"#;
        assert_eq!(json_number(j, "a"), Some(1.5));
        assert_eq!(json_number(j, "b"), Some(-2000.0));
        assert_eq!(json_number(j, "c"), Some(7.0));
        assert_eq!(json_number(j, "d"), Some(42.0));
        assert_eq!(json_number(j, "missing"), None);
    }

    #[test]
    fn gates_evaluate_and_waive() {
        assert!(Gate::at_least("tput", 10.0, 5.0).ok());
        assert!(!Gate::at_least("tput", 4.0, 5.0).ok());
        assert!(Gate::at_most("lat", 4.0, 5.0).ok());
        assert!(!Gate::at_most("lat", 6.0, 5.0).ok());
        let waived = Gate::at_least("speedup", 1.0, 1.8).waive_if(true, "1-core host");
        assert!(waived.ok());
        assert!(waived.json().contains("\"verdict\":\"waived\""));
        assert!(!Gate::at_least("speedup", 1.0, 1.8)
            .waive_if(false, "n/a")
            .ok());
    }

    #[test]
    fn check_gates_reports_all() {
        assert!(check_gates(&[], &[Gate::at_least("a", 2.0, 1.0)]));
        assert!(!check_gates(
            &[("host_cpus", 8.0)],
            &[Gate::at_least("a", 2.0, 1.0), Gate::at_most("b", 9.0, 5.0)]
        ));
    }
}
