//! Ablation sweeps: UTS steal granularity, FT overlap benefit.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::ablation::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
