//! Engine microbenchmark: simcall throughput, handoff latency, UTS host
//! wall-clock with the scheduler-bypass fast path on vs off, and parallel
//! backend scaling on a partitioned spawn tree.
//!
//! Always writes `BENCH_simcore.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when any gate trips:
//!
//! * simcall throughput below half the baseline's;
//! * scheduler handoff latency more than double the baseline's;
//! * parallel speedup at 4 workers below 1.8x — enforced only when the
//!   measuring host actually has ≥ 4 CPUs (a 1-core builder cannot observe
//!   parallel speedup, and a gate it cannot pass would just get deleted).
//!
//! On failure every gate's measured value, bound and verdict is printed as
//! one JSON line so CI logs capture the whole picture in one grep — not
//! just whichever gate happened to trip first.

struct Gate {
    name: &'static str,
    value: f64,
    bound: f64,
    /// `true` when the gate wants `value >= bound`, `false` for `<=`.
    at_least: bool,
    /// `None` = enforced; `Some(why)` = reported but not enforced.
    waived: Option<&'static str>,
}

impl Gate {
    fn ok(&self) -> bool {
        if self.waived.is_some() {
            return true;
        }
        if self.at_least {
            self.value >= self.bound
        } else {
            self.value <= self.bound
        }
    }

    fn json(&self) -> String {
        let verdict = if self.waived.is_some() {
            "waived"
        } else if self.ok() {
            "ok"
        } else {
            "fail"
        };
        let waived = match self.waived {
            Some(why) => format!(",\"waived\":\"{why}\""),
            None => String::new(),
        };
        format!(
            "{{\"gate\":\"{}\",\"value\":{:.3},\"{}\":{:.3},\"verdict\":\"{verdict}\"{waived}}}",
            self.name,
            self.value,
            if self.at_least { "min" } else { "max" },
            self.bound,
        )
    }
}

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_simcore.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| {
        let s = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", p.display()));
        let tput = hupc_bench::exp::simcore::json_number(&s, "simcalls_per_sec_fast")
            .unwrap_or_else(|| panic!("no simcalls_per_sec_fast in {}", p.display()));
        let hop = hupc_bench::exp::simcore::json_number(&s, "handoff_ns")
            .unwrap_or_else(|| panic!("no handoff_ns in {}", p.display()));
        (tput, hop)
    });

    let (tables, metrics) = hupc_bench::exp::simcore::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_simcore.json", metrics.to_json())
        .expect("cannot write BENCH_simcore.json");
    eprintln!("[wrote BENCH_simcore.json]");

    if let Some((base_tput, base_hop)) = baseline {
        let gates = [
            Gate {
                name: "simcalls_per_sec_fast",
                value: metrics.simcalls_per_sec_fast,
                bound: base_tput / 2.0,
                at_least: true,
                waived: None,
            },
            Gate {
                name: "handoff_ns",
                value: metrics.handoff_ns,
                bound: base_hop * 2.0,
                at_least: false,
                waived: None,
            },
            Gate {
                name: "parallel_speedup_4w",
                value: metrics.parallel_speedup_4w,
                bound: 1.8,
                at_least: true,
                waived: if metrics.host_cpus >= 4.0 {
                    None
                } else {
                    Some("host has fewer than 4 CPUs")
                },
            },
        ];
        if gates.iter().all(Gate::ok) {
            eprintln!(
                "[perf check ok: {}]",
                gates
                    .iter()
                    .map(Gate::json)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        } else {
            // Every gate in one machine-readable line, failing or not —
            // a regression report that omits the passing context is the
            // thing this replaced.
            eprintln!(
                "PERF REGRESSION: {{\"host_cpus\":{:.0},\"gates\":[{}]}}",
                metrics.host_cpus,
                gates
                    .iter()
                    .map(Gate::json)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            std::process::exit(1);
        }
    }
}
