//! Engine microbenchmark: simcall throughput, handoff latency, UTS host
//! wall-clock with the scheduler-bypass fast path on vs off, and parallel
//! backend scaling on a partitioned spawn tree.
//!
//! Always writes `BENCH_simcore.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when any gate trips:
//!
//! * simcall throughput below half the baseline's;
//! * scheduler handoff latency more than double the baseline's;
//! * parallel speedup at 4 workers below 1.8x — enforced only when the
//!   measuring host actually has ≥ 4 CPUs (a 1-core builder cannot observe
//!   parallel speedup, and a gate it cannot pass would just get deleted).
//!
//! On failure every gate's measured value, bound and verdict is printed as
//! one JSON line so CI logs capture the whole picture in one grep — not
//! just whichever gate happened to trip first.

use hupc_bench::{baseline_metrics, enforce_gates, Gate};

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_simcore.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args
        .check
        .as_ref()
        .map(|p| baseline_metrics(p, &["simcalls_per_sec_fast", "handoff_ns"]));

    let (tables, metrics) = hupc_bench::exp::simcore::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_simcore.json", metrics.to_json())
        .expect("cannot write BENCH_simcore.json");
    eprintln!("[wrote BENCH_simcore.json]");

    if let Some(base) = baseline {
        enforce_gates(
            &[("host_cpus", metrics.host_cpus)],
            &[
                Gate::at_least(
                    "simcalls_per_sec_fast",
                    metrics.simcalls_per_sec_fast,
                    base[0] / 2.0,
                ),
                Gate::at_most("handoff_ns", metrics.handoff_ns, base[1] * 2.0),
                Gate::at_least("parallel_speedup_4w", metrics.parallel_speedup_4w, 1.8)
                    .waive_if(metrics.host_cpus < 4.0, "host has fewer than 4 CPUs"),
            ],
        );
    }
}
