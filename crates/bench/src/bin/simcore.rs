//! Engine microbenchmark: simcall throughput, handoff latency, and UTS
//! host wall-clock with the scheduler-bypass fast path on vs off.
//!
//! Always writes `BENCH_simcore.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when simcall
//! throughput fell below half the baseline's, or when the scheduler
//! handoff latency more than doubled — the CI perf-smoke gate.

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_simcore.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| {
        let s = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", p.display()));
        let tput = hupc_bench::exp::simcore::json_number(&s, "simcalls_per_sec_fast")
            .unwrap_or_else(|| panic!("no simcalls_per_sec_fast in {}", p.display()));
        let hop = hupc_bench::exp::simcore::json_number(&s, "handoff_ns")
            .unwrap_or_else(|| panic!("no handoff_ns in {}", p.display()));
        (tput, hop)
    });

    let (tables, metrics) = hupc_bench::exp::simcore::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_simcore.json", metrics.to_json())
        .expect("cannot write BENCH_simcore.json");
    eprintln!("[wrote BENCH_simcore.json]");

    if let Some((base_tput, base_hop)) = baseline {
        let mut failed = false;
        let tput = metrics.simcalls_per_sec_fast;
        if tput < base_tput / 2.0 {
            eprintln!(
                "PERF REGRESSION: simcall throughput {tput:.0}/s is less than half \
                 the baseline {base_tput:.0}/s"
            );
            failed = true;
        }
        let hop = metrics.handoff_ns;
        if hop > base_hop * 2.0 {
            eprintln!(
                "PERF REGRESSION: handoff latency {hop:.0}ns/hop is more than double \
                 the baseline {base_hop:.0}ns/hop"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "[perf check ok: {tput:.0} simcalls/s (baseline {base_tput:.0}), \
             {hop:.0}ns/hop (baseline {base_hop:.0})]"
        );
    }
}
