//! Engine microbenchmark: simcall throughput, handoff latency, and UTS
//! host wall-clock with the scheduler-bypass fast path on vs off.
//!
//! Always writes `BENCH_simcore.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when simcall
//! throughput fell below half the baseline's — the CI perf-smoke gate.

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_simcore.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| {
        let s = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", p.display()));
        hupc_bench::exp::simcore::json_number(&s, "simcalls_per_sec_fast")
            .unwrap_or_else(|| panic!("no simcalls_per_sec_fast in {}", p.display()))
    });

    let (tables, metrics) = hupc_bench::exp::simcore::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_simcore.json", metrics.to_json())
        .expect("cannot write BENCH_simcore.json");
    eprintln!("[wrote BENCH_simcore.json]");

    if let Some(base) = baseline {
        let now = metrics.simcalls_per_sec_fast;
        if now < base / 2.0 {
            eprintln!(
                "PERF REGRESSION: simcall throughput {now:.0}/s is less than half \
                 the baseline {base:.0}/s"
            );
            std::process::exit(1);
        }
        eprintln!("[perf check ok: {now:.0}/s vs baseline {base:.0}/s]");
    }
}
