//! Regenerate thesis Table 3 2.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::table_3_2::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
