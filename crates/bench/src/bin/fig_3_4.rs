//! Regenerate thesis Fig 3 4.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fig_3_4::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
