//! Flat vs hierarchical collectives benchmark: broadcast, allreduce,
//! allgather and the staged barrier at Pyramid scale, plus the coalesced
//! all-to-all on Lehman.
//!
//! Always writes `BENCH_coll.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when the broadcast or
//! allreduce speedup drops below 2x — or, on full (non `--quick`) runs,
//! below half the committed baseline — the CI perf-smoke gate.

use hupc_bench::{baseline_metrics, enforce_gates, Gate};

/// The gated metrics: hierarchical must stay at least 2x ahead of flat.
const GATED: [&str; 2] = ["bcast_speedup", "allreduce_speedup"];

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_coll.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| baseline_metrics(p, &GATED));

    let (tables, metrics) = hupc_bench::exp::coll::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_coll.json", metrics.to_json()).expect("cannot write BENCH_coll.json");
    eprintln!("[wrote BENCH_coll.json]");

    if let Some(base) = baseline {
        let now = [metrics.bcast_speedup, metrics.allreduce_speedup];
        let gates: Vec<Gate> = GATED
            .iter()
            .zip(now)
            .zip(&base)
            .map(|((key, now), base)| {
                // Quick runs use a smaller machine slice, so the committed
                // full-scale baseline only tightens the floor on full runs.
                let floor = if args.quick { 2.0 } else { (base / 2.0).max(2.0) };
                Gate::at_least(*key, now, floor)
            })
            .collect();
        enforce_gates(&[], &gates);
    }
}
