//! Flat vs hierarchical collectives benchmark: broadcast, allreduce,
//! allgather and the staged barrier at Pyramid scale, plus the coalesced
//! all-to-all on Lehman.
//!
//! Always writes `BENCH_coll.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when the broadcast or
//! allreduce speedup drops below 2x — or, on full (non `--quick`) runs,
//! below half the committed baseline — the CI perf-smoke gate.

use hupc_bench::exp::simcore::json_number;

/// The gated metrics: hierarchical must stay at least 2x ahead of flat.
const GATED: [&str; 2] = ["bcast_speedup", "allreduce_speedup"];

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_coll.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| {
        let s = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", p.display()));
        GATED.map(|key| {
            json_number(&s, key).unwrap_or_else(|| panic!("no {key} in {}", p.display()))
        })
    });

    let (tables, metrics) = hupc_bench::exp::coll::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_coll.json", metrics.to_json()).expect("cannot write BENCH_coll.json");
    eprintln!("[wrote BENCH_coll.json]");

    if let Some(base) = baseline {
        let now = [metrics.bcast_speedup, metrics.allreduce_speedup];
        let mut failed = false;
        for ((key, now), base) in GATED.iter().zip(now).zip(base) {
            // Quick runs use a smaller machine slice, so the committed
            // full-scale baseline only tightens the floor on full runs.
            let floor = if args.quick { 2.0 } else { (base / 2.0).max(2.0) };
            if now < floor {
                eprintln!("PERF REGRESSION: {key} = {now:.2}x is below the {floor:.2}x floor");
                failed = true;
            } else {
                eprintln!("[perf check ok: {key} = {now:.2}x vs baseline {base:.2}x]");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
