//! Serving-path benchmark: throughput-vs-offered-load knee curve for the
//! sharded PGAS KV service, overload shedding, and straggler tail-latency
//! experiments.
//!
//! Always writes `BENCH_serve.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when:
//!   - sub-saturation p99 exceeds 2x the committed baseline,
//!   - peak achieved throughput drops below half the committed baseline,
//!   - the straggler experiment stops showing the tail-at-scale shape
//!     (p999 must degrade ≥ 1.2x while p50 stays within 1.5x fault-free).
//!
//! All times are virtual, so the gate catches semantic regressions in the
//! serving/runtime path, independent of host speed.

use hupc_bench::exp::simcore::json_number;

const GATED: [&str; 2] = ["sub_saturation_p99_us", "peak_krps"];

fn main() {
    let args = hupc_bench::parse_args();
    let baseline = args.check.as_ref().map(|p| {
        let s = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", p.display()));
        GATED.map(|key| {
            json_number(&s, key).unwrap_or_else(|| panic!("no {key} in {}", p.display()))
        })
    });

    let (tables, m) = hupc_bench::exp::serve::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_serve.json", m.to_json()).expect("cannot write BENCH_serve.json");
    eprintln!("[wrote BENCH_serve.json]");

    if let Some([base_p99, base_peak]) = baseline {
        let mut failed = false;

        // Latency gate: lower is better, so the ceiling is 2x the baseline.
        // Quick runs sample fewer requests; keep a generous fixed ceiling.
        let p99_ceiling = if args.quick {
            (base_p99 * 2.0).max(200.0)
        } else {
            base_p99 * 2.0
        };
        if m.sub_saturation_p99_us > p99_ceiling {
            eprintln!(
                "PERF REGRESSION: sub_saturation_p99_us = {:.1} exceeds the {:.1} ceiling",
                m.sub_saturation_p99_us, p99_ceiling
            );
            failed = true;
        } else {
            eprintln!(
                "[perf check ok: sub_saturation_p99_us = {:.1} vs baseline {:.1}]",
                m.sub_saturation_p99_us, base_p99
            );
        }

        // Throughput gate: higher is better, floor at half the baseline.
        let peak_floor = if args.quick {
            base_peak / 4.0
        } else {
            base_peak / 2.0
        };
        if m.peak_krps < peak_floor {
            eprintln!(
                "PERF REGRESSION: peak_krps = {:.0} is below the {:.0} floor",
                m.peak_krps, peak_floor
            );
            failed = true;
        } else {
            eprintln!(
                "[perf check ok: peak_krps = {:.0} vs baseline {:.0}]",
                m.peak_krps, base_peak
            );
        }

        // Tail-at-scale shape: the straggler must fatten the tail without
        // moving the median much — the thesis' motivating asymmetry.
        if m.straggler_p999_us < m.fault_free_p999_us * 1.2 {
            eprintln!(
                "SHAPE REGRESSION: straggler p999 {:.1}µs not ≥1.2x fault-free {:.1}µs",
                m.straggler_p999_us, m.fault_free_p999_us
            );
            failed = true;
        } else if m.straggler_p50_us > m.fault_free_p50_us * 1.5 {
            eprintln!(
                "SHAPE REGRESSION: straggler p50 {:.1}µs exceeds 1.5x fault-free {:.1}µs",
                m.straggler_p50_us, m.fault_free_p50_us
            );
            failed = true;
        } else {
            eprintln!(
                "[tail shape ok: p999 {:.1}→{:.1}µs, p50 {:.1}→{:.1}µs]",
                m.fault_free_p999_us, m.straggler_p999_us, m.fault_free_p50_us, m.straggler_p50_us
            );
        }

        if failed {
            std::process::exit(1);
        }
    }
}
