//! Serving-path benchmark: throughput-vs-offered-load knee curve for the
//! sharded PGAS KV service, overload shedding, and straggler tail-latency
//! experiments.
//!
//! Always writes `BENCH_serve.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when:
//!   - sub-saturation p99 exceeds 2x the committed baseline,
//!   - peak achieved throughput drops below half the committed baseline,
//!   - the straggler experiment stops showing the tail-at-scale shape
//!     (p999 must degrade ≥ 1.2x while p50 stays within 1.5x fault-free).
//!
//! All times are virtual, so the gate catches semantic regressions in the
//! serving/runtime path, independent of host speed.

use hupc_bench::{baseline_metrics, enforce_gates, Gate};

const GATED: [&str; 2] = ["sub_saturation_p99_us", "peak_krps"];

fn main() {
    let args = hupc_bench::parse_args();
    let baseline = args.check.as_ref().map(|p| baseline_metrics(p, &GATED));

    let (tables, m) = hupc_bench::exp::serve::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_serve.json", m.to_json()).expect("cannot write BENCH_serve.json");
    eprintln!("[wrote BENCH_serve.json]");

    if let Some(base) = baseline {
        let (base_p99, base_peak) = (base[0], base[1]);
        // Latency ceiling is 2x the baseline (quick runs sample fewer
        // requests, so keep a generous fixed floor on the ceiling); the
        // throughput floor is half the baseline (a quarter on quick runs).
        let p99_ceiling = if args.quick {
            (base_p99 * 2.0).max(200.0)
        } else {
            base_p99 * 2.0
        };
        let peak_floor = if args.quick {
            base_peak / 4.0
        } else {
            base_peak / 2.0
        };
        enforce_gates(
            &[],
            &[
                Gate::at_most("sub_saturation_p99_us", m.sub_saturation_p99_us, p99_ceiling),
                Gate::at_least("peak_krps", m.peak_krps, peak_floor),
                // Tail-at-scale shape: the straggler must fatten the tail
                // without moving the median much — the thesis' motivating
                // asymmetry.
                Gate::at_least(
                    "straggler_p999_ratio",
                    m.straggler_p999_us / m.fault_free_p999_us,
                    1.2,
                ),
                Gate::at_most(
                    "straggler_p50_ratio",
                    m.straggler_p50_us / m.fault_free_p50_us,
                    1.5,
                ),
            ],
        );
    }
}
