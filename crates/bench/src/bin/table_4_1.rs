//! Regenerate thesis Table 4 1.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::table_4_1::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
