//! Regenerate thesis Fig 4 6.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fig_4_6::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
