//! Regenerate thesis Fig 3 3.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fig_3_3::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
