//! Regenerate thesis Fig 4 2.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fig_4_2::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
