//! Regenerate thesis Fig 4 5.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fig_4_5::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
