//! Robustness sweep: UTS under injected packet loss.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::fault_uts::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
