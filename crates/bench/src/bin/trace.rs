//! Trace capture: small UTS / FT / GUPS runs under the full tracer,
//! dumping JSONL + chrome://tracing + metrics artifacts.

fn main() {
    let args = hupc_bench::parse_args();
    let tables = hupc_bench::exp::trace::run(args.quick);
    hupc_bench::report::emit(&args, &tables);
}
