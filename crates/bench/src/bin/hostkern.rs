//! Host-kernel microbenchmark: SHA-1 child derivation, FFT butterflies and
//! bulk PGAS element transfers, batched/zero-copy vs the scalar baselines.
//!
//! Always writes `BENCH_hostkern.json` in the working directory. With
//! `--check <baseline.json>` the run fails (exit 1) when any headline
//! metric fell below half the baseline's — the CI perf-smoke gate.

use hupc_bench::{baseline_metrics, enforce_gates, Gate};

/// The gated metrics: each must stay above half its baseline value.
const GATED: [&str; 3] = [
    "sha1_batched_mb_s",
    "fft_radix4_mflops",
    "bulk_zero_copy_melems_s",
];

fn main() {
    let args = hupc_bench::parse_args();
    // Read the baseline up front: `--check BENCH_hostkern.json` compares
    // against the committed file this run is about to overwrite.
    let baseline = args.check.as_ref().map(|p| baseline_metrics(p, &GATED));

    let (tables, metrics) = hupc_bench::exp::hostkern::run(args.quick);
    hupc_bench::report::emit(&args, &tables);

    std::fs::write("BENCH_hostkern.json", metrics.to_json())
        .expect("cannot write BENCH_hostkern.json");
    eprintln!("[wrote BENCH_hostkern.json]");

    if let Some(base) = baseline {
        let now = [
            metrics.sha1_batched_mb_s,
            metrics.fft_radix4_mflops,
            metrics.bulk_zero_copy_melems_s,
        ];
        let gates: Vec<Gate> = GATED
            .iter()
            .zip(now)
            .zip(&base)
            .map(|((key, now), base)| Gate::at_least(*key, now, base / 2.0))
            .collect();
        enforce_gates(&[], &gates);
    }
}
