//! Run every experiment in sequence, then the workload-registry sweep.
//!
//! * `--quick` — reduced sweeps everywhere (smoke-sized runs);
//! * `--smoke` — skip the thesis tables/figures and run only the workload
//!   sweep (quick), for the CI perf-smoke lane;
//! * `--check <BENCH_apps.json>` — gate the sweep against the committed
//!   baseline: every cell must pass its oracle and the three breadth-wave
//!   apps (`md`, `cg`, `stencil2d`) must stay within 2x of the baseline's
//!   virtual seconds (virtual time is deterministic, so that headroom is
//!   for intentional model changes, not noise).
//!
//! The sweep always writes `BENCH_apps.json` in the working directory —
//! one comparable JSON report of the whole registry.

use hupc_bench::{baseline_metrics, enforce_gates, Gate};

type Experiment = (&'static str, fn(bool) -> Vec<hupc_bench::Table>);

const GATED_SECONDS: [&str; 3] = ["md_seconds", "cg_seconds", "stencil2d_seconds"];

fn main() {
    let args = hupc_bench::parse_args();
    let baseline = args
        .check
        .as_ref()
        .map(|p| baseline_metrics(p, &GATED_SECONDS));

    if !args.smoke {
        let experiments: Vec<Experiment> = vec![
            ("Table 3.1", hupc_bench::exp::table_3_1::run),
            ("Fig 3.3", hupc_bench::exp::fig_3_3::run),
            ("Table 3.2", hupc_bench::exp::table_3_2::run),
            ("Fig 3.4", hupc_bench::exp::fig_3_4::run),
            ("Table 4.1", hupc_bench::exp::table_4_1::run),
            ("Fig 4.2", hupc_bench::exp::fig_4_2::run),
            ("Fig 4.4", hupc_bench::exp::fig_4_4::run),
            ("Fig 4.5", hupc_bench::exp::fig_4_5::run),
            ("Fig 4.6", hupc_bench::exp::fig_4_6::run),
            ("Fault sweep", hupc_bench::exp::fault_uts::run),
        ];
        for (name, f) in experiments {
            eprintln!("[running {name} ...]");
            let t0 = std::time::Instant::now();
            let tables = f(args.quick);
            hupc_bench::report::emit(&args, &tables);
            eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
        }
    }

    eprintln!("[running workload sweep ...]");
    let t0 = std::time::Instant::now();
    let (tables, m) = hupc_bench::exp::apps::run(args.quick || args.smoke);
    hupc_bench::report::emit(&args, &tables);
    eprintln!("[workload sweep done in {:.1}s]", t0.elapsed().as_secs_f64());

    std::fs::write("BENCH_apps.json", m.to_json()).expect("cannot write BENCH_apps.json");
    eprintln!("[wrote BENCH_apps.json]");

    if let Some(base) = baseline {
        let now = [m.md_seconds, m.cg_seconds, m.stencil2d_seconds];
        let mut gates = vec![Gate::at_least("passed_runs", m.passed_runs, m.total_runs)];
        gates.extend(
            GATED_SECONDS
                .iter()
                .zip(now)
                .zip(&base)
                .map(|((key, now), base)| Gate::at_most(*key, now, base * 2.0)),
        );
        enforce_gates(&[("total_runs", m.total_runs)], &gates);
    } else if m.passed_runs < m.total_runs {
        // Even without a baseline, a failing oracle is a hard error.
        eprintln!(
            "WORKLOAD FAILURE: {}/{} sweep cells passed",
            m.passed_runs, m.total_runs
        );
        std::process::exit(1);
    }
}
