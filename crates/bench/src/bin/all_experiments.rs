//! Run every experiment in sequence (use --quick for a smoke sweep).

type Experiment = (&'static str, fn(bool) -> Vec<hupc_bench::Table>);

fn main() {
    let args = hupc_bench::parse_args();
    let experiments: Vec<Experiment> = vec![
        ("Table 3.1", hupc_bench::exp::table_3_1::run),
        ("Fig 3.3", hupc_bench::exp::fig_3_3::run),
        ("Table 3.2", hupc_bench::exp::table_3_2::run),
        ("Fig 3.4", hupc_bench::exp::fig_3_4::run),
        ("Table 4.1", hupc_bench::exp::table_4_1::run),
        ("Fig 4.2", hupc_bench::exp::fig_4_2::run),
        ("Fig 4.4", hupc_bench::exp::fig_4_4::run),
        ("Fig 4.5", hupc_bench::exp::fig_4_5::run),
        ("Fig 4.6", hupc_bench::exp::fig_4_6::run),
        ("Fault sweep", hupc_bench::exp::fault_uts::run),
    ];
    for (name, f) in experiments {
        eprintln!("[running {name} ...]");
        let t0 = std::time::Instant::now();
        let tables = f(args.quick);
        hupc_bench::report::emit(&args, &tables);
        eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
