//! Table 3.2 — UTS profiling: overall improvement and local-steal ratios,
//! baseline vs optimized (local-stealing + rapid diffusion).

use hupc::net::Conduit;
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

/// Thesis values per row `(threads, overall %, base local %, opt local %)`.
pub const PAPER_IB: [(usize, f64, f64, f64); 3] = [
    (32, 3.4, 36.2, 59.0),
    (64, 7.1, 58.1, 82.9),
    (128, 11.2, 72.2, 90.9),
];
pub const PAPER_ETH: [(usize, f64, f64, f64); 3] = [
    (32, 49.4, 18.2, 57.8),
    (64, 66.5, 40.5, 81.1),
    (128, 99.5, 58.1, 89.7),
];

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3.2 — UTS profiling, 16 Pyramid nodes (optimized = local-stealing + rapid-diffusion)",
        &[
            "config",
            "improvement %",
            "thesis %",
            "local steal % (base)",
            "thesis",
            "local steal % (opt)",
            "thesis",
        ],
    );
    for (name, conduit, rows) in [
        ("Infiniband", Conduit::ib_ddr(), PAPER_IB),
        ("Ethernet", Conduit::gige(), PAPER_ETH),
    ] {
        for (threads, p_imp, p_base, p_opt) in rows {
            if quick && threads > 32 {
                continue;
            }
            let base = run_uts(UtsConfig::thesis(
                threads,
                conduit.clone(),
                StealStrategy::Random,
            ));
            let opt = run_uts(UtsConfig::thesis(
                threads,
                conduit.clone(),
                StealStrategy::LocalFirstRapid,
            ));
            let imp = (base.seconds / opt.seconds - 1.0) * 100.0;
            t.row(vec![
                format!("{name} {threads}/{}", threads / 16),
                format!("{imp:.1}"),
                format!("{p_imp:.1}"),
                format!("{:.1}", 100.0 * base.local_steal_ratio()),
                format!("{p_base:.1}"),
                format!("{:.1}", 100.0 * opt.local_steal_ratio()),
                format!("{p_opt:.1}"),
            ]);
        }
    }
    vec![t]
}
