//! Serving-latency experiment: throughput-vs-offered-load knee curve and
//! fault-plan tail-latency deltas for the hupc-serve KV service.
//!
//! Everything here is measured in *virtual* time, so the numbers are a
//! deterministic function of the config — the committed baseline gates
//! semantic regressions in the serving path (a scheduling change that
//! doubles p99 fails CI on any host), not host speed.
//!
//! Three sections:
//! 1. **Knee curve** — the open-loop arrival rate sweeps from well under
//!    capacity to past it; achieved throughput flattens while p99/p999
//!    explode, locating the knee the ROADMAP's SLO scenarios care about.
//! 2. **Overload shedding** — the past-knee point rerun with the admission
//!    bound: served p999 collapses back down, demand is shed instead of
//!    queued.
//! 3. **Faults as tail experiments** — the sub-saturation point under a
//!    straggler plan (one node at 3x CPU slowdown): p999 degrades while
//!    p50 barely moves, the classic tail-at-scale signature.

use hupc::serve::{
    run_model, run_serve, ArrivalProcess, KeyDist, ModelConfig, OpMix, ServeConfig, ServeResult,
    TrafficConfig,
};
use hupc::prelude::{time, FaultPlan, UpcConfig};
use hupc::sim::SimBackend;

use crate::Table;

/// Gated + reported metrics, flat for `json_number` extraction.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    pub threads: f64,
    /// Knee sweep, lowest offered load first.
    pub offered_krps: [f64; 4],
    pub achieved_krps: [f64; 4],
    pub p50_us: [f64; 4],
    pub p99_us: [f64; 4],
    pub p999_us: [f64; 4],
    /// p99 at the sub-saturation point (gate: ≤ 2x committed baseline).
    pub sub_saturation_p99_us: f64,
    /// Best achieved throughput across the sweep (gate: ≥ baseline / 2).
    pub peak_krps: f64,
    /// Past-knee point rerun with the admission bound.
    pub shed_pct_overload: f64,
    pub shed_p999_us: f64,
    /// Straggler experiment at sub-saturation.
    pub fault_free_p50_us: f64,
    pub fault_free_p999_us: f64,
    pub straggler_p50_us: f64,
    pub straggler_p999_us: f64,
    /// Multi-LP model-mode throughput on the parallel DES backend.
    pub model_parallel_krps: f64,
}

impl ServeMetrics {
    pub fn to_json(&self) -> String {
        let mut kv: Vec<(String, f64)> = vec![("threads".into(), self.threads)];
        for i in 0..4 {
            kv.push((format!("offered_krps_{}", i + 1), self.offered_krps[i]));
            kv.push((format!("achieved_krps_{}", i + 1), self.achieved_krps[i]));
            kv.push((format!("p50_us_{}", i + 1), self.p50_us[i]));
            kv.push((format!("p99_us_{}", i + 1), self.p99_us[i]));
            kv.push((format!("p999_us_{}", i + 1), self.p999_us[i]));
        }
        kv.push(("sub_saturation_p99_us".into(), self.sub_saturation_p99_us));
        kv.push(("peak_krps".into(), self.peak_krps));
        kv.push(("shed_pct_overload".into(), self.shed_pct_overload));
        kv.push(("shed_p999_us".into(), self.shed_p999_us));
        kv.push(("fault_free_p50_us".into(), self.fault_free_p50_us));
        kv.push(("fault_free_p999_us".into(), self.fault_free_p999_us));
        kv.push(("straggler_p50_us".into(), self.straggler_p50_us));
        kv.push(("straggler_p999_us".into(), self.straggler_p999_us));
        kv.push(("model_parallel_krps".into(), self.model_parallel_krps));
        let body: Vec<String> = kv
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:.3}"))
            .collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }
}

const US: f64 = 1_000.0; // ns per µs

fn us(ns: u64) -> f64 {
    ns as f64 / US
}

fn base_cfg(quick: bool, mean_gap: hupc::sim::Time, seed: u64) -> ServeConfig {
    ServeConfig {
        upc: UpcConfig::test_default(16, 4),
        traffic: TrafficConfig {
            process: ArrivalProcess::Poisson { mean_gap },
            mix: OpMix::read_heavy(),
            requests_per_frontend: if quick { 120 } else { 400 },
            batch_len: 4,
            keys: KeyDist::Uniform,
            seed,
        },
        partitions_per_thread: 2,
        keys_per_partition: 64,
        epochs: 1,
        shed_after: None,
        apply_ns: 200,
        get_compute_ns: 100,
        poll_gap: time::us(1),
    }
}

fn krps(r: &ServeResult) -> f64 {
    r.throughput_rps() / 1_000.0
}

pub fn run(quick: bool) -> (Vec<Table>, ServeMetrics) {
    let mut m = ServeMetrics {
        threads: 16.0,
        ..Default::default()
    };

    // --- 1. Knee curve -----------------------------------------------------
    // Per-frontend mean inter-arrival gaps, sub-saturation → past the knee.
    let gaps = [time::us(16), time::us(8), time::us(4), time::us(2)];
    let mut knee = Table::new(
        "serve: throughput vs offered load (16 threads / 4 nodes, 70/20/10 GET/PUT/BATCH)",
        &[
            "offered krps",
            "achieved krps",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "shed %",
        ],
    );
    let mut last_result = None;
    for (i, gap) in gaps.iter().enumerate() {
        let r = run_serve(base_cfg(quick, *gap, 0xBE5E ^ i as u64));
        let offered = 16.0 / hupc::sim::time::as_secs_f64(*gap) / 1_000.0;
        m.offered_krps[i] = offered;
        m.achieved_krps[i] = krps(&r);
        m.p50_us[i] = us(r.hist.p50());
        m.p99_us[i] = us(r.hist.p99());
        m.p999_us[i] = us(r.hist.p999());
        knee.row(vec![
            format!("{offered:.0}"),
            format!("{:.0}", m.achieved_krps[i]),
            format!("{:.1}", m.p50_us[i]),
            format!("{:.1}", m.p99_us[i]),
            format!("{:.1}", m.p999_us[i]),
            format!("{:.1}", 100.0 * r.shed as f64 / r.generated as f64),
        ]);
        last_result = Some(r);
    }
    m.sub_saturation_p99_us = m.p99_us[0];
    m.peak_krps = m
        .achieved_krps
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);

    // --- 2. Overload shedding ---------------------------------------------
    let mut shed_cfg = base_cfg(quick, gaps[3], 0xBE5E ^ 3);
    shed_cfg.shed_after = Some(time::us(200));
    let shed_run = run_serve(shed_cfg);
    m.shed_pct_overload = 100.0 * shed_run.shed as f64 / shed_run.generated as f64;
    m.shed_p999_us = us(shed_run.hist.p999());
    let unbounded = last_result.expect("knee sweep ran");
    let mut shed_t = Table::new(
        "serve: past-knee point with / without the admission bound (200µs)",
        &["variant", "served p999 µs", "shed %"],
    );
    shed_t.row(vec![
        "unbounded queueing".into(),
        format!("{:.1}", us(unbounded.hist.p999())),
        "0.0".into(),
    ]);
    shed_t.row(vec![
        "shed_after = 200µs".into(),
        format!("{:.1}", m.shed_p999_us),
        format!("{:.1}", m.shed_pct_overload),
    ]);

    // --- 3. Straggler tail experiment -------------------------------------
    // Compute-heavy variant (apply cost dominates the wire RTT) at
    // sub-saturation: slowing one node's CPUs 3x queues requests behind its
    // shards' applies while the other three nodes are untouched — the tail
    // fattens, the median barely moves.
    let mut ff_cfg = base_cfg(quick, time::us(32), 0x51DE);
    ff_cfg.apply_ns = 4_000;
    ff_cfg.get_compute_ns = 2_000;
    let fault_free = run_serve(ff_cfg.clone());
    let mut strag_cfg = ff_cfg;
    strag_cfg.upc.gasnet.fault = Some(FaultPlan::new(0xAF).straggler(1, 3.0));
    let straggler = run_serve(strag_cfg);
    m.fault_free_p50_us = us(fault_free.hist.p50());
    m.fault_free_p999_us = us(fault_free.hist.p999());
    m.straggler_p50_us = us(straggler.hist.p50());
    m.straggler_p999_us = us(straggler.hist.p999());
    let mut fault_t = Table::new(
        "serve: straggler (node 1 at 3x slowdown) vs fault-free, sub-saturation",
        &["variant", "p50 µs", "p99 µs", "p999 µs"],
    );
    fault_t.row(vec![
        "fault-free".into(),
        format!("{:.1}", m.fault_free_p50_us),
        format!("{:.1}", us(fault_free.hist.p99())),
        format!("{:.1}", m.fault_free_p999_us),
    ]);
    fault_t.row(vec![
        "straggler".into(),
        format!("{:.1}", m.straggler_p50_us),
        format!("{:.1}", us(straggler.hist.p99())),
        format!("{:.1}", m.straggler_p999_us),
    ]);

    // --- 4. Multi-LP model on the parallel backend ------------------------
    let mut model_cfg = ModelConfig::small(0x4E57, SimBackend::Parallel(4));
    model_cfg.nodes = 8;
    model_cfg.traffic.requests_per_frontend = if quick { 400 } else { 1500 };
    let model = run_model(model_cfg);
    m.model_parallel_krps = model.throughput_rps() / 1_000.0;
    let mut model_t = Table::new(
        "serve: multi-LP queueing model, 8 LPs on Parallel(4)",
        &["completed", "krps", "p99 µs"],
    );
    model_t.row(vec![
        format!("{}", model.completed),
        format!("{:.0}", m.model_parallel_krps),
        format!("{:.1}", us(model.hist.p99())),
    ]);

    (vec![knee, shed_t, fault_t, model_t], m)
}
