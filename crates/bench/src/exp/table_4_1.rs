//! Table 4.1 — STREAM triad under hybrid UPC×sub-thread placement.

use hupc::stream::{run_hybrid_triad, HybridConfig, HybridLayout};

use crate::Table;

/// The thesis rows: (layout, published GB/s).
pub fn layouts() -> Vec<(HybridLayout, f64)> {
    vec![
        (HybridLayout::PureUpc { threads: 8 }, 24.5),
        (HybridLayout::PureOpenMp { threads: 8 }, 23.7),
        (
            HybridLayout::Hybrid {
                upc: 1,
                subs: 8,
                bound: false,
            },
            13.9,
        ),
        (
            HybridLayout::Hybrid {
                upc: 2,
                subs: 4,
                bound: true,
            },
            24.7,
        ),
        (
            HybridLayout::Hybrid {
                upc: 4,
                subs: 2,
                bound: true,
            },
            24.7,
        ),
    ]
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Table 4.1 — STREAM Triad placement study, 1 Lehman node",
        &["configuration", "measured GB/s", "thesis GB/s", "max |err|"],
    );
    for (layout, paper) in layouts() {
        let mut cfg = HybridConfig::table_4_1(layout);
        if quick {
            cfg.elems_total = 1 << 17;
            cfg.iters = 3;
        }
        let r = run_hybrid_triad(cfg);
        t.row(vec![
            r.variant.clone(),
            format!("{:.1}", r.gbps),
            format!("{paper:.1}"),
            format!("{:.1e}", r.max_error),
        ]);
    }
    vec![t]
}
