//! Ablation studies of the design parameters the thesis calls out but does
//! not sweep:
//!
//! * **steal granularity** — §3.3.2.1: "the work stealing granularity
//!   parameter has a strong impact on performance" (the thesis fixes 8 on
//!   InfiniBand and 20 on Ethernet; here the whole range is swept);
//! * **overlap benefit vs decomposition width** — how much the §4.3.3.1
//!   overlap algorithm buys as per-plane messages shrink.

use hupc::fft::{run_ft_upc, ComputeMode, ExchangeKind, FtClass, FtConfig};
use hupc::gasnet::Backend;
use hupc::net::Conduit;
use hupc::topo::{BindPolicy, MachineSpec};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

fn granularity_table(quick: bool) -> Table {
    let mut t = Table::new(
        "Ablation — UTS steal granularity (64 threads, 16 Pyramid nodes, local+rapid)",
        &["granularity", "IB Mnodes/s", "Ethernet Mnodes/s"],
    );
    let grans: &[usize] = if quick { &[4, 16] } else { &[2, 4, 8, 16, 32, 64] };
    for &g in grans {
        let mut row = vec![g.to_string()];
        for conduit in [Conduit::ib_ddr(), Conduit::gige()] {
            let mut cfg = UtsConfig::thesis(64, conduit, StealStrategy::LocalFirstRapid);
            cfg.steal_granularity = g;
            let r = run_uts(cfg);
            row.push(format!("{:.1}", r.mnodes_per_sec));
        }
        t.row(row);
    }
    t
}

fn overlap_table(quick: bool) -> Table {
    let mut t = Table::new(
        "Ablation — overlap vs split-phase comm seconds by thread count (FT class B, 8 Lehman nodes)",
        &["threads", "split-phase", "overlap", "overlap gain"],
    );
    let threads: &[usize] = if quick { &[16] } else { &[8, 16, 32, 64] };
    for &n in threads {
        let mk = |ex: ExchangeKind| FtConfig {
            class: FtClass::B,
            machine: MachineSpec::lehman().with_nodes(8),
            threads: n,
            nodes_used: 8.min(n),
            conduit: Conduit::ib_qdr(),
            backend: Backend::processes_pshm(),
            bind: BindPolicy::PackedCores,
            exchange: ex,
            subthreads: None,
            mode: ComputeMode::Model,
            iters_override: Some(if quick { 2 } else { 5 }),
            overheads: None,
            fault: None,
        };
        let split = run_ft_upc(mk(ExchangeKind::SplitPhase)).comm_seconds;
        let olap = run_ft_upc(mk(ExchangeKind::Overlap)).comm_seconds;
        t.row(vec![
            n.to_string(),
            format!("{split:.3}"),
            format!("{olap:.3}"),
            format!("{:.2}x", split / olap),
        ]);
    }
    t
}

pub fn run(quick: bool) -> Vec<Table> {
    vec![granularity_table(quick), overlap_table(quick)]
}
