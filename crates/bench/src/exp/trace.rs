//! Trace capture — run the three small conformance workloads (UTS, FT,
//! GUPS) under a full-level tracer and dump the artifacts next to the
//! working directory:
//!
//! * `trace_<app>.jsonl`   — the merged event stream (golden format);
//! * `trace_<app>.chrome.json` — load in `chrome://tracing` / Perfetto;
//! * `trace_<app>.metrics.json` — the metrics-registry snapshot.
//!
//! The printed tables summarize event volume per app and, for UTS, the
//! per-group-distance steal breakdown (distance 0 = victim on the thief's
//! own node). Not a thesis figure: this is the observability layer's
//! smoke run, and what CI uploads as its trace artifact.

use std::sync::Arc;

use hupc::fft::{run_ft_upc, FtConfig};
use hupc::gups::{run_gups, GupsConfig, Routing};
use hupc::trace::{to_chrome_trace, to_jsonl, Loc, TraceLevel, Tracer};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

/// Capture one workload under a fresh full-level tracer; returns
/// (events recorded, events dropped, jsonl lines) after writing artifacts.
fn capture(app: &str, work: impl FnOnce()) -> (u64, u64, usize, Arc<Tracer>) {
    let t = Arc::new(Tracer::new(TraceLevel::Full));
    let g = t.install();
    work();
    drop(g);
    let merged = t.merge();
    let jsonl = to_jsonl(&merged);
    let lines = jsonl.lines().count();
    std::fs::write(format!("trace_{app}.jsonl"), &jsonl)
        .unwrap_or_else(|e| panic!("write trace_{app}.jsonl: {e}"));
    std::fs::write(format!("trace_{app}.chrome.json"), to_chrome_trace(&merged))
        .unwrap_or_else(|e| panic!("write trace_{app}.chrome.json: {e}"));
    std::fs::write(
        format!("trace_{app}.metrics.json"),
        t.metrics().snapshot().to_json(),
    )
    .unwrap_or_else(|e| panic!("write trace_{app}.metrics.json: {e}"));
    (t.events_recorded(), t.events_dropped(), lines, t)
}

pub fn run(quick: bool) -> Vec<Table> {
    let uts_threads = if quick { 8 } else { 16 };
    let mut volume = Table::new(
        "Trace capture — event volume per app (full level, unbounded rings)",
        &["app", "events", "dropped", "jsonl lines", "steals"],
    );

    // UTS: big enough to force real cross-node stealing. The full run uses
    // a deeper tree so the steal-distance histogram has a populated tail.
    let mut cfg = UtsConfig::small(uts_threads, 4, StealStrategy::LocalFirstRapid, 7);
    if !quick {
        cfg.tree = hupc::uts::TreeParams::Binomial {
            b0: 500,
            m: 6,
            q: 0.16,
            seed: 7,
        };
    }
    let mut steals = 0;
    let (ev, dr, lines, tracer) = capture("uts", || {
        let r = run_uts(cfg);
        steals = r.local_steals + r.remote_steals;
    });
    volume.row(vec![
        "uts".into(),
        ev.to_string(),
        dr.to_string(),
        lines.to_string(),
        steals.to_string(),
    ]);

    // Steal-locality breakdown from the metrics registry: counters are
    // keyed by topology location, so summing per thread keeps the table
    // deterministic.
    let m = tracer.metrics();
    let mut locality = Table::new(
        format!(
            "UTS steal locality — {uts_threads} threads on 4 nodes, \
             Local-stealing + Rapid-diffusion"
        ),
        &["metric", "total", "distance histogram (hops: count)"],
    );
    let dist_hist = |name: &'static str| -> String {
        let mut merged = vec![0u64; 65];
        let (mut count, mut sum) = (0u64, 0u64);
        for thread in 0..uts_threads as u32 {
            for node in 0..4u32 {
                if let Some(h) = m.histogram(name, Loc::new(node, thread)) {
                    for (i, b) in h.buckets.iter().enumerate() {
                        merged[i] += b;
                    }
                    count += h.count;
                    sum += h.sum;
                }
            }
        }
        // Bucket 0 is distance 0 (same node); bucket i>0 covers hop
        // distances [2^(i-1), 2^i).
        let mut parts = Vec::new();
        for (i, b) in merged.iter().enumerate() {
            if *b > 0 {
                let label = if i == 0 {
                    "0".to_string()
                } else {
                    format!("{}..{}", 1u64 << (i - 1), 1u64 << i)
                };
                parts.push(format!("{label}: {b}"));
            }
        }
        format!("n={count} sum={sum} [{}]", parts.join(", "))
    };
    locality.row(vec![
        "uts.steal_attempts".into(),
        m.counter_total("uts.steal_attempts").to_string(),
        dist_hist("uts.probe_distance"),
    ]);
    locality.row(vec![
        "uts.steals".into(),
        m.counter_total("uts.steals").to_string(),
        dist_hist("uts.steal_distance"),
    ]);
    locality.row(vec![
        "uts.steals_local".into(),
        m.counter_total("uts.steals_local").to_string(),
        String::new(),
    ]);
    locality.row(vec![
        "uts.steals_remote".into(),
        m.counter_total("uts.steals_remote").to_string(),
        String::new(),
    ]);

    // FT: exchange/compute span structure.
    let (ev, dr, lines, _t) = capture("ft", || {
        let r = run_ft_upc(FtConfig::test_custom(16, 16, 16, 2, 2, 2));
        assert!(r.total_seconds > 0.0);
    });
    volume.row(vec![
        "ft".into(),
        ev.to_string(),
        dr.to_string(),
        lines.to_string(),
        "-".into(),
    ]);

    // GUPS: exchange/apply spans over the hierarchical router.
    let (ev, dr, lines, _t) = capture("gups", || {
        let r = run_gups(GupsConfig::small(8, 2, Routing::Hierarchical));
        assert_eq!(r.errors, 0);
    });
    volume.row(vec![
        "gups".into(),
        ev.to_string(),
        dr.to_string(),
        lines.to_string(),
        "-".into(),
    ]);

    eprintln!(
        "[trace artifacts written: trace_{{uts,ft,gups}}.{{jsonl,chrome.json,metrics.json}}]"
    );
    vec![volume, locality]
}
