//! Fig 4.2 — multi-link network microbenchmark on 2 Lehman nodes (QDR IB):
//! round-trip latency and unidirectional flood bandwidth for 1–8 link
//! pairs, processes vs pthreads.

use std::sync::Arc;

use hupc::prelude::*;
use hupc::sim::SimCell;

use crate::Table;

const LINKS: [usize; 4] = [1, 2, 4, 8];
const LAT_SIZES: [usize; 6] = [8, 64, 512, 1 << 12, 1 << 15, 1 << 17];
const BW_SIZES: [usize; 5] = [1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 21];

fn job(links: usize, pthreads: bool) -> UpcJob {
    let threads = 2 * links;
    UpcJob::new(UpcConfig {
        gasnet: GasnetConfig {
            machine: MachineSpec::lehman().with_nodes(2),
            n_threads: threads,
            nodes_used: 2,
            bind: BindPolicy::PackedCores,
            backend: if pthreads {
                Backend::pthreads(links)
            } else {
                Backend::processes_pshm()
            },
            conduit: Conduit::ib_qdr(),
            segment_words: 1 << 20,
            overheads: None,
            fault: None,
            retry: Default::default(),
            barrier_timeout: None,
        },
        safety: ThreadSafety::Multiple,
    })
}

/// Average round-trip `upc_memget` latency per link-pair, µs.
fn latency_us(links: usize, pthreads: bool, bytes: usize, reps: usize) -> f64 {
    let j = job(links, pthreads);
    let out = Arc::new(SimCell::new(0.0f64));
    let o2 = Arc::clone(&out);
    let words = (bytes / 8).max(1);
    j.run(move |upc| {
        let me = upc.mythread();
        let links = upc.threads() / 2;
        upc.barrier();
        if me < links {
            let partner = links + me;
            let mut buf = vec![0u64; words];
            let t0 = upc.now();
            for _ in 0..reps {
                upc.memget(partner, 0, &mut buf);
            }
            let per_op = (upc.now() - t0) as f64 / reps as f64 / 1e3;
            let total = upc.allreduce_sum_f64(per_op);
            if me == 0 {
                o2.with_mut(|v| *v = total / links as f64);
            }
        } else {
            let zero = upc.allreduce_sum_f64(0.0);
            let _ = zero;
        }
        upc.barrier();
    });
    out.get()
}

/// Aggregate flood bandwidth across all link pairs, MB/s.
fn flood_mbps(links: usize, pthreads: bool, bytes: usize, reps: usize) -> f64 {
    let j = job(links, pthreads);
    let out = Arc::new(SimCell::new(0.0f64));
    let o2 = Arc::clone(&out);
    let words = (bytes / 8).max(1);
    j.run(move |upc| {
        let me = upc.mythread();
        let links = upc.threads() / 2;
        upc.barrier();
        let t0 = upc.now();
        if me < links {
            let partner = links + me;
            let data = vec![0u64; words];
            let hs: Vec<Handle> = (0..reps).map(|_| upc.memput_nb(partner, 0, &data)).collect();
            for h in hs {
                upc.wait_sync(h);
            }
        }
        upc.barrier(); // everyone observes the last delivery
        let dt = upc.now() - t0; // equal across threads after the barrier
        if me == 0 {
            let total_bytes = (links * reps * words * 8) as f64;
            o2.with_mut(|v| *v = total_bytes / (dt as f64 / 1e9) / 1e6);
        }
    });
    out.get()
}

pub fn run(quick: bool) -> Vec<Table> {
    let reps = if quick { 4 } else { 16 };
    let mut lat = Table::new(
        "Fig 4.2(a) — round-trip memget latency (µs), 2 Lehman nodes, QDR IB",
        &["size", "1 link", "2 proc", "4 proc", "8 proc", "2 pthr", "4 pthr", "8 pthr"],
    );
    for &sz in &LAT_SIZES {
        let mut cells = vec![human(sz)];
        cells.push(format!("{:.1}", latency_us(1, false, sz, reps)));
        for &l in &LINKS[1..] {
            cells.push(format!("{:.1}", latency_us(l, false, sz, reps)));
        }
        for &l in &LINKS[1..] {
            cells.push(format!("{:.1}", latency_us(l, true, sz, reps)));
        }
        lat.row(cells);
    }
    let mut bw = Table::new(
        "Fig 4.2(b) — unidirectional flood bandwidth (MB/s)",
        &["size", "1 link", "2 proc", "4 proc", "8 proc", "2 pthr", "4 pthr", "8 pthr"],
    );
    for &sz in &BW_SIZES {
        let mut cells = vec![human(sz)];
        cells.push(format!("{:.0}", flood_mbps(1, false, sz, reps)));
        for &l in &LINKS[1..] {
            cells.push(format!("{:.0}", flood_mbps(l, false, sz, reps)));
        }
        for &l in &LINKS[1..] {
            cells.push(format!("{:.0}", flood_mbps(l, true, sz, reps)));
        }
        bw.row(cells);
    }
    vec![lat, bw]
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}k", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}
