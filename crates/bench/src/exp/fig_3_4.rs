//! Fig 3.4 — NAS FT (class B) all-to-all communication under runtime
//! shared-memory optimizations (PSHM, pthreads) and manual pointer-cast
//! optimization, on 4 cluster nodes.
//!
//! Panel (a): blocking `upc_memput` exchange, % improvement over the plain
//! process backend. Panel (b): non-blocking `upc_memput_async` exchange,
//! absolute seconds per configuration.

use hupc::fft::{run_ft_upc, ComputeMode, ExchangeKind, FtClass, FtConfig};
use hupc::gasnet::{Backend, Overheads};
use hupc::net::Conduit;
use hupc::topo::{BindPolicy, MachineSpec};

use crate::Table;

/// The thesis' thread layouts: `total (procs × pthreads-per-proc)`.
pub const LAYOUTS: [(usize, usize, usize); 5] =
    [(4, 4, 1), (8, 4, 2), (16, 8, 2), (32, 8, 4), (64, 8, 8)];

/// Zeroed intra-node software costs: the manual `bupc_cast` + `memcpy`
/// optimization.
fn cast_overheads() -> Overheads {
    Overheads {
        same_process_call: 0,
        pshm_call: 0,
        ..Overheads::default()
    }
}

struct Variant {
    name: &'static str,
    backend_of: fn(pthreads_per_proc: usize) -> Backend,
    cast: bool,
}

const VARIANTS: [Variant; 5] = [
    Variant {
        name: "PSHM",
        backend_of: |_| Backend::processes_pshm(),
        cast: false,
    },
    Variant {
        name: "PSHM + cast",
        backend_of: |_| Backend::processes_pshm(),
        cast: true,
    },
    Variant {
        name: "pthreads",
        backend_of: |pp| Backend::mixed(pp, false),
        cast: false,
    },
    Variant {
        name: "pthr+PSHM",
        backend_of: |pp| Backend::mixed(pp, true),
        cast: false,
    },
    Variant {
        name: "pthr+PSHM + cast",
        backend_of: |pp| Backend::mixed(pp, true),
        cast: true,
    },
];

fn comm_seconds(
    total: usize,
    backend: Backend,
    cast: bool,
    exchange: ExchangeKind,
    quick: bool,
) -> f64 {
    let cfg = FtConfig {
        class: FtClass::B,
        machine: MachineSpec::lehman().with_nodes(4),
        threads: total,
        nodes_used: 4,
        conduit: Conduit::ib_qdr(),
        backend,
        bind: BindPolicy::PackedCores,
        exchange,
        subthreads: None,
        mode: ComputeMode::Model,
        iters_override: Some(if quick { 2 } else { 5 }),
        overheads: cast.then(cast_overheads),
        fault: None,
    };
    run_ft_upc(cfg).comm_seconds
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut a = Table::new(
        "Fig 3.4(a) — FT class B all-to-all, blocking memput: % improvement over UPC processes (4 Lehman nodes)",
        &{
            let mut h = vec!["threads"];
            h.extend(VARIANTS.iter().map(|v| v.name));
            h
        },
    );
    let mut b = Table::new(
        "Fig 3.4(b) — FT class B all-to-all, async memput: comm seconds",
        &{
            let mut h = vec!["config", "base"];
            h.extend(VARIANTS.iter().map(|v| v.name));
            h
        },
    );
    let layouts: &[(usize, usize, usize)] = if quick { &LAYOUTS[..3] } else { &LAYOUTS };
    for &(total, _procs, pp) in layouts {
        // Panel (a): blocking.
        let base = comm_seconds(total, Backend::processes(), false, ExchangeKind::SplitPhaseBlocking, quick);
        let mut cells = vec![total.to_string()];
        for v in &VARIANTS {
            let s = comm_seconds(total, (v.backend_of)(pp), v.cast, ExchangeKind::SplitPhaseBlocking, quick);
            cells.push(format!("{:.1}%", (base / s - 1.0) * 100.0));
        }
        a.row(cells);
        // Panel (b): async, absolute seconds.
        let base_b = comm_seconds(total, Backend::processes(), false, ExchangeKind::SplitPhase, quick);
        let mut cells = vec![format!("{total}({_procs}*{pp})"), format!("{base_b:.3}")];
        for v in &VARIANTS {
            let s = comm_seconds(total, (v.backend_of)(pp), v.cast, ExchangeKind::SplitPhase, quick);
            cells.push(format!("{s:.3}"));
        }
        b.row(cells);
    }
    vec![a, b]
}
