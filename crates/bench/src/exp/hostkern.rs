//! Host-kernel microbenchmark — the real computation the simulator still
//! executes, after the zero-copy data plane and batched kernels.
//!
//! Not a thesis figure: like `simcore`, this measures the *host* cost of
//! the workloads' compute and data movement, pinning three optimizations:
//!
//! 1. **SHA-1 child derivation** — scalar `sha1_child` (message build +
//!    padding + full compress per child) vs batched `sha1_children`
//!    (shared message template, precomputed round prefix, unrolled rolling
//!    schedule, SSE2 four-children-per-lane compression on x86-64). UTS
//!    tree generation at Fig 3.3 scale runs ~4.1 M of these.
//! 2. **FFT butterflies** — the plain radix-2 sweep vs the fused radix-4
//!    passes of `FftPlan::transform` (bit-identical results, half the
//!    passes over the data).
//! 3. **Bulk element transfers** — the historical staged path (fresh word
//!    `Vec` + per-element decode round trip) vs `memget_elems_into` decoding
//!    straight from the source segment. Virtual time must be identical; the
//!    run asserts it.
//!
//! The binary writes `BENCH_hostkern.json` and, with `--check <path>`,
//! fails when any headline metric regressed more than 2x against a
//! previously committed baseline.

use std::hint::black_box;
use std::time::Instant;

use hupc::fft::{Complex, Direction, FftPlan};
use hupc::prelude::*;
use hupc::upc::PgasElem;
use hupc::uts::{sha1, sha1_child, sha1_children};

use crate::Table;

/// The numbers `BENCH_hostkern.json` records.
#[derive(Clone, Copy, Debug)]
pub struct HostkernMetrics {
    pub sha1_scalar_mb_s: f64,
    pub sha1_batched_mb_s: f64,
    pub sha1_speedup: f64,
    pub fft_radix2_mflops: f64,
    pub fft_radix4_mflops: f64,
    pub fft_speedup: f64,
    pub bulk_staged_melems_s: f64,
    pub bulk_zero_copy_melems_s: f64,
    pub bulk_speedup: f64,
}

impl HostkernMetrics {
    /// Flat JSON object, one numeric field per metric (the shape
    /// [`crate::exp::simcore::json_number`] reads).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"sha1_scalar_mb_s\": {:.1},\n  \"sha1_batched_mb_s\": {:.1},\n  \
             \"sha1_speedup\": {:.2},\n  \"fft_radix2_mflops\": {:.0},\n  \
             \"fft_radix4_mflops\": {:.0},\n  \"fft_speedup\": {:.2},\n  \
             \"bulk_staged_melems_s\": {:.1},\n  \"bulk_zero_copy_melems_s\": {:.1},\n  \
             \"bulk_speedup\": {:.2}\n}}\n",
            self.sha1_scalar_mb_s,
            self.sha1_batched_mb_s,
            self.sha1_speedup,
            self.fft_radix2_mflops,
            self.fft_radix4_mflops,
            self.fft_speedup,
            self.bulk_staged_melems_s,
            self.bulk_zero_copy_melems_s,
            self.bulk_speedup,
        )
    }
}

/// SHA-1 child derivation throughput in MB/s (64-byte compressed block per
/// child), scalar vs batched. Both walk the same parent chain.
fn sha1_throughput(parents: usize, batch: u32) -> (f64, f64) {
    let blocks = parents as f64 * batch as f64;
    let mb = blocks * 64.0 / 1e6;

    let mut parent = sha1(b"hostkern");
    let t0 = Instant::now();
    for _ in 0..parents {
        let mut acc = 0u8;
        for i in 0..batch {
            acc ^= sha1_child(&parent, i)[0];
        }
        parent[0] ^= black_box(acc);
    }
    let scalar = mb / t0.elapsed().as_secs_f64();

    let mut parent = sha1(b"hostkern");
    let t0 = Instant::now();
    for _ in 0..parents {
        let mut acc = 0u8;
        sha1_children(&parent, 0..batch, |_, d| acc ^= d[0]);
        parent[0] ^= black_box(acc);
    }
    let batched = mb / t0.elapsed().as_secs_f64();
    (scalar, batched)
}

/// FFT throughput in Mflop/s (model count: 5·n·log₂n per transform),
/// radix-2 reference sweep vs the fused radix-4 transform.
fn fft_throughput(n: usize, iters: usize) -> (f64, f64) {
    let plan = FftPlan::new(n);
    let mut s = 0x9E3779B97F4A7C15u64;
    let signal: Vec<Complex> = (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Complex::new(
                ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0,
                ((s >> 23) as f64 % 1e3) / 1e3,
            )
        })
        .collect();
    let mflop = plan.flops() * iters as f64 / 1e6;

    let mut data = signal.clone();
    let t0 = Instant::now();
    for _ in 0..iters {
        plan.transform_radix2(&mut data, Direction::Forward);
        plan.transform_radix2(&mut data, Direction::Inverse);
    }
    black_box(&data);
    let radix2 = 2.0 * mflop / t0.elapsed().as_secs_f64();

    let mut data = signal;
    let t0 = Instant::now();
    for _ in 0..iters {
        plan.transform(&mut data, Direction::Forward);
        plan.transform(&mut data, Direction::Inverse);
    }
    black_box(&data);
    let radix4 = 2.0 * mflop / t0.elapsed().as_secs_f64();
    (radix2, radix4)
}

/// Bulk-transfer host throughput in Melems/s: thread 0 repeatedly pulls
/// thread 1's block of `[f64; 2]` elements, staged (the historical
/// Vec-of-words + decode round trip) or zero-copy (`memget_elems_into`).
/// Returns throughputs plus each run's virtual end time — the caller
/// asserts they are identical.
fn bulk_throughput(count: usize, iters: usize) -> ((f64, f64), (u64, u64)) {
    fn run(count: usize, iters: usize, zero_copy: bool) -> (f64, u64) {
        let job = UpcJob::new(UpcConfig::test_default(2, 1)); // PSHM path
        let a = job.alloc_shared::<[f64; 2]>(2 * count, count);
        let t0 = Instant::now();
        let stats = job.run(move |upc| {
            let me = upc.mythread();
            for i in a.indices_with_affinity(me) {
                a.poke(&upc, i, [i as f64, 2.0 * i as f64]);
            }
            upc.barrier();
            if me == 0 {
                let mut sink = 0.0f64;
                if zero_copy {
                    let mut out = Vec::new();
                    for _ in 0..iters {
                        a.memget_elems_into(&upc, count, count, &mut out);
                        sink += out[count / 2][0];
                    }
                } else {
                    for _ in 0..iters {
                        // The pre-zero-copy `memget_elems`, inlined.
                        let mut words = vec![0u64; count * 2];
                        upc.memget(1, a.word_of(count), &mut words);
                        let out: Vec<[f64; 2]> =
                            words.chunks_exact(2).map(<[f64; 2]>::from_words).collect();
                        sink += out[count / 2][0];
                    }
                }
                black_box(sink);
            }
            upc.barrier();
        });
        let host = t0.elapsed().as_secs_f64();
        (count as f64 * iters as f64 / host / 1e6, stats.end_time)
    }
    let (staged, vt_staged) = run(count, iters, false);
    let (zero, vt_zero) = run(count, iters, true);
    ((staged, zero), (vt_staged, vt_zero))
}

pub fn run(quick: bool) -> (Vec<Table>, HostkernMetrics) {
    let (parents, batch) = if quick { (2_000, 256) } else { (20_000, 256) };
    let (fft_n, fft_iters) = if quick { (1 << 12, 200) } else { (1 << 14, 500) };
    let (bulk_count, bulk_iters) = if quick { (4_096, 500) } else { (4_096, 5_000) };

    // Warm up once so first-run costs (allocator, thread machinery) don't
    // land in a timed region.
    sha1_throughput(50, 64);
    fft_throughput(1 << 8, 10);

    let (sha_scalar, sha_batched) = sha1_throughput(parents, batch);
    let (fft_r2, fft_r4) = fft_throughput(fft_n, fft_iters);
    let ((bulk_staged, bulk_zero), (vt_staged, vt_zero)) =
        bulk_throughput(bulk_count, bulk_iters);
    assert_eq!(
        vt_staged, vt_zero,
        "zero-copy bulk path changed virtual time"
    );

    let m = HostkernMetrics {
        sha1_scalar_mb_s: sha_scalar,
        sha1_batched_mb_s: sha_batched,
        sha1_speedup: sha_batched / sha_scalar,
        fft_radix2_mflops: fft_r2,
        fft_radix4_mflops: fft_r4,
        fft_speedup: fft_r4 / fft_r2,
        bulk_staged_melems_s: bulk_staged,
        bulk_zero_copy_melems_s: bulk_zero,
        bulk_speedup: bulk_zero / bulk_staged,
    };

    let mut t1 = Table::new(
        format!("Host kernel — SHA-1 child derivation ({parents} parents × {batch} children)"),
        &["kernel", "MB/s", "speedup"],
    );
    t1.row(vec![
        "scalar sha1_child".into(),
        format!("{:.1}", m.sha1_scalar_mb_s),
        "1.00x".into(),
    ]);
    t1.row(vec![
        "batched sha1_children".into(),
        format!("{:.1}", m.sha1_batched_mb_s),
        format!("{:.2}x", m.sha1_speedup),
    ]);

    let mut t2 = Table::new(
        format!("Host kernel — FFT butterflies (n = {fft_n}, {fft_iters} round trips)"),
        &["kernel", "Mflop/s", "speedup"],
    );
    t2.row(vec![
        "radix-2 sweep".into(),
        format!("{:.0}", m.fft_radix2_mflops),
        "1.00x".into(),
    ]);
    t2.row(vec![
        "fused radix-4".into(),
        format!("{:.0}", m.fft_radix4_mflops),
        format!("{:.2}x", m.fft_speedup),
    ]);

    let mut t3 = Table::new(
        format!(
            "Host data plane — bulk [f64; 2] transfers ({bulk_count} elems × {bulk_iters} gets, \
             PSHM)"
        ),
        &["path", "Melems/s", "speedup"],
    );
    t3.row(vec![
        "staged Vec + decode".into(),
        format!("{:.1}", m.bulk_staged_melems_s),
        "1.00x".into(),
    ]);
    t3.row(vec![
        "memget_elems_into".into(),
        format!("{:.1}", m.bulk_zero_copy_melems_s),
        format!("{:.2}x", m.bulk_speedup),
    ]);

    (vec![t1, t2, t3], m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::simcore::json_number;

    #[test]
    fn json_round_trips_through_the_checker() {
        let m = HostkernMetrics {
            sha1_scalar_mb_s: 150.5,
            sha1_batched_mb_s: 410.25,
            sha1_speedup: 2.73,
            fft_radix2_mflops: 2_000.0,
            fft_radix4_mflops: 3_100.0,
            fft_speedup: 1.55,
            bulk_staged_melems_s: 90.0,
            bulk_zero_copy_melems_s: 200.0,
            bulk_speedup: 2.22,
        };
        let j = m.to_json();
        assert_eq!(json_number(&j, "sha1_batched_mb_s"), Some(410.2));
        assert_eq!(json_number(&j, "fft_radix4_mflops"), Some(3100.0));
        assert_eq!(json_number(&j, "bulk_zero_copy_melems_s"), Some(200.0));
        assert_eq!(json_number(&j, "missing"), None);
    }

    #[test]
    fn quick_probes_agree_on_virtual_time_and_report_positive_rates() {
        let ((staged, zero), (vt_a, vt_b)) = bulk_throughput(256, 4);
        assert_eq!(vt_a, vt_b);
        assert!(staged > 0.0 && zero > 0.0);
        let (s, b) = sha1_throughput(20, 32);
        assert!(s > 0.0 && b > 0.0);
        let (r2, r4) = fft_throughput(64, 4);
        assert!(r2 > 0.0 && r4 > 0.0);
    }
}
