//! The workload-registry sweep: every registered application × engine
//! backend × fault plan, through the `hupc-app` SDK's generic runner.
//!
//! Each cell runs the workload's own oracle and reports pass/fail plus the
//! end-of-run virtual time; the whole sweep serializes to one JSON report
//! (`BENCH_apps.json`) whose `runs` array is directly comparable across
//! commits — virtual time is bit-deterministic, so any drift is a real
//! semantic or performance change, not host noise.
//!
//! The committed baseline gates the three breadth-wave apps (`md`, `cg`,
//! `stencil2d`): their fault-free sequential-backend virtual seconds must
//! stay within 2x of the baseline, and every sweep cell must pass its
//! oracle.

use hupc::app::{run_by_name, Params, Registry};
use hupc::gasnet::FaultPlan;
use hupc::sim::SimBackend;

use crate::Table;

/// Headline metrics for `BENCH_apps.json`: the per-app virtual seconds the
/// CI gate ratios, the pass counters, and the full per-run report array.
#[derive(Clone, Debug, Default)]
pub struct AppsMetrics {
    pub md_seconds: f64,
    pub cg_seconds: f64,
    pub stencil2d_seconds: f64,
    /// Sweep cells whose workload oracle passed / total cells run.
    pub passed_runs: f64,
    pub total_runs: f64,
    /// `RunReport::to_json` for every cell, in sweep order.
    pub runs: Vec<String>,
}

impl AppsMetrics {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"md_seconds\":{:.9},\"cg_seconds\":{:.9},\"stencil2d_seconds\":{:.9},\
             \"passed_runs\":{:.0},\"total_runs\":{:.0},\"runs\":[{}]}}",
            self.md_seconds,
            self.cg_seconds,
            self.stencil2d_seconds,
            self.passed_runs,
            self.total_runs,
            self.runs.join(","),
        )
    }
}

/// The sweep's fault dimension: fault-free, plus (on full runs) a 3x CPU
/// straggler on node 1 — timing-only, so every oracle must still pass.
fn fault_plans(quick: bool) -> Vec<(&'static str, Option<FaultPlan>)> {
    let mut plans = vec![("none", None)];
    if !quick {
        plans.push(("straggler", Some(FaultPlan::new(0xFA57).straggler(1, 3.0))));
    }
    plans
}

pub fn run(quick: bool) -> (Vec<Table>, AppsMetrics) {
    let reg = Registry::builtin();
    let backends = [SimBackend::Sequential, SimBackend::Parallel(4)];
    let mut t = Table::new(
        "Workload sweep (registry x backend x fault, virtual time)",
        &["workload", "backend", "fault", "passed", "virtual s", "oracle"],
    );
    let mut m = AppsMetrics::default();

    for w in reg.iter() {
        for backend in backends {
            for (fault_label, fault) in fault_plans(quick) {
                let mut env = w.default_env().with_backend(backend);
                env.fault = fault;
                let report = run_by_name(&reg, w.name(), &env, &Params::empty(), fault_label)
                    .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name()));
                let v = &report.verified;
                m.total_runs += 1.0;
                if v.passed {
                    m.passed_runs += 1.0;
                }
                // The gated per-app numbers come from the fault-free
                // sequential cell — the canonical configuration.
                if backend == SimBackend::Sequential && fault_label == "none" {
                    match w.name() {
                        "md" => m.md_seconds = v.end_seconds,
                        "cg" => m.cg_seconds = v.end_seconds,
                        "stencil2d" => m.stencil2d_seconds = v.end_seconds,
                        _ => {}
                    }
                }
                t.row(vec![
                    report.workload.clone(),
                    report.backend.clone(),
                    report.fault.clone(),
                    if v.passed { "yes".into() } else { "NO".into() },
                    format!("{:.6}", v.end_seconds),
                    v.oracle.chars().take(60).collect(),
                ]);
                m.runs.push(report.to_json());
            }
        }
    }
    (vec![t], m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_registry_has_breadth_apps(reg: &Registry) -> bool {
        ["md", "cg", "stencil2d"]
            .iter()
            .all(|n| reg.get(n).is_some())
    }

    #[test]
    fn quick_sweep_all_pass() {
        let reg = Registry::builtin();
        assert!(builtin_registry_has_breadth_apps(&reg));
        let (_tables, m) = run(true);
        assert_eq!(m.passed_runs, m.total_runs, "{}", m.to_json());
        assert!(m.md_seconds > 0.0);
        assert!(m.cg_seconds > 0.0);
        assert!(m.stencil2d_seconds > 0.0);
        // The gated keys must survive a to_json round trip.
        let j = m.to_json();
        for key in ["md_seconds", "cg_seconds", "stencil2d_seconds"] {
            assert!(crate::report::json_number(&j, key).unwrap() > 0.0);
        }
        assert_eq!(
            crate::report::json_number(&j, "passed_runs"),
            crate::report::json_number(&j, "total_runs")
        );
    }

    /// The full sweep adds the straggler fault dimension — timing-only, so
    /// every oracle must still pass. Run explicitly with `--ignored` (CI
    /// perf-smoke covers the quick sweep on every push).
    #[test]
    #[ignore = "full sweep; run with --ignored"]
    fn full_sweep_with_faults_all_pass() {
        let (_tables, m) = run(false);
        assert_eq!(m.passed_runs, m.total_runs, "{}", m.to_json());
        assert_eq!(m.total_runs, (Registry::builtin().len() * 2 * 2) as f64);
    }
}
