//! Fig 3.3 — UTS parallel scalability on 16 nodes (8-way SMPs), InfiniBand
//! and Ethernet, three stealing strategies.

use hupc::net::Conduit;
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

pub const STRATEGIES: [StealStrategy; 3] = [
    StealStrategy::Random,
    StealStrategy::LocalFirst,
    StealStrategy::LocalFirstRapid,
];

pub fn run(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    let mut tables = Vec::new();
    for (label, conduit) in [
        ("InfiniBand (DDR), steal granularity 8", Conduit::ib_ddr()),
        ("Ethernet (GigE), steal granularity 20", Conduit::gige()),
    ] {
        let mut t = Table::new(
            format!("Fig 3.3 — UTS throughput (Mnodes/s), 16 Pyramid nodes, {label}"),
            &["threads", "Baseline", "Local-stealing", "Local+Rapid-diffusion"],
        );
        for &n in threads {
            let mut cells = vec![n.to_string()];
            for s in STRATEGIES {
                let r = run_uts(UtsConfig::thesis(n, conduit.clone(), s));
                cells.push(format!("{:.1}", r.mnodes_per_sec));
            }
            t.row(cells);
        }
        tables.push(t);
    }
    tables
}
