//! Flat vs hierarchical collectives — virtual-time comparison.
//!
//! Not a thesis figure: this pins the `hupc-coll` subsystem's reason to
//! exist. Every operation runs twice on the same machine and payload —
//! once through the flat reference algorithms in `hupc-upc` (no provider
//! installed) and once through the installed [`CollDomain`] (intra-node
//! shared-memory phase + inter-leader network phase) — and the table
//! reports the virtual-time ratio.
//!
//! Broadcast, allreduce, allgather and the staged barrier run at Pyramid
//! scale (128 nodes × 8 cores = 1024 threads; `--quick` uses a 16-node
//! slice). The coalesced all-to-all runs on Lehman, where the per-node
//! message coalescing (one message per destination *node*) is the whole
//! effect.
//!
//! The binary writes `BENCH_coll.json`; with `--check <path>` it fails
//! when the headline broadcast/allreduce speedups drop below 2x (or below
//! half the committed baseline on full runs) — the CI perf-smoke gate.

use std::sync::Arc;

use hupc::prelude::*;
use hupc::sim::time;

use crate::Table;

/// The numbers `BENCH_coll.json` records.
#[derive(Clone, Copy, Debug)]
pub struct CollMetrics {
    pub threads: f64,
    pub bcast_flat_ms: f64,
    pub bcast_hier_ms: f64,
    pub bcast_speedup: f64,
    pub allreduce_flat_ms: f64,
    pub allreduce_hier_ms: f64,
    pub allreduce_speedup: f64,
    pub allgather_flat_ms: f64,
    pub allgather_hier_ms: f64,
    pub allgather_speedup: f64,
    pub exchange_flat_ms: f64,
    pub exchange_hier_ms: f64,
    pub exchange_speedup: f64,
    pub barrier_flat_us: f64,
    pub barrier_hier_us: f64,
    pub barrier_speedup: f64,
}

impl CollMetrics {
    /// Flat JSON object, one numeric field per metric (the shape
    /// [`crate::exp::simcore::json_number`] reads).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"threads\": {:.0},\n  \"bcast_flat_ms\": {:.3},\n  \
             \"bcast_hier_ms\": {:.3},\n  \"bcast_speedup\": {:.2},\n  \
             \"allreduce_flat_ms\": {:.3},\n  \"allreduce_hier_ms\": {:.3},\n  \
             \"allreduce_speedup\": {:.2},\n  \"allgather_flat_ms\": {:.3},\n  \
             \"allgather_hier_ms\": {:.3},\n  \"allgather_speedup\": {:.2},\n  \
             \"exchange_flat_ms\": {:.3},\n  \"exchange_hier_ms\": {:.3},\n  \
             \"exchange_speedup\": {:.2},\n  \"barrier_flat_us\": {:.3},\n  \
             \"barrier_hier_us\": {:.3},\n  \"barrier_speedup\": {:.2}\n}}\n",
            self.threads,
            self.bcast_flat_ms,
            self.bcast_hier_ms,
            self.bcast_speedup,
            self.allreduce_flat_ms,
            self.allreduce_hier_ms,
            self.allreduce_speedup,
            self.allgather_flat_ms,
            self.allgather_hier_ms,
            self.allgather_speedup,
            self.exchange_flat_ms,
            self.exchange_hier_ms,
            self.exchange_speedup,
            self.barrier_flat_us,
            self.barrier_hier_us,
            self.barrier_speedup,
        )
    }
}

/// Virtual seconds one collective `op` takes: barrier, timestamp, op,
/// barrier, timestamp — measured on thread 0 (the closing barrier makes
/// the end time global). `hier` installs the [`CollDomain`] provider;
/// without it the `Upc` methods run their flat reference algorithms.
fn op_seconds(
    spec: &MachineSpec,
    threads: usize,
    nodes: usize,
    hier: bool,
    op: impl Fn(&Upc<'_>) + Send + Sync + 'static,
) -> f64 {
    let mut cfg = UpcConfig::test_default(threads, nodes);
    cfg.gasnet.machine = spec.clone();
    let job = UpcJob::new(cfg);
    if hier {
        CollDomain::for_job(&job, CollPlan::Auto).install(&job);
    }
    let dt: Arc<SimCell<u64>> = Arc::new(SimCell::default());
    let sink = Arc::clone(&dt);
    job.run(move |upc| {
        upc.barrier();
        let t0 = upc.now();
        op(&upc);
        upc.barrier();
        if upc.mythread() == 0 {
            let d = upc.now() - t0;
            sink.with_mut(|v| *v = d);
        }
    });
    time::as_secs_f64(Arc::try_unwrap(dt).expect("job done").into_inner())
}

/// Virtual seconds of one all-to-all over PGAS arrays (`bw` words per
/// thread pair), flat pairwise vs the coalesced hierarchical path.
fn exchange_seconds(spec: &MachineSpec, threads: usize, nodes: usize, hier: bool, bw: usize) -> f64 {
    let p = threads;
    let mut cfg = UpcConfig::test_default(threads, nodes);
    cfg.gasnet.machine = spec.clone();
    let job = UpcJob::new(cfg);
    let src = job.alloc_shared::<u64>(p * p * bw, p * bw);
    let dst = job.alloc_shared::<u64>(p * p * bw, p * bw);
    if hier {
        CollDomain::for_job(&job, CollPlan::Auto)
            .reserve_exchange(&job, bw)
            .install(&job);
    }
    let dt: Arc<SimCell<u64>> = Arc::new(SimCell::default());
    let sink = Arc::clone(&dt);
    job.run(move |upc| {
        let me = upc.mythread() as u64;
        src.with_local_words(&upc, |w| {
            for (i, x) in w.iter_mut().enumerate() {
                *x = me.wrapping_mul(0x9e37).wrapping_add(i as u64);
            }
        });
        upc.barrier();
        let t0 = upc.now();
        upc.all_exchange(src, dst, bw, false);
        upc.barrier();
        if upc.mythread() == 0 {
            let d = upc.now() - t0;
            sink.with_mut(|v| *v = d);
        }
    });
    time::as_secs_f64(Arc::try_unwrap(dt).expect("job done").into_inner())
}

pub fn run(quick: bool) -> (Vec<Table>, CollMetrics) {
    // Pyramid slice for the rooted/staged ops; Lehman for the all-to-all.
    let pyramid = MachineSpec::pyramid();
    let lehman = MachineSpec::lehman();
    let (py_nodes, le_nodes) = if quick { (16, 4) } else { (128, 12) };
    let py_threads = py_nodes * 8; // 2 sockets × 4 cores, SMT off
    let le_threads = le_nodes * 8; // one thread per core
    let (bcast_words, red_words, gather_words, bw, barrier_reps) =
        if quick { (1024, 32, 8, 4, 4) } else { (4096, 64, 16, 8, 8) };

    let bcast = move |upc: &Upc<'_>| {
        let mut w = if upc.mythread() == 0 {
            (0..bcast_words as u64).collect()
        } else {
            vec![0u64; bcast_words]
        };
        upc.broadcast_words(0, &mut w);
    };
    let allreduce = move |upc: &Upc<'_>| {
        let me = upc.mythread() as u64;
        let mut v: Vec<u64> = (0..red_words as u64).map(|i| me + i).collect();
        upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
    };
    let allgather = move |upc: &Upc<'_>| {
        let me = upc.mythread() as u64;
        let mine: Vec<u64> = (0..gather_words as u64).map(|i| me * 100 + i).collect();
        let mut out = vec![0u64; py_threads * gather_words];
        upc.allgather_words(&mine, &mut out);
    };
    let barrier = move |upc: &Upc<'_>| {
        for _ in 0..barrier_reps {
            upc.staged_barrier();
        }
    };

    let bcast_flat = op_seconds(&pyramid, py_threads, py_nodes, false, bcast);
    let bcast_hier = op_seconds(&pyramid, py_threads, py_nodes, true, bcast);
    let red_flat = op_seconds(&pyramid, py_threads, py_nodes, false, allreduce);
    let red_hier = op_seconds(&pyramid, py_threads, py_nodes, true, allreduce);
    let gat_flat = op_seconds(&pyramid, py_threads, py_nodes, false, allgather);
    let gat_hier = op_seconds(&pyramid, py_threads, py_nodes, true, allgather);
    let bar_flat = op_seconds(&pyramid, py_threads, py_nodes, false, barrier);
    let bar_hier = op_seconds(&pyramid, py_threads, py_nodes, true, barrier);
    let exch_flat = exchange_seconds(&lehman, le_threads, le_nodes, false, bw);
    let exch_hier = exchange_seconds(&lehman, le_threads, le_nodes, true, bw);

    let m = CollMetrics {
        threads: py_threads as f64,
        bcast_flat_ms: bcast_flat * 1e3,
        bcast_hier_ms: bcast_hier * 1e3,
        bcast_speedup: bcast_flat / bcast_hier,
        allreduce_flat_ms: red_flat * 1e3,
        allreduce_hier_ms: red_hier * 1e3,
        allreduce_speedup: red_flat / red_hier,
        allgather_flat_ms: gat_flat * 1e3,
        allgather_hier_ms: gat_hier * 1e3,
        allgather_speedup: gat_flat / gat_hier,
        exchange_flat_ms: exch_flat * 1e3,
        exchange_hier_ms: exch_hier * 1e3,
        exchange_speedup: exch_flat / exch_hier,
        barrier_flat_us: bar_flat * 1e6 / barrier_reps as f64,
        barrier_hier_us: bar_hier * 1e6 / barrier_reps as f64,
        barrier_speedup: bar_flat / bar_hier,
    };

    let mut t = Table::new(
        format!(
            "Collectives — flat vs hierarchical (pyramid {py_nodes} nodes × 8 = {py_threads} \
             threads; all-to-all on lehman {le_nodes} × 8 = {le_threads})"
        ),
        &["operation", "payload", "flat (virt)", "hier (virt)", "speedup"],
    );
    let ms = |s: f64| format!("{:.3} ms", s * 1e3);
    t.row(vec![
        "broadcast".into(),
        format!("{bcast_words} words"),
        ms(bcast_flat),
        ms(bcast_hier),
        format!("{:.2}x", m.bcast_speedup),
    ]);
    t.row(vec![
        "allreduce (vec)".into(),
        format!("{red_words} words"),
        ms(red_flat),
        ms(red_hier),
        format!("{:.2}x", m.allreduce_speedup),
    ]);
    t.row(vec![
        "allgather".into(),
        format!("{gather_words} words/thread"),
        ms(gat_flat),
        ms(gat_hier),
        format!("{:.2}x", m.allgather_speedup),
    ]);
    t.row(vec![
        "all-to-all".into(),
        format!("{bw} words/pair"),
        ms(exch_flat),
        ms(exch_hier),
        format!("{:.2}x", m.exchange_speedup),
    ]);
    t.row(vec![
        "barrier".into(),
        format!("{barrier_reps} reps"),
        ms(bar_flat),
        ms(bar_hier),
        format!("{:.2}x", m.barrier_speedup),
    ]);

    (vec![t], m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::simcore::json_number;

    #[test]
    fn json_round_trips_through_the_checker() {
        let m = CollMetrics {
            threads: 1024.0,
            bcast_flat_ms: 10.5,
            bcast_hier_ms: 2.1,
            bcast_speedup: 5.0,
            allreduce_flat_ms: 8.0,
            allreduce_hier_ms: 1.0,
            allreduce_speedup: 8.0,
            allgather_flat_ms: 3.0,
            allgather_hier_ms: 1.5,
            allgather_speedup: 2.0,
            exchange_flat_ms: 4.0,
            exchange_hier_ms: 2.0,
            exchange_speedup: 2.0,
            barrier_flat_us: 9.0,
            barrier_hier_us: 4.5,
            barrier_speedup: 2.0,
        };
        let j = m.to_json();
        assert_eq!(json_number(&j, "bcast_speedup"), Some(5.0));
        assert_eq!(json_number(&j, "allreduce_speedup"), Some(8.0));
        assert_eq!(json_number(&j, "barrier_hier_us"), Some(4.5));
        assert_eq!(json_number(&j, "missing"), None);
    }

    #[test]
    fn tiny_sweep_reports_hierarchical_wins() {
        // A small multi-node shape still shows the effect and keeps the
        // test cheap: 4 testbox nodes × 4 PUs.
        let spec = MachineSpec::small_test(4);
        let flat = op_seconds(&spec, 16, 4, false, |upc| {
            let mut v = [upc.mythread() as u64; 8];
            upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
        });
        let hier = op_seconds(&spec, 16, 4, true, |upc| {
            let mut v = [upc.mythread() as u64; 8];
            upc.allreduce_word_vec(&mut v, &|a, b| a.wrapping_add(b));
        });
        assert!(flat > 0.0 && hier > 0.0);
        assert!(
            hier < flat,
            "hierarchical allreduce not faster: {hier} vs {flat}"
        );
    }
}
