//! Fig 4.6 — overall NAS FT class B performance on 8 Lehman nodes:
//! (a/b) per-configuration improvement over process-based UPC for the
//! hierarchical variants, split-phase and overlap; (c/d) strong-scaling
//! speedups.

use std::collections::HashMap;

use hupc::fft::{
    run_ft_upc, ComputeMode, ExchangeKind, FtClass, FtConfig, FtResult, SubthreadSpec,
};
use hupc::gasnet::Backend;
use hupc::net::Conduit;
use hupc::subthreads::SubthreadModel;
use hupc::topo::{BindPolicy, MachineSpec};

use crate::Table;

/// (UPC threads × sub-threads) configurations of panels (a)/(b).
pub const CONFIGS: [(usize, usize); 9] = [
    (8, 1),
    (8, 2),
    (8, 4),
    (8, 8),
    (16, 2),
    (16, 4),
    (16, 8),
    (32, 2),
    (64, 2),
];

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Variant {
    Processes,
    Pthreads,
    Hybrid(SubKind),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SubKind {
    OpenMp,
    Cilk,
    Pool,
}

impl SubKind {
    fn model(self) -> SubthreadModel {
        match self {
            SubKind::OpenMp => SubthreadModel::OpenMp,
            SubKind::Cilk => SubthreadModel::Cilk,
            SubKind::Pool => SubthreadModel::Pool,
        }
    }
}

/// Memoizing runner (panels share many configurations).
struct Runner {
    cache: HashMap<(Variant, usize, usize, ExchangeKind), f64>,
    quick: bool,
}

impl Runner {
    fn new(quick: bool) -> Runner {
        Runner {
            cache: HashMap::new(),
            quick,
        }
    }

    /// Total seconds for `variant` at `upc × subs` threads.
    fn total(&mut self, variant: Variant, upc: usize, subs: usize, ex: ExchangeKind) -> f64 {
        if let Some(&v) = self.cache.get(&(variant, upc, subs, ex)) {
            return v;
        }
        let total_threads = upc * subs;
        let mut cfg = FtConfig {
            class: FtClass::B,
            machine: MachineSpec::lehman().with_nodes(8),
            threads: total_threads,
            nodes_used: 8,
            conduit: Conduit::ib_qdr(),
            backend: Backend::processes_pshm(),
            bind: BindPolicy::PackedCores,
            exchange: ex,
            subthreads: None,
            mode: ComputeMode::Model,
            iters_override: Some(if self.quick { 3 } else { 10 }),
            overheads: None,
            fault: None,
        };
        match variant {
            Variant::Processes => {}
            Variant::Pthreads => {
                cfg.backend = Backend::pthreads(total_threads / 8);
            }
            Variant::Hybrid(kind) => {
                cfg.threads = upc;
                // Pools slice the whole node's PUs (disjoint per master).
                cfg.bind = BindPolicy::Unbound;
                cfg.subthreads = Some(SubthreadSpec {
                    n: subs,
                    model: kind.model(),
                });
            }
        }
        let r: FtResult = run_ft_upc(cfg);
        let v = r.total_seconds;
        self.cache.insert((variant, upc, subs, ex), v);
        v
    }
}

fn improvement_table(runner: &mut Runner, ex: ExchangeKind, quick: bool, panel: &str) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 4.6({panel}) — FT class B {}: % improvement over UPC processes (8 Lehman nodes)",
            ex.name()
        ),
        &["config (UPC*subs)", "UPC pthreads", "UPC*OpenMP", "UPC*Cilk++", "UPC*Thread-Pool"],
    );
    let configs: &[(usize, usize)] = if quick { &CONFIGS[..4] } else { &CONFIGS };
    for &(upc, subs) in configs {
        let total = upc * subs;
        let base = runner.total(Variant::Processes, total, 1, ex);
        let pct = |v: f64| format!("{:+.1}%", (base / v - 1.0) * 100.0);
        let pth = runner.total(Variant::Pthreads, total, 1, ex);
        let omp = runner.total(Variant::Hybrid(SubKind::OpenMp), upc, subs, ex);
        let cilk = runner.total(Variant::Hybrid(SubKind::Cilk), upc, subs, ex);
        let pool = runner.total(Variant::Hybrid(SubKind::Pool), upc, subs, ex);
        t.row(vec![
            format!("{upc}*{subs}"),
            pct(pth),
            pct(omp),
            pct(cilk),
            pct(pool),
        ]);
    }
    t
}

fn scalability_table(runner: &mut Runner, ex: ExchangeKind, quick: bool, panel: &str) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 4.6({panel}) — FT class B {}: speedup vs 8 UPC processes",
            ex.name()
        ),
        &["threads", "UPC processes", "UPC pthreads", "UPC*OpenMP", "UPC*Cilk++", "UPC*Thread-Pool"],
    );
    let totals: &[usize] = if quick { &[8, 32] } else { &[8, 16, 32, 64, 128] };
    let base = runner.total(Variant::Processes, 8, 1, ex);
    for &total in totals {
        // Hybrids use the thesis' best practice: two masters per node
        // (sockets) once the width allows it.
        let masters = if total >= 16 { 16 } else { 8 };
        let subs = total / masters;
        let sp = |v: f64| format!("{:.1}", base / v);
        let proc = runner.total(Variant::Processes, total, 1, ex);
        let pth = runner.total(Variant::Pthreads, total, 1, ex);
        let omp = runner.total(Variant::Hybrid(SubKind::OpenMp), masters, subs, ex);
        let cilk = runner.total(Variant::Hybrid(SubKind::Cilk), masters, subs, ex);
        let pool = runner.total(Variant::Hybrid(SubKind::Pool), masters, subs, ex);
        t.row(vec![
            total.to_string(),
            sp(proc),
            sp(pth),
            sp(omp),
            sp(cilk),
            sp(pool),
        ]);
    }
    t
}

pub fn run(quick: bool) -> Vec<Table> {
    let mut runner = Runner::new(quick);
    vec![
        improvement_table(&mut runner, ExchangeKind::SplitPhase, quick, "a"),
        improvement_table(&mut runner, ExchangeKind::Overlap, quick, "b"),
        scalability_table(&mut runner, ExchangeKind::SplitPhase, quick, "c"),
        scalability_table(&mut runner, ExchangeKind::Overlap, quick, "d"),
    ]
}
