//! Table 3.1 — the twisted STREAM triad: pointer-to-shared translation vs
//! privatized access on one dual-socket Nehalem node.

use hupc::stream::{run_twisted_triad, TriadVariant, TwistedConfig};

use crate::Table;

/// Thesis values (GB/s), same row order as [`TriadVariant::all`].
pub const PAPER: [f64; 4] = [3.2, 7.2, 23.2, 23.4];

pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3.1 — Twisted STREAM Triad, 8 threads, 2×Nehalem, bound",
        &["variant", "measured GB/s", "thesis GB/s", "max |err|"],
    );
    for (v, paper) in TriadVariant::all().into_iter().zip(PAPER) {
        let mut cfg = TwistedConfig::table_3_1(v);
        if quick {
            cfg.elems_per_thread = 1 << 15;
            cfg.iters = 3;
        }
        let r = run_twisted_triad(cfg);
        t.row(vec![
            r.variant.clone(),
            format!("{:.1}", r.gbps),
            format!("{paper:.1}"),
            format!("{:.1e}", r.max_error),
        ]);
    }
    vec![t]
}
