//! Fig 4.5 — time spent in communication calls of the split-phase FT
//! (class B): MPI vs UPC processes vs UPC pthreads vs hierarchical
//! UPC×sub-threads, on both clusters.

use hupc::fft::{
    run_ft_mpi, run_ft_upc, ComputeMode, ExchangeKind, FtClass, FtConfig, SubthreadSpec,
};
use hupc::gasnet::Backend;
use hupc::net::Conduit;
use hupc::subthreads::SubthreadModel;
use hupc::topo::{BindPolicy, MachineSpec};

use crate::Table;

fn base_cfg(machine: MachineSpec, nodes: usize, threads: usize, quick: bool) -> FtConfig {
    FtConfig {
        class: FtClass::B,
        machine,
        threads,
        nodes_used: nodes,
        conduit: Conduit::ib_qdr(),
        backend: Backend::processes_pshm(),
        bind: BindPolicy::PackedCores,
        exchange: ExchangeKind::SplitPhase,
        subthreads: None,
        mode: ComputeMode::Model,
        iters_override: Some(if quick { 5 } else { 20 }),
        overheads: None,
        fault: None,
    }
}

fn platform_table(
    name: &str,
    machine: MachineSpec,
    conduit: Conduit,
    nodes: usize,
    totals: &[usize],
    quick: bool,
) -> Table {
    let mut t = Table::new(
        format!("Fig 4.5 — FT class B split-phase comm seconds, {nodes} {name} nodes"),
        &["cores", "MPI", "UPC (processes)", "UPC (pthreads)", "UPC*Threads (hybrid)"],
    );
    for &total in totals {
        let mut cfg = base_cfg(machine.clone(), nodes, total, quick);
        cfg.conduit = conduit.clone();

        let mpi = run_ft_mpi(cfg.clone()).comm_seconds;
        let proc = run_ft_upc(cfg.clone()).comm_seconds;

        let mut pth = cfg.clone();
        pth.backend = Backend::pthreads(total / nodes);
        let pth = run_ft_upc(pth).comm_seconds;

        // Hybrid: two UPC threads per node (one per socket, the thesis'
        // numactl practice), sub-threads filling each socket.
        let masters = (2 * nodes).min(total);
        let mut hyb = base_cfg(machine.clone(), nodes, masters, quick);
        hyb.conduit = conduit.clone();
        hyb.bind = BindPolicy::RoundRobinSockets;
        hyb.subthreads = Some(SubthreadSpec {
            n: total / masters,
            model: SubthreadModel::OpenMp,
        });
        let hyb = run_ft_upc(hyb).comm_seconds;

        t.row(vec![
            total.to_string(),
            format!("{mpi:.3}"),
            format!("{proc:.3}"),
            format!("{pth:.3}"),
            format!("{hyb:.3}"),
        ]);
    }
    t
}

pub fn run(quick: bool) -> Vec<Table> {
    let lehman_totals: &[usize] = if quick { &[8, 32] } else { &[8, 16, 32, 64, 128] };
    let pyramid_totals: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    vec![
        platform_table(
            "Lehman",
            MachineSpec::lehman().with_nodes(8),
            Conduit::ib_qdr(),
            8,
            lehman_totals,
            quick,
        ),
        platform_table(
            "Pyramid",
            MachineSpec::pyramid().with_nodes(16),
            Conduit::ib_ddr(),
            16,
            pyramid_totals,
            quick,
        ),
    ]
}
