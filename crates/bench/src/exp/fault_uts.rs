//! Robustness sweep — UTS throughput under injected packet loss on GigE.
//!
//! Not a thesis figure: this exercises the fault-injection subsystem end
//! to end. Each dropped packet costs the thief a retransmission (with
//! exponential backoff), so throughput should degrade *gracefully* as the
//! loss rate rises while the counted tree stays exact — work stealing
//! reroutes around lossy links instead of losing nodes.

use hupc::gasnet::FaultPlan;
use hupc::net::Conduit;
use hupc::uts::{run_uts, sequential_traverse, StealStrategy, TreeParams, UtsConfig};

use crate::Table;

/// Loss rates of the sweep (the ISSUE's 1–5% band plus the fault-free
/// baseline the others are normalized against).
pub const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.02, 0.05];

pub fn run(quick: bool) -> Vec<Table> {
    let threads = if quick { 16 } else { 32 };
    let expected = sequential_traverse(&TreeParams::thesis_binomial()).0;
    let mut t = Table::new(
        format!(
            "Fault sweep — UTS (Mnodes/s), {threads} threads, 16 Pyramid nodes, \
             Ethernet (GigE), Local-stealing + Rapid-diffusion"
        ),
        &["loss %", "Mnodes/s", "vs fault-free", "comm failures", "nodes exact"],
    );
    let mut baseline = None;
    for &p in &LOSS_RATES {
        let mut cfg = UtsConfig::thesis(
            threads,
            Conduit::gige(),
            StealStrategy::LocalFirstRapid,
        );
        if p > 0.0 {
            cfg.fault = Some(FaultPlan::new(0xD15EA5ED).loss(p));
        }
        let r = run_uts(cfg);
        let base = *baseline.get_or_insert(r.mnodes_per_sec);
        t.row(vec![
            format!("{:.0}", p * 100.0),
            format!("{:.1}", r.mnodes_per_sec),
            format!("{:.2}x", r.mnodes_per_sec / base),
            r.comm_failures.to_string(),
            if r.total_nodes == expected { "yes" } else { "NO" }.to_string(),
        ]);
    }
    vec![t]
}
