//! One module per table / figure of the thesis' evaluation.

pub mod ablation;
pub mod apps;
pub mod coll;
pub mod fault_uts;
pub mod fig_3_3;
pub mod fig_3_4;
pub mod fig_4_2;
pub mod fig_4_4;
pub mod fig_4_5;
pub mod fig_4_6;
pub mod hostkern;
pub mod serve;
pub mod simcore;
pub mod table_3_1;
#[cfg(feature = "trace")]
pub mod trace;
pub mod table_3_2;
pub mod table_4_1;
