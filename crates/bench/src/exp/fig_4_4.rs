//! Fig 4.4 — NAS FT class B runtime breakdown: per-phase speedups from 1 to
//! 128 threads on 8 Lehman nodes (SMT beyond 64).

use hupc::fft::{run_ft_upc, ComputeMode, ExchangeKind, FtClass, FtConfig, FtResult};
use hupc::gasnet::Backend;
use hupc::net::Conduit;
use hupc::topo::{BindPolicy, MachineSpec};

use crate::Table;

fn run_one(threads: usize, exchange: ExchangeKind, quick: bool) -> FtResult {
    let nodes = threads.min(8);
    run_ft_upc(FtConfig {
        class: FtClass::B,
        machine: MachineSpec::lehman().with_nodes(8),
        threads,
        nodes_used: nodes,
        conduit: Conduit::ib_qdr(),
        backend: Backend::processes_pshm(),
        bind: BindPolicy::PackedCores,
        exchange,
        subthreads: None,
        mode: ComputeMode::Model,
        iters_override: Some(if quick { 2 } else { 5 }),
        overheads: None,
        fault: None,
    })
}

pub fn run(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick {
        &[1, 4, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let mut t = Table::new(
        "Fig 4.4 — FT class B phase speedups vs 1 thread (8 Lehman nodes; >64 threads = SMT)",
        &["threads", "evolve", "transpose", "FFT 2D", "FFT 1D", "all-to-all (split)", "all-to-all (overlap)"],
    );
    let base_split = run_one(1, ExchangeKind::SplitPhase, quick);
    let base_olap = run_one(1, ExchangeKind::Overlap, quick);
    for &n in threads {
        let s = run_one(n, ExchangeKind::SplitPhase, quick);
        let o = run_one(n, ExchangeKind::Overlap, quick);
        let sp = |a: f64, b: f64| format!("{:.1}", a / b.max(1e-12));
        t.row(vec![
            n.to_string(),
            sp(base_split.evolve_seconds, s.evolve_seconds),
            sp(base_split.transpose_seconds, s.transpose_seconds),
            sp(base_split.fft2d_seconds, s.fft2d_seconds),
            sp(base_split.fft1d_seconds, s.fft1d_seconds),
            sp(base_split.comm_seconds, s.comm_seconds),
            sp(base_olap.comm_seconds, o.comm_seconds),
        ]);
    }
    vec![t]
}
