//! Engine microbenchmark — host-speed cost of the simcall machinery.
//!
//! Not a thesis figure: this measures the *simulator itself*, pinning the
//! scheduler-bypass fast path's win. Three probes:
//!
//! 1. **simcall throughput** — one actor issuing back-to-back `advance`
//!    simcalls, fast path on vs off. With the bypass every advance resolves
//!    inline under the kernel lock; without it each one is a full
//!    park → scheduler → heap → wake round trip.
//! 2. **handoff latency** — two actors ping-ponging through a [`SimQueue`],
//!    which forces the scheduler onto the critical path of every hop; this
//!    prices the spin-then-park `Handoff` rendezvous.
//! 3. **UTS end-to-end** — the thesis Fig 3.3 workload (quick: a small
//!    tree), fast path on vs off, showing the bypass survives contact with
//!    a real application's mix of simcalls.
//! 4. **actor scale** — the coroutine-core headline: a flat spawn storm
//!    that registers a million actors (spawn rate + max live actor count)
//!    and a million-actor UTS-style dynamic spawn tree, one actor per tree
//!    node, that must complete on a default CI runner. Both run at the full
//!    million even under `--quick`; lazy context creation and the
//!    finished-stack pool are what make that cheap.
//!
//! The binary also writes `BENCH_simcore.json` and, with `--check <path>`,
//! fails when simcall throughput or handoff latency regressed more than 2x
//! against a previously committed baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hupc::net::Conduit;
use hupc::sim::{
    set_fast_path_default, time, ActorBackend, SimBackend, SimQueue, Simulation,
};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

/// The numbers `BENCH_simcore.json` records.
#[derive(Clone, Copy, Debug)]
pub struct SimcoreMetrics {
    pub simcalls_per_sec_fast: f64,
    pub simcalls_per_sec_slow: f64,
    pub simcall_speedup: f64,
    pub handoff_ns: f64,
    pub uts_host_s_fast: f64,
    pub uts_host_s_slow: f64,
    pub uts_speedup: f64,
    pub spawn_rate_per_s: f64,
    pub max_actors: f64,
    pub tree_actors: f64,
    pub tree_host_s: f64,
    /// Wall-clock speedup of the conservative parallel backend over the
    /// sequential dispatch loop on the partitioned-tree workload, at 2, 4
    /// and 8 workers. Meaningful only when `host_cpus` provides that much
    /// real parallelism — the `--check` gate is host-aware.
    pub parallel_speedup_2w: f64,
    pub parallel_speedup_4w: f64,
    pub parallel_speedup_8w: f64,
    /// `std::thread::available_parallelism()` on the measuring host, so a
    /// committed baseline records whether its speedups were measurable.
    pub host_cpus: f64,
}

impl SimcoreMetrics {
    /// Flat JSON object, one numeric field per metric.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"simcalls_per_sec_fast\": {:.0},\n  \"simcalls_per_sec_slow\": {:.0},\n  \
             \"simcall_speedup\": {:.2},\n  \"handoff_ns\": {:.0},\n  \
             \"uts_host_s_fast\": {:.3},\n  \"uts_host_s_slow\": {:.3},\n  \
             \"uts_speedup\": {:.2},\n  \"spawn_rate_per_s\": {:.0},\n  \
             \"max_actors\": {:.0},\n  \"tree_actors\": {:.0},\n  \
             \"tree_host_s\": {:.3},\n  \"parallel_speedup_2w\": {:.2},\n  \
             \"parallel_speedup_4w\": {:.2},\n  \"parallel_speedup_8w\": {:.2},\n  \
             \"host_cpus\": {:.0}\n}}\n",
            self.simcalls_per_sec_fast,
            self.simcalls_per_sec_slow,
            self.simcall_speedup,
            self.handoff_ns,
            self.uts_host_s_fast,
            self.uts_host_s_slow,
            self.uts_speedup,
            self.spawn_rate_per_s,
            self.max_actors,
            self.tree_actors,
            self.tree_host_s,
            self.parallel_speedup_2w,
            self.parallel_speedup_4w,
            self.parallel_speedup_8w,
            self.host_cpus,
        )
    }
}

/// Moved to the shared report module; re-exported so existing callers keep
/// working.
pub use crate::report::json_number;

/// One actor, `n` plain advances: the pure simcall path.
fn advance_storm(n: u64, fast: bool) -> (f64, u64) {
    let mut sim = Simulation::new();
    sim.set_fast_path(fast);
    sim.spawn("storm", move |ctx| {
        for _ in 0..n {
            ctx.advance(time::ns(10));
        }
    });
    let t0 = Instant::now();
    let stats = sim.run();
    let dt = t0.elapsed().as_secs_f64();
    (n as f64 / dt, stats.fast_path_hits)
}

/// Two actors ping-ponging one token through a pair of queues; every hop
/// crosses the scheduler, so host-time/hop prices the handoff rendezvous
/// (two `Handoff` round trips plus one heap event per hop).
fn pingpong(rounds: u64) -> f64 {
    let mut sim = Simulation::new();
    let ab = Arc::new(SimQueue::new(&mut sim.kernel()));
    let ba = Arc::new(SimQueue::new(&mut sim.kernel()));
    {
        let (ab, ba) = (Arc::clone(&ab), Arc::clone(&ba));
        sim.spawn("ping", move |ctx| {
            for i in 0..rounds {
                ab.push(ctx, i);
                ba.pop(ctx);
            }
        });
    }
    sim.spawn("pong", move |ctx| {
        for _ in 0..rounds {
            let v = ab.pop(ctx);
            ba.push(ctx, v);
        }
    });
    let t0 = Instant::now();
    sim.run();
    t0.elapsed().as_secs_f64() * 1e9 / (2.0 * rounds as f64)
}

/// UTS wall clock on the host, fast path on or off. Uses the process-global
/// default because `run_uts` builds its own `Simulation`.
fn uts_host_seconds(quick: bool, fast: bool) -> (f64, f64) {
    set_fast_path_default(fast);
    let cfg = if quick {
        UtsConfig::small(8, 2, StealStrategy::LocalFirstRapid, 18)
    } else {
        UtsConfig::thesis(16, Conduit::gige(), StealStrategy::LocalFirstRapid)
    };
    let t0 = Instant::now();
    let r = run_uts(cfg);
    let host = t0.elapsed().as_secs_f64();
    set_fast_path_default(true);
    (host, r.seconds)
}

/// Flat spawn storm: register `n` trivial actors up front, then run them
/// all to completion. Registration is cheap by design (actor meta + one
/// wake event; no stack until first dispatch), so all `n` are live at once
/// when the run starts — this is the max-actor-count probe. Returns
/// (registrations/s, run host seconds).
fn spawn_storm(n: u64) -> (f64, f64) {
    let mut sim = Simulation::new();
    // The scale probes measure the coroutine core; a million OS threads
    // would exhaust the host whatever the build's default backend is.
    sim.set_actor_backend(ActorBackend::Coroutine);
    sim.set_stack_size(16 * 1024);
    let t0 = Instant::now();
    for i in 0..n {
        sim.spawn(format!("s{i}"), move |ctx| ctx.advance(time::ns(1 + (i & 7))));
    }
    let spawn_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let stats = sim.run();
    let run_s = t1.elapsed().as_secs_f64();
    assert_eq!(stats.actors as u64, n, "storm lost actors");
    (n as f64 / spawn_s, run_s)
}

/// Million-actor UTS-style tree: one actor per tree node, children spawned
/// dynamically from running actors with a deterministic 2-or-3 branching
/// factor, capped by a shared budget at exactly `total` nodes. Parents
/// don't join — a finished node's stack goes back to the pool, so live
/// stacks track the dispatch frontier, not the tree size. Returns host
/// seconds for the whole simulation.
fn actor_tree(total: u64) -> f64 {
    fn node(ctx: &hupc::sim::Ctx, id: u64, budget: &Arc<AtomicU64>, seen: &Arc<AtomicU64>) {
        seen.fetch_add(1, Ordering::Relaxed);
        // splitmix-style hash: deterministic per-node work and branching.
        let h = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33;
        ctx.advance(time::ns(1 + (h & 15)));
        let kids = 2 + (h & 1);
        for c in 0..kids {
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                return;
            }
            let (b, s) = (Arc::clone(budget), Arc::clone(seen));
            ctx.spawn_with_stack(format!("n{id}.{c}"), 16 * 1024, move |cctx| {
                node(cctx, id.wrapping_mul(3).wrapping_add(c + 1), &b, &s)
            });
        }
    }
    let budget = Arc::new(AtomicU64::new(total - 1));
    let seen = Arc::new(AtomicU64::new(0));
    let mut sim = Simulation::new();
    sim.set_actor_backend(ActorBackend::Coroutine);
    let (b, s) = (Arc::clone(&budget), Arc::clone(&seen));
    sim.spawn_with_stack("root", 16 * 1024, move |ctx| node(ctx, 1, &b, &s));
    let t0 = Instant::now();
    let stats = sim.run();
    let host = t0.elapsed().as_secs_f64();
    assert_eq!(seen.load(Ordering::Relaxed), total, "tree lost nodes");
    assert_eq!(stats.actors as u64, total);
    host
}

/// Partitioned spawn tree: `lps` fully independent subtrees, one rooted on
/// each logical process, every child spawned on its parent's LP with a
/// per-LP budget — no cross-LP traffic, so the conservative parallel
/// backend can run the partitions concurrently with nothing to wait on.
/// This is the speedup probe: the same virtual workload timed under the
/// sequential dispatch loop and under `Parallel(n)`. Returns host seconds
/// plus the deterministic observables (end time, event count, actor count)
/// that must not move between backends.
fn partitioned_tree(
    per_lp: u64,
    lps: usize,
    backend: SimBackend,
) -> (f64, (u64, u64, usize)) {
    fn node(ctx: &hupc::sim::Ctx, id: u64, budget: &Arc<AtomicU64>) {
        let h = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33;
        ctx.advance(time::ns(1 + (h & 15)));
        let kids = 2 + (h & 1);
        for c in 0..kids {
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                return;
            }
            let b = Arc::clone(budget);
            ctx.spawn_with_stack(format!("n{id}.{c}"), 16 * 1024, move |cctx| {
                node(cctx, id.wrapping_mul(3).wrapping_add(c + 1), &b)
            });
        }
    }
    let mut sim = Simulation::new();
    sim.set_actor_backend(ActorBackend::Coroutine);
    sim.set_sim_backend(backend);
    sim.set_stack_size(16 * 1024);
    sim.set_lp_count(lps);
    sim.set_lookahead(time::us(1));
    for lp in 0..lps {
        // One budget per LP: a shared counter would serialize partitions on
        // a cache line and make node counts depend on host interleaving.
        let budget = Arc::new(AtomicU64::new(per_lp - 1));
        sim.spawn_on(lp, format!("root{lp}"), move |ctx| {
            node(ctx, 1 + lp as u64, &budget)
        });
    }
    let t0 = Instant::now();
    let stats = sim.run();
    let host = t0.elapsed().as_secs_f64();
    assert_eq!(
        stats.actors as u64,
        per_lp * lps as u64,
        "partitioned tree lost nodes"
    );
    (host, (stats.end_time, stats.events, stats.actors))
}

pub fn run(quick: bool) -> (Vec<Table>, SimcoreMetrics) {
    let n: u64 = if quick { 200_000 } else { 2_000_000 };
    let rounds: u64 = if quick { 20_000 } else { 200_000 };

    // Warm up the allocator / thread machinery once so the first timed run
    // isn't paying one-time costs.
    advance_storm(1_000, true);

    let (fast_tput, hits) = advance_storm(n, true);
    let (slow_tput, _) = advance_storm(n, false);
    assert_eq!(hits, n, "every storm advance should take the bypass");
    let hop_ns = pingpong(rounds);
    let (uts_fast, vt_fast) = uts_host_seconds(quick, true);
    let (uts_slow, vt_slow) = uts_host_seconds(quick, false);
    assert!(
        (vt_fast - vt_slow).abs() < 1e-12,
        "fast path changed UTS virtual time: {vt_fast} vs {vt_slow}"
    );
    // The scale probes run at the full million even under --quick: the CI
    // perf-smoke job is exactly where "a 1M-actor simulation completes on a
    // default runner" gets proven.
    let scale_n: u64 = 1_000_000;
    let (spawn_rate, _storm_run_s) = spawn_storm(scale_n);
    let tree_s = actor_tree(scale_n);

    // Parallel-backend scaling: 8 independent partitions timed sequentially
    // and under 2/4/8 workers. The virtual-time observables must be
    // identical in every configuration — speedup may never change results.
    let par_lps = 8usize;
    let per_lp: u64 = if quick { 12_500 } else { 125_000 };
    let (seq_s, seq_obs) = partitioned_tree(per_lp, par_lps, SimBackend::Sequential);
    let mut par_s = [0.0f64; 3];
    for (i, w) in [2usize, 4, 8].into_iter().enumerate() {
        let (s, obs) = partitioned_tree(per_lp, par_lps, SimBackend::Parallel(w));
        assert_eq!(
            obs, seq_obs,
            "parallel backend ({w} workers) changed the simulation outcome"
        );
        par_s[i] = s;
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let m = SimcoreMetrics {
        simcalls_per_sec_fast: fast_tput,
        simcalls_per_sec_slow: slow_tput,
        simcall_speedup: fast_tput / slow_tput,
        handoff_ns: hop_ns,
        uts_host_s_fast: uts_fast,
        uts_host_s_slow: uts_slow,
        uts_speedup: uts_slow / uts_fast,
        spawn_rate_per_s: spawn_rate,
        max_actors: scale_n as f64,
        tree_actors: scale_n as f64,
        tree_host_s: tree_s,
        parallel_speedup_2w: seq_s / par_s[0],
        parallel_speedup_4w: seq_s / par_s[1],
        parallel_speedup_8w: seq_s / par_s[2],
        host_cpus: host_cpus as f64,
    };

    let mut t1 = Table::new(
        format!("Engine microbench — simcall throughput ({n} advances, one actor)"),
        &["mode", "simcalls/s", "speedup"],
    );
    t1.row(vec![
        "scheduler round trip".into(),
        format!("{:.0}", m.simcalls_per_sec_slow),
        "1.00x".into(),
    ]);
    t1.row(vec![
        "bypass fast path".into(),
        format!("{:.0}", m.simcalls_per_sec_fast),
        format!("{:.2}x", m.simcall_speedup),
    ]);

    let mut t2 = Table::new(
        format!("Engine microbench — scheduler handoff ({rounds} ping-pong rounds)"),
        &["metric", "value"],
    );
    t2.row(vec!["host ns / hop".into(), format!("{:.0}", m.handoff_ns)]);

    let mut t3 = Table::new(
        if quick {
            "UTS host wall-clock — small tree, 8 threads, 2 nodes".to_string()
        } else {
            "UTS host wall-clock — thesis Fig 3.3 scale (4M nodes, 16 threads, GigE)"
                .to_string()
        },
        &["mode", "host s", "speedup"],
    );
    t3.row(vec![
        "fast path off".into(),
        format!("{:.3}", m.uts_host_s_slow),
        "1.00x".into(),
    ]);
    t3.row(vec![
        "fast path on".into(),
        format!("{:.3}", m.uts_host_s_fast),
        format!("{:.2}x", m.uts_speedup),
    ]);

    let mut t4 = Table::new(
        format!("Actor scale — coroutine core, {scale_n} actors"),
        &["metric", "value"],
    );
    t4.row(vec![
        "spawn rate (actors/s)".into(),
        format!("{:.0}", m.spawn_rate_per_s),
    ]);
    t4.row(vec![
        "max live actors (flat storm)".into(),
        format!("{:.0}", m.max_actors),
    ]);
    t4.row(vec![
        "dynamic tree run (host s)".into(),
        format!("{:.3}", m.tree_host_s),
    ]);

    let mut t5 = Table::new(
        format!(
            "Parallel backend — {par_lps} partitions × {per_lp} actors \
             (host has {host_cpus} CPUs)"
        ),
        &["workers", "host s", "speedup"],
    );
    t5.row(vec!["sequential".into(), format!("{seq_s:.3}"), "1.00x".into()]);
    for (i, w) in [2usize, 4, 8].into_iter().enumerate() {
        t5.row(vec![
            format!("{w}"),
            format!("{:.3}", par_s[i]),
            format!("{:.2}x", seq_s / par_s[i]),
        ]);
    }

    (vec![t1, t2, t3, t4, t5], m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_reads_back_what_to_json_writes() {
        let m = SimcoreMetrics {
            simcalls_per_sec_fast: 1_234_567.0,
            simcalls_per_sec_slow: 98_765.0,
            simcall_speedup: 12.5,
            handoff_ns: 840.0,
            uts_host_s_fast: 1.25,
            uts_host_s_slow: 3.5,
            uts_speedup: 2.8,
            spawn_rate_per_s: 2_500_000.0,
            max_actors: 1_000_000.0,
            tree_actors: 1_000_000.0,
            tree_host_s: 1.75,
            parallel_speedup_2w: 1.9,
            parallel_speedup_4w: 3.6,
            parallel_speedup_8w: 6.25,
            host_cpus: 8.0,
        };
        let j = m.to_json();
        assert_eq!(json_number(&j, "simcalls_per_sec_fast"), Some(1_234_567.0));
        assert_eq!(json_number(&j, "simcall_speedup"), Some(12.5));
        assert_eq!(json_number(&j, "uts_speedup"), Some(2.8));
        assert_eq!(json_number(&j, "handoff_ns"), Some(840.0));
        assert_eq!(json_number(&j, "spawn_rate_per_s"), Some(2_500_000.0));
        assert_eq!(json_number(&j, "max_actors"), Some(1_000_000.0));
        assert_eq!(json_number(&j, "tree_host_s"), Some(1.75));
        assert_eq!(json_number(&j, "parallel_speedup_2w"), Some(1.9));
        assert_eq!(json_number(&j, "parallel_speedup_4w"), Some(3.6));
        assert_eq!(json_number(&j, "parallel_speedup_8w"), Some(6.25));
        assert_eq!(json_number(&j, "host_cpus"), Some(8.0));
        assert_eq!(json_number(&j, "missing"), None);
    }
}
