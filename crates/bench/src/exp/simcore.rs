//! Engine microbenchmark — host-speed cost of the simcall machinery.
//!
//! Not a thesis figure: this measures the *simulator itself*, pinning the
//! scheduler-bypass fast path's win. Three probes:
//!
//! 1. **simcall throughput** — one actor issuing back-to-back `advance`
//!    simcalls, fast path on vs off. With the bypass every advance resolves
//!    inline under the kernel lock; without it each one is a full
//!    park → scheduler → heap → wake round trip.
//! 2. **handoff latency** — two actors ping-ponging through a [`SimQueue`],
//!    which forces the scheduler onto the critical path of every hop; this
//!    prices the spin-then-park `Handoff` rendezvous.
//! 3. **UTS end-to-end** — the thesis Fig 3.3 workload (quick: a small
//!    tree), fast path on vs off, showing the bypass survives contact with
//!    a real application's mix of simcalls.
//!
//! The binary also writes `BENCH_simcore.json` and, with `--check <path>`,
//! fails when simcall throughput regressed more than 2x against a
//! previously committed baseline.

use std::sync::Arc;
use std::time::Instant;

use hupc::net::Conduit;
use hupc::sim::{set_fast_path_default, time, SimQueue, Simulation};
use hupc::uts::{run_uts, StealStrategy, UtsConfig};

use crate::Table;

/// The numbers `BENCH_simcore.json` records.
#[derive(Clone, Copy, Debug)]
pub struct SimcoreMetrics {
    pub simcalls_per_sec_fast: f64,
    pub simcalls_per_sec_slow: f64,
    pub simcall_speedup: f64,
    pub handoff_ns: f64,
    pub uts_host_s_fast: f64,
    pub uts_host_s_slow: f64,
    pub uts_speedup: f64,
}

impl SimcoreMetrics {
    /// Flat JSON object, one numeric field per metric.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"simcalls_per_sec_fast\": {:.0},\n  \"simcalls_per_sec_slow\": {:.0},\n  \
             \"simcall_speedup\": {:.2},\n  \"handoff_ns\": {:.0},\n  \
             \"uts_host_s_fast\": {:.3},\n  \"uts_host_s_slow\": {:.3},\n  \
             \"uts_speedup\": {:.2}\n}}\n",
            self.simcalls_per_sec_fast,
            self.simcalls_per_sec_slow,
            self.simcall_speedup,
            self.handoff_ns,
            self.uts_host_s_fast,
            self.uts_host_s_slow,
            self.uts_speedup,
        )
    }
}

/// Pull one numeric field out of a flat JSON object (the shape
/// [`SimcoreMetrics::to_json`] writes). Enough of a parser for `--check`;
/// no strings, no nesting.
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One actor, `n` plain advances: the pure simcall path.
fn advance_storm(n: u64, fast: bool) -> (f64, u64) {
    let mut sim = Simulation::new();
    sim.set_fast_path(fast);
    sim.spawn("storm", move |ctx| {
        for _ in 0..n {
            ctx.advance(time::ns(10));
        }
    });
    let t0 = Instant::now();
    let stats = sim.run();
    let dt = t0.elapsed().as_secs_f64();
    (n as f64 / dt, stats.fast_path_hits)
}

/// Two actors ping-ponging one token through a pair of queues; every hop
/// crosses the scheduler, so host-time/hop prices the handoff rendezvous
/// (two `Handoff` round trips plus one heap event per hop).
fn pingpong(rounds: u64) -> f64 {
    let mut sim = Simulation::new();
    let ab = Arc::new(SimQueue::new(&mut sim.kernel()));
    let ba = Arc::new(SimQueue::new(&mut sim.kernel()));
    {
        let (ab, ba) = (Arc::clone(&ab), Arc::clone(&ba));
        sim.spawn("ping", move |ctx| {
            for i in 0..rounds {
                ab.push(ctx, i);
                ba.pop(ctx);
            }
        });
    }
    sim.spawn("pong", move |ctx| {
        for _ in 0..rounds {
            let v = ab.pop(ctx);
            ba.push(ctx, v);
        }
    });
    let t0 = Instant::now();
    sim.run();
    t0.elapsed().as_secs_f64() * 1e9 / (2.0 * rounds as f64)
}

/// UTS wall clock on the host, fast path on or off. Uses the process-global
/// default because `run_uts` builds its own `Simulation`.
fn uts_host_seconds(quick: bool, fast: bool) -> (f64, f64) {
    set_fast_path_default(fast);
    let cfg = if quick {
        UtsConfig::small(8, 2, StealStrategy::LocalFirstRapid, 18)
    } else {
        UtsConfig::thesis(16, Conduit::gige(), StealStrategy::LocalFirstRapid)
    };
    let t0 = Instant::now();
    let r = run_uts(cfg);
    let host = t0.elapsed().as_secs_f64();
    set_fast_path_default(true);
    (host, r.seconds)
}

pub fn run(quick: bool) -> (Vec<Table>, SimcoreMetrics) {
    let n: u64 = if quick { 200_000 } else { 2_000_000 };
    let rounds: u64 = if quick { 20_000 } else { 200_000 };

    // Warm up the allocator / thread machinery once so the first timed run
    // isn't paying one-time costs.
    advance_storm(1_000, true);

    let (fast_tput, hits) = advance_storm(n, true);
    let (slow_tput, _) = advance_storm(n, false);
    assert_eq!(hits, n, "every storm advance should take the bypass");
    let hop_ns = pingpong(rounds);
    let (uts_fast, vt_fast) = uts_host_seconds(quick, true);
    let (uts_slow, vt_slow) = uts_host_seconds(quick, false);
    assert!(
        (vt_fast - vt_slow).abs() < 1e-12,
        "fast path changed UTS virtual time: {vt_fast} vs {vt_slow}"
    );

    let m = SimcoreMetrics {
        simcalls_per_sec_fast: fast_tput,
        simcalls_per_sec_slow: slow_tput,
        simcall_speedup: fast_tput / slow_tput,
        handoff_ns: hop_ns,
        uts_host_s_fast: uts_fast,
        uts_host_s_slow: uts_slow,
        uts_speedup: uts_slow / uts_fast,
    };

    let mut t1 = Table::new(
        format!("Engine microbench — simcall throughput ({n} advances, one actor)"),
        &["mode", "simcalls/s", "speedup"],
    );
    t1.row(vec![
        "scheduler round trip".into(),
        format!("{:.0}", m.simcalls_per_sec_slow),
        "1.00x".into(),
    ]);
    t1.row(vec![
        "bypass fast path".into(),
        format!("{:.0}", m.simcalls_per_sec_fast),
        format!("{:.2}x", m.simcall_speedup),
    ]);

    let mut t2 = Table::new(
        format!("Engine microbench — scheduler handoff ({rounds} ping-pong rounds)"),
        &["metric", "value"],
    );
    t2.row(vec!["host ns / hop".into(), format!("{:.0}", m.handoff_ns)]);

    let mut t3 = Table::new(
        if quick {
            "UTS host wall-clock — small tree, 8 threads, 2 nodes".to_string()
        } else {
            "UTS host wall-clock — thesis Fig 3.3 scale (4M nodes, 16 threads, GigE)"
                .to_string()
        },
        &["mode", "host s", "speedup"],
    );
    t3.row(vec![
        "fast path off".into(),
        format!("{:.3}", m.uts_host_s_slow),
        "1.00x".into(),
    ]);
    t3.row(vec![
        "fast path on".into(),
        format!("{:.3}", m.uts_host_s_fast),
        format!("{:.2}x", m.uts_speedup),
    ]);

    (vec![t1, t2, t3], m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_reads_back_what_to_json_writes() {
        let m = SimcoreMetrics {
            simcalls_per_sec_fast: 1_234_567.0,
            simcalls_per_sec_slow: 98_765.0,
            simcall_speedup: 12.5,
            handoff_ns: 840.0,
            uts_host_s_fast: 1.25,
            uts_host_s_slow: 3.5,
            uts_speedup: 2.8,
        };
        let j = m.to_json();
        assert_eq!(json_number(&j, "simcalls_per_sec_fast"), Some(1_234_567.0));
        assert_eq!(json_number(&j, "simcall_speedup"), Some(12.5));
        assert_eq!(json_number(&j, "uts_speedup"), Some(2.8));
        assert_eq!(json_number(&j, "missing"), None);
    }
}
