//! `hupc-bench` — the experiment harness: one module (and one binary) per
//! table / figure of the thesis' evaluation chapters.
//!
//! Every binary prints the regenerated rows/series next to the thesis'
//! published values and accepts:
//!
//! * `--csv <path>` — also dump machine-readable series;
//! * `--quick` — a reduced sweep (fewer configurations / iterations) for
//!   smoke runs.
//!
//! `all_experiments` runs the full set.

pub mod exp;
pub mod report;

pub use report::{
    baseline_metrics, check_gates, enforce_gates, json_number, parse_args, Args, Gate, Table,
};
