//! Criterion micro-benchmarks of the simulation engine itself: how fast the
//! scheduler processes events on the host (wall time, not virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hupc::prelude::*;

/// A full simulation: `actors` actors × `rounds` advance+barrier rounds.
fn run_rounds(actors: usize, rounds: usize) {
    let mut sim = Simulation::new();
    let bar = sim.kernel().new_barrier(actors);
    for a in 0..actors as u64 {
        sim.spawn(format!("a{a}"), move |ctx| {
            for i in 0..rounds as u64 {
                ctx.advance(time::ns(100 + (a * 7 + i) % 50));
                ctx.barrier_wait(bar);
            }
        });
    }
    sim.run();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for actors in [2usize, 8, 32] {
        g.bench_with_input(
            BenchmarkId::new("barrier_rounds", actors),
            &actors,
            |b, &n| b.iter(|| run_rounds(n, 50)),
        );
    }
    g.bench_function("spmd_put_ring", |b| {
        b.iter(|| {
            let job = UpcJob::new(UpcConfig::test_default(4, 2));
            let rt = std::sync::Arc::clone(job.runtime());
            let off = rt.alloc_words(16);
            job.run(move |upc| {
                let me = upc.mythread();
                for _ in 0..20 {
                    upc.memput((me + 1) % 4, off, &[me as u64; 16]);
                    upc.barrier();
                }
            });
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
