//! Criterion benchmarks of UTS tree generation (SHA-1 node derivation) —
//! the per-node work the simulated benchmark charges 350 ns for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hupc::uts::{sequential_traverse, sha1, TreeParams};

fn bench_uts(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts_tree");

    g.throughput(Throughput::Bytes(64));
    g.bench_function("sha1_64B", |b| {
        let data = [0xabu8; 64];
        b.iter(|| sha1(std::hint::black_box(&data)))
    });

    let p = TreeParams::small_binomial(7);
    let (nodes, _, _) = sequential_traverse(&p);
    g.throughput(Throughput::Elements(nodes));
    g.bench_function("traverse_small_binomial", |b| {
        b.iter(|| sequential_traverse(std::hint::black_box(&p)))
    });

    g.bench_function("children_generation", |b| {
        let root = p.root();
        let mut kids = Vec::new();
        b.iter(|| {
            p.children(std::hint::black_box(&root), &mut kids);
            kids.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_uts);
criterion_main!(benches);
