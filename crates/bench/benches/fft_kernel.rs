//! Criterion benchmarks of the from-scratch FFT kernel (host wall time):
//! the compute engine behind the NAS FT reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hupc::fft::{Complex, Direction, FftPlan};

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_kernel");
    for log_n in [8u32, 10, 12, 14] {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n);
        let sig = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || sig.clone(),
                |mut s| plan.transform(&mut s, Direction::Forward),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // round trip at a fixed size (accuracy-preserving path)
    let n = 1 << 12;
    let plan = FftPlan::new(n);
    let sig = signal(n);
    g.bench_function("round_trip_4096", |b| {
        b.iter_batched(
            || sig.clone(),
            |mut s| {
                plan.transform(&mut s, Direction::Forward);
                plan.transform(&mut s, Direction::Inverse);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
