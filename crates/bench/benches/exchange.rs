//! Criterion benchmark of a full simulated all-to-all exchange (host wall
//! time per simulated collective — the dominant unit of figure runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hupc::prelude::*;

fn exchange_once(threads: usize, count: usize) {
    let job = UpcJob::new(UpcConfig::test_default(threads, 2));
    let src = job.alloc_shared::<u64>(threads * threads * count, threads * count);
    let dst = job.alloc_shared::<u64>(threads * threads * count, threads * count);
    job.run(move |upc| {
        let me = upc.mythread();
        src.with_local_words(&upc, |w| {
            for (i, x) in w.iter_mut().enumerate() {
                *x = (me * 100_000 + i) as u64;
            }
        });
        upc.barrier();
        upc.all_exchange(src, dst, count, false);
    });
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.sample_size(10);
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("all_exchange_64w", threads),
            &threads,
            |b, &n| b.iter(|| exchange_once(n, 64)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
