//! Problem classes, deterministic initial data, evolution factors, checksum
//! probes, and a sequential reference implementation.

use crate::kernel::{Complex, Direction, FftPlan};

/// NAS FT problem classes (grid + iteration count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtClass {
    /// 64×64×64, 6 iterations.
    S,
    /// 128×128×32, 6 iterations.
    W,
    /// 256×256×128, 6 iterations.
    A,
    /// 512×256×256, 20 iterations — the thesis' evaluation size.
    B,
    /// Arbitrary power-of-two grid (tests).
    Custom {
        nx: usize,
        ny: usize,
        nz: usize,
        iters: usize,
    },
}

impl FtClass {
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            FtClass::S => (64, 64, 64),
            FtClass::W => (128, 128, 32),
            FtClass::A => (256, 256, 128),
            FtClass::B => (512, 256, 256),
            FtClass::Custom { nx, ny, nz, .. } => (*nx, *ny, *nz),
        }
    }

    pub fn iters(&self) -> usize {
        match self {
            FtClass::S | FtClass::W | FtClass::A => 6,
            FtClass::B => 20,
            FtClass::Custom { iters, .. } => *iters,
        }
    }

    pub fn name(&self) -> String {
        match self {
            FtClass::S => "S".into(),
            FtClass::W => "W".into(),
            FtClass::A => "A".into(),
            FtClass::B => "B".into(),
            FtClass::Custom { nx, ny, nz, .. } => format!("{nx}x{ny}x{nz}"),
        }
    }

    pub fn grid(&self) -> Grid {
        let (nx, ny, nz) = self.dims();
        Grid { nx, ny, nz }
    }
}

/// The 3-D grid: dimension sizes and the derived index/physics helpers.
/// Spatial layout convention: `x` fastest, flat index `x + nx·(y + ny·z)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

/// NAS FT's diffusion constant.
const ALPHA: f64 = 1.0e-6;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Grid {
    pub fn total(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Deterministic pseudorandom initial value at a global coordinate —
    /// independent of the decomposition, so every variant starts from the
    /// identical field (NAS seeds a serial RNG; we seed by coordinate).
    pub fn initial(&self, x: usize, y: usize, z: usize) -> Complex {
        let flat = (x + self.nx * (y + self.ny * z)) as u64;
        let h1 = splitmix64(flat.wrapping_mul(2) + 1);
        let h2 = splitmix64(flat.wrapping_mul(2) + 2);
        // uniforms in (0,1) like NAS' vranlc stream
        let re = (h1 >> 11) as f64 / (1u64 << 53) as f64;
        let im = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        Complex::new(re, im)
    }

    /// Signed (wrapped) frequency of index `k` in a dimension of size `n`.
    fn wrapped(k: usize, n: usize) -> f64 {
        if k <= n / 2 {
            k as f64
        } else {
            k as f64 - n as f64
        }
    }

    /// Evolution factor `exp(-4π²·α·t·|k̄|²)` for frequency-space index
    /// `(kx, ky, kz)` at timestep `t`.
    pub fn evolve_factor(&self, t: usize, kx: usize, ky: usize, kz: usize) -> f64 {
        let fx = Self::wrapped(kx, self.nx);
        let fy = Self::wrapped(ky, self.ny);
        let fz = Self::wrapped(kz, self.nz);
        let k2 = fx * fx + fy * fy + fz * fz;
        (-4.0 * std::f64::consts::PI * std::f64::consts::PI * ALPHA * t as f64 * k2).exp()
    }

    /// The 1024 spatial probe coordinates whose sum is the per-iteration
    /// checksum (deterministic, decomposition-independent).
    pub fn checksum_coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (1..=1024usize).map(move |j| {
            let x = (3 * j) % self.nx;
            let y = (5 * j) % self.ny;
            let z = (7 * j) % self.nz;
            (x, y, z)
        })
    }
}

/// Sequential reference FT: full 3-D FFT + evolve + inverse per iteration;
/// returns the per-iteration checksums. Oracle for the distributed variants
/// (small grids only — O(total) memory ×3).
pub fn seq_checksums(class: FtClass) -> Vec<Complex> {
    let g = class.grid();
    let (nx, ny, nz) = (g.nx, g.ny, g.nz);
    let mut u0: Vec<Complex> = Vec::with_capacity(g.total());
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                u0.push(g.initial(x, y, z));
            }
        }
    }
    fft3d(&mut u0, &g, Direction::Forward);
    let mut sums = Vec::with_capacity(class.iters());
    let mut ut = vec![Complex::ZERO; g.total()];
    for t in 1..=class.iters() {
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = x + nx * (y + ny * z);
                    ut[i] = u0[i].scale(g.evolve_factor(t, x, y, z));
                }
            }
        }
        fft3d(&mut ut, &g, Direction::Inverse);
        let mut s = Complex::ZERO;
        for (x, y, z) in g.checksum_coords() {
            s = s + ut[x + nx * (y + ny * z)];
        }
        sums.push(s);
    }
    sums
}

/// In-place 3-D FFT on a spatially-laid-out array (x fastest).
pub fn fft3d(data: &mut [Complex], g: &Grid, dir: Direction) {
    let (nx, ny, nz) = (g.nx, g.ny, g.nz);
    assert_eq!(data.len(), g.total());
    let px = FftPlan::new(nx);
    let py = FftPlan::new(ny);
    let pz = FftPlan::new(nz);
    // x rows (contiguous)
    for row in data.chunks_exact_mut(nx) {
        px.transform(row, dir);
    }
    // y columns (stride nx within each z plane)
    let mut buf = vec![Complex::ZERO; ny];
    for z in 0..nz {
        for x in 0..nx {
            for (yy, b) in buf.iter_mut().enumerate() {
                *b = data[x + nx * (yy + ny * z)];
            }
            py.transform(&mut buf, dir);
            for (yy, b) in buf.iter().enumerate() {
                data[x + nx * (yy + ny * z)] = *b;
            }
        }
    }
    // z pencils (stride nx*ny)
    let mut buf = vec![Complex::ZERO; nz];
    for y in 0..ny {
        for x in 0..nx {
            for (zz, b) in buf.iter_mut().enumerate() {
                *b = data[x + nx * (y + ny * zz)];
            }
            pz.transform(&mut buf, dir);
            for (zz, b) in buf.iter().enumerate() {
                data[x + nx * (y + ny * zz)] = *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_dims() {
        assert_eq!(FtClass::B.dims(), (512, 256, 256));
        assert_eq!(FtClass::B.iters(), 20);
        assert_eq!(FtClass::S.dims(), (64, 64, 64));
    }

    #[test]
    fn initial_is_coordinate_deterministic() {
        let g = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 }.grid();
        assert_eq!(g.initial(1, 2, 3), g.initial(1, 2, 3));
        assert_ne!(g.initial(1, 2, 3), g.initial(3, 2, 1));
        let v = g.initial(7, 7, 7);
        assert!(v.re > 0.0 && v.re < 1.0 && v.im > 0.0 && v.im < 1.0);
    }

    #[test]
    fn evolve_factor_decays_high_frequencies() {
        let g = FtClass::S.grid();
        let low = g.evolve_factor(5, 1, 0, 0);
        let high = g.evolve_factor(5, 32, 32, 32);
        assert!(low > high);
        assert!(high > 0.0 && low <= 1.0);
        assert_eq!(g.evolve_factor(0, 9, 9, 9), 1.0);
    }

    #[test]
    fn wrapped_frequencies_are_symmetric() {
        let g = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 }.grid();
        // k and n-k have the same |k̄|² in each dimension
        assert_eq!(g.evolve_factor(3, 1, 0, 0), g.evolve_factor(3, 7, 0, 0));
        assert_eq!(g.evolve_factor(3, 0, 2, 0), g.evolve_factor(3, 0, 6, 0));
    }

    #[test]
    fn fft3d_round_trip() {
        let class = FtClass::Custom { nx: 8, ny: 4, nz: 16, iters: 1 };
        let g = class.grid();
        let mut data: Vec<Complex> = (0..g.total())
            .map(|i| {
                let z = i / (g.nx * g.ny);
                let r = i % (g.nx * g.ny);
                g.initial(r % g.nx, r / g.nx, z)
            })
            .collect();
        let orig = data.clone();
        fft3d(&mut data, &g, Direction::Forward);
        fft3d(&mut data, &g, Direction::Inverse);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn seq_checksums_are_stable() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 3 };
        let a = seq_checksums(class);
        let b = seq_checksums(class);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        // successive iterations differ (the field evolves)
        assert_ne!(a[0].re.to_bits(), a[2].re.to_bits());
    }

    #[test]
    fn checksum_probes_are_in_bounds() {
        let g = FtClass::W.grid();
        for (x, y, z) in g.checksum_coords() {
            assert!(x < g.nx && y < g.ny && z < g.nz);
        }
        assert_eq!(g.checksum_coords().count(), 1024);
    }
}
