//! Transport-independent FT machinery: decomposition arithmetic, real data
//! math, and the flop/byte charge constants — shared by the UPC and MPI
//! variants so their numerics are bit-identical.

use crate::grid::Grid;
use crate::kernel::{Complex, Direction, FftPlan};

/// Fraction of peak flops the FFT kernels sustain (FFTW-on-Nehalem scale).
pub(crate) const FFT_EFF: f64 = 0.30;
/// Effective per-core bandwidth of cache-blocked packing / transpose /
/// evolve sweeps, bytes/s (these kernels scale with cores in Fig 4.4, so
/// they are charged per-core, not against the shared controllers).
pub(crate) const PACK_BW: f64 = 3.5e9;

/// Decomposition arithmetic (thesis Fig 4.3 plus the transposed frequency
/// layout): spatial z-slabs of `nzp` planes; frequency y-slices of `nyp`
/// rows with z fastest.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Layout {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub p: usize,
    pub nzp: usize,
    pub nyp: usize,
    /// Elements per thread.
    pub chunk: usize,
    /// Elements per exchange slot (one per peer).
    pub slot: usize,
}

impl Layout {
    pub fn new(g: Grid, p: usize) -> Layout {
        assert!(g.nz % p == 0, "threads ({p}) must divide nz ({})", g.nz);
        assert!(g.ny % p == 0, "threads ({p}) must divide ny ({})", g.ny);
        let chunk = g.total() / p;
        Layout {
            nx: g.nx,
            ny: g.ny,
            nz: g.nz,
            p,
            nzp: g.nz / p,
            nyp: g.ny / p,
            chunk,
            slot: chunk / p,
        }
    }

    /// Spatial local index of `(x, y, zl)` — x fastest.
    #[inline]
    pub fn s_idx(&self, x: usize, y: usize, zl: usize) -> usize {
        x + self.nx * (y + self.ny * zl)
    }

    /// Frequency local index of `(yl, x, z)` — z fastest.
    #[inline]
    pub fn f_idx(&self, yl: usize, x: usize, z: usize) -> usize {
        z + self.nz * (x + self.nx * yl)
    }

    /// Index inside a *forward* exchange slot: `(zl_of_sender, yl, x)`.
    #[inline]
    pub fn fwd_slot_idx(&self, zl: usize, yl: usize, x: usize) -> usize {
        x + self.nx * (yl + self.nyp * zl)
    }

    /// Index inside an *inverse* exchange slot: `(yl_of_sender, x, zl)`.
    #[inline]
    pub fn inv_slot_idx(&self, yl: usize, x: usize, zl: usize) -> usize {
        zl + self.nzp * (x + self.nx * yl)
    }
}

/// Modeled flop counts per plane-unit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Charges {
    /// One spatial plane's x+y FFT passes.
    pub plane2d: f64,
    /// One frequency row-plane's (nx pencils) z FFT pass.
    pub planez: f64,
}

impl Charges {
    pub fn new(l: &Layout) -> Charges {
        let fx = 5.0 * l.nx as f64 * (l.nx as f64).log2();
        let fy = 5.0 * l.ny as f64 * (l.ny as f64).log2();
        let fz = 5.0 * l.nz as f64 * (l.nz as f64).log2();
        Charges {
            plane2d: l.ny as f64 * fx + l.nx as f64 * fy,
            planez: l.nx as f64 * fz,
        }
    }
}

/// Real per-rank data (Execute mode).
pub(crate) struct Data {
    /// Spatial slab (nzp × ny × nx).
    pub s: Vec<Complex>,
    /// Frequency slice (nyp × nx × nz).
    pub f: Vec<Complex>,
    /// Forward-transformed initial field (frequency layout).
    pub u0: Vec<Complex>,
    px: FftPlan,
    py: FftPlan,
    pz: FftPlan,
    ybuf: Vec<Complex>,
}

pub(crate) fn init_data(g: &Grid, l: &Layout, me: usize) -> Data {
    let mut s = vec![Complex::ZERO; l.chunk];
    for zl in 0..l.nzp {
        let z = me * l.nzp + zl;
        for y in 0..l.ny {
            for x in 0..l.nx {
                s[l.s_idx(x, y, zl)] = g.initial(x, y, z);
            }
        }
    }
    Data {
        s,
        f: vec![Complex::ZERO; l.chunk],
        u0: vec![Complex::ZERO; l.chunk],
        px: FftPlan::new(l.nx),
        py: FftPlan::new(l.ny),
        pz: FftPlan::new(l.nz),
        ybuf: vec![Complex::ZERO; l.ny],
    }
}

/// x+y FFT passes over every spatial plane.
pub(crate) fn data_fft2d(d: &mut Data, l: &Layout, dir: Direction) {
    for zl in 0..l.nzp {
        let plane = &mut d.s[zl * l.nx * l.ny..(zl + 1) * l.nx * l.ny];
        for row in plane.chunks_exact_mut(l.nx) {
            d.px.transform(row, dir);
        }
        for x in 0..l.nx {
            for (yy, b) in d.ybuf.iter_mut().enumerate() {
                *b = plane[x + l.nx * yy];
            }
            d.py.transform(&mut d.ybuf, dir);
            for (yy, b) in d.ybuf.iter().enumerate() {
                plane[x + l.nx * yy] = *b;
            }
        }
    }
}

/// z FFT pass over every frequency pencil.
pub(crate) fn data_fftz(d: &mut Data, l: &Layout, dir: Direction) {
    for pencil in d.f.chunks_exact_mut(l.nz) {
        d.pz.transform(pencil, dir);
    }
}

/// Frequency-space evolution at step `t`.
pub(crate) fn data_evolve(d: &mut Data, l: &Layout, me: usize, t: usize) {
    let g = Grid {
        nx: l.nx,
        ny: l.ny,
        nz: l.nz,
    };
    for yl in 0..l.nyp {
        let ky = me * l.nyp + yl;
        for x in 0..l.nx {
            for z in 0..l.nz {
                let i = l.f_idx(yl, x, z);
                d.f[i] = d.u0[i].scale(g.evolve_factor(t, x, ky, z));
            }
        }
    }
}

/// Pack the forward-exchange block of spatial plane `zl` for `dest`.
pub(crate) fn pack_fwd_block(d: &Data, l: &Layout, zl: usize, dest: usize, words: &mut [u64]) {
    for yl in 0..l.nyp {
        for x in 0..l.nx {
            let v = d.s[l.s_idx(x, dest * l.nyp + yl, zl)];
            let bi = l.fwd_slot_idx(0, yl, x);
            words[bi * 2] = v.re.to_bits();
            words[bi * 2 + 1] = v.im.to_bits();
        }
    }
}

/// Pack the inverse-exchange block of frequency plane `yl` for `dest`.
pub(crate) fn pack_inv_block(d: &Data, l: &Layout, yl: usize, dest: usize, words: &mut [u64]) {
    for x in 0..l.nx {
        for zl in 0..l.nzp {
            let v = d.f[l.f_idx(yl, x, dest * l.nzp + zl)];
            let bi = l.inv_slot_idx(0, x, zl);
            words[bi * 2] = v.re.to_bits();
            words[bi * 2 + 1] = v.im.to_bits();
        }
    }
}

/// Rearrange received forward blocks (one full slot per source) into the
/// frequency layout. `slot(src)` yields that source's slot words.
pub(crate) fn unpack_forward_with<'a>(
    d: &mut Data,
    l: &Layout,
    mut slot: impl FnMut(usize) -> &'a [u64],
) {
    for src in 0..l.p {
        let s = slot(src);
        for zl in 0..l.nzp {
            let z = src * l.nzp + zl;
            for yl in 0..l.nyp {
                for x in 0..l.nx {
                    let bi = l.fwd_slot_idx(zl, yl, x);
                    d.f[l.f_idx(yl, x, z)] =
                        Complex::new(f64::from_bits(s[bi * 2]), f64::from_bits(s[bi * 2 + 1]));
                }
            }
        }
    }
}

/// Rearrange received inverse blocks into the spatial layout.
pub(crate) fn unpack_inverse_with<'a>(
    d: &mut Data,
    l: &Layout,
    mut slot: impl FnMut(usize) -> &'a [u64],
) {
    for src in 0..l.p {
        let s = slot(src);
        for yl in 0..l.nyp {
            let y = src * l.nyp + yl;
            for x in 0..l.nx {
                for zl in 0..l.nzp {
                    let bi = l.inv_slot_idx(yl, x, zl);
                    d.s[l.s_idx(x, y, zl)] =
                        Complex::new(f64::from_bits(s[bi * 2]), f64::from_bits(s[bi * 2 + 1]));
                }
            }
        }
    }
}

/// Sum this rank's checksum probes from the spatial slab.
pub(crate) fn checksum_local(d: &Data, l: &Layout, g: &Grid, me: usize) -> (f64, f64) {
    let (mut re, mut im) = (0.0, 0.0);
    for (x, y, z) in g.checksum_coords() {
        if z / l.nzp == me {
            let v = d.s[l.s_idx(x, y, z % l.nzp)];
            re += v.re;
            im += v.im;
        }
    }
    (re, im)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::grid::FtClass;

    #[test]
    fn layout_partitions_exactly() {
        let g = FtClass::Custom { nx: 8, ny: 8, nz: 16, iters: 1 }.grid();
        let l = Layout::new(g, 4);
        assert_eq!(l.nzp, 4);
        assert_eq!(l.nyp, 2);
        assert_eq!(l.chunk * l.p, g.total());
        assert_eq!(l.slot * l.p, l.chunk);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_rejected() {
        let g = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 }.grid();
        Layout::new(g, 3);
    }

    #[test]
    fn pack_unpack_round_trip() {
        // Through a full fake exchange: every (me→dest) forward block packed,
        // then unpacked at the destination, must reproduce s in f-layout
        // (without FFTs the values are just rearranged).
        let g = FtClass::Custom { nx: 4, ny: 4, nz: 4, iters: 1 }.grid();
        let p = 2;
        let l = Layout::new(g, p);
        let mut ranks: Vec<Data> = (0..p).map(|me| init_data(&g, &l, me)).collect();
        // slot storage: [dest][src] -> words
        let mut slots = vec![vec![vec![0u64; l.slot * 2]; p]; p];
        for me in 0..p {
            for dest in 0..p {
                for zl in 0..l.nzp {
                    let block = l.slot / l.nzp * 2;
                    let mut w = vec![0u64; block];
                    pack_fwd_block(&ranks[me], &l, zl, dest, &mut w);
                    slots[dest][me][zl * block..(zl + 1) * block].copy_from_slice(&w);
                }
            }
        }
        for me in 0..p {
            let sl = slots[me].clone();
            unpack_forward_with(&mut ranks[me], &l, |src| &sl[src][..]);
        }
        // f[yl, x, z] on rank me must equal the global initial at
        // (x, me*nyp+yl, z).
        for me in 0..p {
            for yl in 0..l.nyp {
                for x in 0..l.nx {
                    for z in 0..l.nz {
                        let want = g.initial(x, me * l.nyp + yl, z);
                        let got = ranks[me].f[l.f_idx(yl, x, z)];
                        assert_eq!(got, want, "rank {me} ({x},{yl},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn charges_scale_with_dims() {
        let g = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 }.grid();
        let c8 = Charges::new(&Layout::new(g, 2));
        let g2 = FtClass::Custom { nx: 16, ny: 8, nz: 8, iters: 1 }.grid();
        let c16 = Charges::new(&Layout::new(g2, 2));
        assert!(c16.plane2d > c8.plane2d);
    }
}
