//! `hupc-fft` — the NAS FT benchmark: 3-D FFTs over a distributed grid,
//! with every variant the thesis evaluates.
//!
//! FT solves a PDE by repeated spectral steps: one forward 3-D FFT, then per
//! iteration an *evolve* (frequency-space exponential damping), an inverse
//! 3-D FFT and a checksum. With the 1-D slab decomposition (thesis Fig 4.3)
//! the third-dimension FFT needs a global all-to-all exchange — the
//! communication phase every figure of Chapters 3–4 dissects.
//!
//! Variants (all sharing the same numerics and the same cost model):
//!
//! * transport: **UPC** one-sided puts vs the **MPI** pairwise-exchange
//!   collective;
//! * schedule: **split-phase** (compute, then exchange) vs **overlap**
//!   (per-plane non-blocking puts, thesis §4.3.3.1);
//! * execution: pure UPC (process/pthread/PSHM backends) vs **hierarchical
//!   UPC × sub-threads** (OpenMP / Cilk++ / thread-pool profiles);
//! * [`ComputeMode::Execute`] runs the real butterflies and verifies
//!   checksums; [`ComputeMode::Model`] charges identical virtual time
//!   without touching data (for class-B figure regeneration on a laptop).

mod ftcore;
mod grid;
mod kernel;
mod mpi_ft;
mod upc_ft;

pub use grid::{seq_checksums, FtClass, Grid};
pub use kernel::{dft_reference, Complex, Direction, FftPlan};
pub use mpi_ft::run_ft_mpi;
pub use upc_ft::{run_ft_upc, ComputeMode, ExchangeKind, FtConfig, FtResult, SubthreadSpec};
