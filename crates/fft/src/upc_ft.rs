//! Distributed NAS FT over the UPC runtime: 1-D slab decomposition,
//! split-phase and overlapped exchanges, pure and hierarchical execution.

use std::sync::Arc;

use hupc_sim::{time, SimCell, Time};
use hupc_subthreads::{SubPool, SubthreadModel};
use hupc_topo::{BindPolicy, MachineSpec};
use hupc_upc::{
    Backend, Conduit, GasnetConfig, Handle, SharedArray, ThreadSafety, Upc, UpcConfig, UpcJob,
};

use crate::ftcore::{
    checksum_local, data_evolve, data_fft2d, data_fftz, init_data, pack_fwd_block,
    pack_inv_block, unpack_forward_with, unpack_inverse_with, Charges, Data, Layout, FFT_EFF,
    PACK_BW,
};
use crate::grid::FtClass;
use crate::kernel::Direction;

/// Exchange schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExchangeKind {
    /// Compute everything, then exchange with synchronous `upc_memput`
    /// calls, one at a time (the Fig 3.4(a) blocking pattern).
    SplitPhaseBlocking,
    /// Compute everything, then issue all `bupc_memput_async` puts and
    /// drain (the bulk-synchronous pattern the thesis calls split-phase).
    SplitPhase,
    /// Issue non-blocking puts per plane as soon as it is computed
    /// (Bell et al.'s overlap algorithm, thesis §4.3.3.1).
    Overlap,
    /// Stage every per-destination slot locally and hand the whole
    /// transpose to the hierarchical collective layer: intra-node slots
    /// move over shared memory, remote slots are coalesced into one
    /// message per destination *node* (`hupc-coll` all-to-all).
    Hierarchical,
}

impl ExchangeKind {
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeKind::SplitPhaseBlocking => "split-phase (blocking)",
            ExchangeKind::SplitPhase => "split-phase",
            ExchangeKind::Overlap => "overlap",
            ExchangeKind::Hierarchical => "hierarchical (coalesced)",
        }
    }
}

/// Whether to run the real butterflies or only charge their time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeMode {
    /// Real data, real FFTs, verified checksums.
    Execute,
    /// Cost-only: identical virtual-time charges, no arrays (class B fits
    /// in laptop memory this way).
    Model,
}

/// Hierarchical execution: sub-threads per UPC thread.
#[derive(Clone, Copy, Debug)]
pub struct SubthreadSpec {
    pub n: usize,
    pub model: SubthreadModel,
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct FtConfig {
    pub class: FtClass,
    pub machine: MachineSpec,
    pub threads: usize,
    pub nodes_used: usize,
    pub conduit: Conduit,
    pub backend: Backend,
    pub bind: BindPolicy,
    pub exchange: ExchangeKind,
    pub subthreads: Option<SubthreadSpec>,
    pub mode: ComputeMode,
    /// Override the class' iteration count (shorter figure runs).
    pub iters_override: Option<usize>,
    /// Override the runtime software-overhead constants (the Fig 3.4
    /// "+cast" manual optimization zeroes the intra-node per-call costs).
    pub overheads: Option<hupc_upc::Overheads>,
    /// Optional deterministic fault plan applied to the network.
    pub fault: Option<hupc_upc::FaultPlan>,
}

impl FtConfig {
    /// Small executable config for tests.
    pub fn test_custom(
        nx: usize,
        ny: usize,
        nz: usize,
        iters: usize,
        threads: usize,
        nodes: usize,
    ) -> Self {
        FtConfig {
            class: FtClass::Custom { nx, ny, nz, iters },
            machine: MachineSpec::small_test(nodes),
            threads,
            nodes_used: nodes,
            conduit: Conduit::ib_qdr(),
            backend: Backend::processes_pshm(),
            bind: BindPolicy::PackedCores,
            exchange: ExchangeKind::SplitPhase,
            subthreads: None,
            mode: ComputeMode::Execute,
            iters_override: None,
            overheads: None,
            fault: None,
        }
    }

    pub(crate) fn iters(&self) -> usize {
        self.iters_override.unwrap_or_else(|| self.class.iters())
    }
}

/// Per-phase virtual time and results.
#[derive(Clone, Debug, Default)]
pub struct FtResult {
    pub total_seconds: f64,
    /// All-to-all exchange time, including waits and the closing barrier.
    pub comm_seconds: f64,
    /// Local 2-D FFT time (x+y passes).
    pub fft2d_seconds: f64,
    /// Third-dimension FFT time.
    pub fft1d_seconds: f64,
    /// Pack/unpack (local transpose) time.
    pub transpose_seconds: f64,
    pub evolve_seconds: f64,
    /// Per-iteration checksums (empty in `Model` mode).
    pub checksums: Vec<(f64, f64)>,
    /// Modeled Gflop/s over the whole run.
    pub gflops: f64,
}

#[derive(Default, Clone, Copy)]
pub(crate) struct Phases {
    pub fft2d: Time,
    pub fft1d: Time,
    pub transpose: Time,
    pub evolve: Time,
    pub comm: Time,
}

/// Run one FT experiment on the UPC runtime.
pub fn run_ft_upc(cfg: FtConfig) -> FtResult {
    let g = cfg.class.grid();
    let l = Layout::new(g, cfg.threads);
    let charges = Charges::new(&l);
    let iters = cfg.iters();

    let hier = cfg.exchange == ExchangeKind::Hierarchical;
    let slot_words = l.slot * 2;
    let chunk_words = l.chunk * 2;
    // The coalesced exchange needs room for the send staging plus the
    // per-node leader staging on top of the recv slots and the collective
    // scratch; the other schedules keep the seed's segment size.
    let segment_words = if hier && cfg.mode == ComputeMode::Execute {
        let node_size = cfg.threads / cfg.nodes_used.max(1);
        (hupc_upc::SCRATCH_WORDS + 2 * chunk_words + l.p * node_size * slot_words + 256)
            .next_power_of_two()
            .max(1 << 10)
    } else {
        1 << 10
    };

    let job = UpcJob::new(UpcConfig {
        gasnet: GasnetConfig {
            machine: cfg.machine.clone(),
            n_threads: cfg.threads,
            nodes_used: cfg.nodes_used,
            bind: cfg.bind,
            backend: cfg.backend,
            conduit: cfg.conduit.clone(),
            segment_words,
            overheads: cfg.overheads,
            fault: cfg.fault.clone(),
            retry: Default::default(),
            barrier_timeout: None,
        },
        safety: ThreadSafety::Multiple,
    });
    // The exchange buffer is the only PGAS-resident array: per-thread, one
    // slot per peer. Model mode allocates nothing.
    let recv: Option<SharedArray<[f64; 2]>> = match cfg.mode {
        ComputeMode::Execute => Some(job.alloc_shared::<[f64; 2]>(l.chunk * l.p, l.chunk)),
        ComputeMode::Model => None,
    };
    // The hierarchical schedule packs into a PGAS send staging first, then
    // lets the collective layer coalesce it per destination node.
    let send: Option<SharedArray<[f64; 2]>> = match (cfg.mode, hier) {
        (ComputeMode::Execute, true) => Some(job.alloc_shared::<[f64; 2]>(l.chunk * l.p, l.chunk)),
        _ => None,
    };
    // Checksum/stat reductions (and the coalesced exchange when selected)
    // route through the hierarchical collective layer.
    let mut domain = hupc_coll::CollDomain::for_job(&job, hupc_coll::CollPlan::Auto);
    if hier && cfg.mode == ComputeMode::Execute {
        domain = domain.reserve_exchange(&job, slot_words);
    }
    domain.install(&job);

    let out: Arc<SimCell<FtResult>> = Arc::new(SimCell::default());
    let out2 = Arc::clone(&out);
    let cfg = Arc::new(cfg);
    let cfg2 = Arc::clone(&cfg);

    job.run(move |upc| {
        let me = upc.mythread();
        let mut data = match cfg2.mode {
            ComputeMode::Execute => Some(init_data(&g, &l, me)),
            ComputeMode::Model => None,
        };
        let pool = cfg2.subthreads.map(|s| SubPool::spawn(&upc, s.n, s.model));
        let mut ph = Phases::default();
        let mut checksums: Vec<(f64, f64)> = Vec::new();

        upc.barrier();
        let t0 = upc.now();

        // Forward 3-D FFT: 2-D local passes, exchange, z pass.
        run_fft2d(&upc, &l, &charges, pool.as_ref(), data.as_mut(), Direction::Forward, &mut ph);
        run_exchange(&upc, &cfg2, &l, recv.as_ref(), send.as_ref(), data.as_mut(), true, pool.as_ref(), &mut ph);
        run_unpack(&upc, &l, recv.as_ref(), data.as_mut(), true, pool.as_ref(), &mut ph);
        run_fftz(&upc, &l, &charges, pool.as_ref(), data.as_mut(), Direction::Forward, &mut ph);
        if let Some(d) = data.as_mut() {
            d.u0.copy_from_slice(&d.f);
        }

        for t in 1..=iters {
            run_evolve(&upc, &l, pool.as_ref(), data.as_mut(), me, t, &mut ph);
            run_fftz(&upc, &l, &charges, pool.as_ref(), data.as_mut(), Direction::Inverse, &mut ph);
            run_exchange(&upc, &cfg2, &l, recv.as_ref(), send.as_ref(), data.as_mut(), false, pool.as_ref(), &mut ph);
            run_unpack(&upc, &l, recv.as_ref(), data.as_mut(), false, pool.as_ref(), &mut ph);
            run_fft2d(&upc, &l, &charges, pool.as_ref(), data.as_mut(), Direction::Inverse, &mut ph);
            let (re, im) = data
                .as_ref()
                .map(|d| checksum_local(d, &l, &g, me))
                .unwrap_or((0.0, 0.0));
            let re = upc.allreduce_sum_f64(re);
            let im = upc.allreduce_sum_f64(im);
            checksums.push((re, im));
        }
        let total = upc.now() - t0;
        if let Some(p) = pool {
            p.shutdown(upc.ctx());
        }

        // Aggregate phase maxima.
        let total = upc.allreduce_max_u64(total);
        let comm = upc.allreduce_max_u64(ph.comm);
        let fft2d = upc.allreduce_max_u64(ph.fft2d);
        let fft1d = upc.allreduce_max_u64(ph.fft1d);
        let transpose = upc.allreduce_max_u64(ph.transpose);
        let evolve_t = upc.allreduce_max_u64(ph.evolve);
        if me == 0 {
            let secs = time::as_secs_f64(total);
            let one_fft = 5.0 * g.total() as f64 * (g.total() as f64).log2();
            out2.with_mut(|r| {
                *r = FtResult {
                    total_seconds: secs,
                    comm_seconds: time::as_secs_f64(comm),
                    fft2d_seconds: time::as_secs_f64(fft2d),
                    fft1d_seconds: time::as_secs_f64(fft1d),
                    transpose_seconds: time::as_secs_f64(transpose),
                    evolve_seconds: time::as_secs_f64(evolve_t),
                    checksums: if cfg2.mode == ComputeMode::Execute {
                        checksums.clone()
                    } else {
                        Vec::new()
                    },
                    gflops: one_fft * (iters + 1) as f64 / secs / 1e9,
                }
            });
        }
    });
    Arc::try_unwrap(out).expect("result still shared").into_inner()
}

/// Charge `planes` plane-units of compute, through the pool when present.
fn charge_planes(upc: &Upc<'_>, pool: Option<&SubPool>, planes: usize, flops_per_plane: f64) {
    match pool {
        None => upc.compute_flops(flops_per_plane * planes as f64, FFT_EFF),
        Some(p) => {
            p.parallel_for(upc.ctx(), planes, move |w, range| {
                if !range.is_empty() {
                    w.compute_flops(flops_per_plane * range.len() as f64, FFT_EFF);
                }
            });
        }
    }
}

/// Charge a byte-sweep (pack/evolve style), per-core, pool-aware.
fn charge_sweep(upc: &Upc<'_>, pool: Option<&SubPool>, bytes: f64) {
    match pool {
        None => upc.compute(time::from_secs_f64(bytes / PACK_BW)),
        Some(p) => {
            let n = p.size();
            p.parallel_for(upc.ctx(), n, move |w, range| {
                if !range.is_empty() {
                    w.compute(time::from_secs_f64(
                        bytes / PACK_BW / n as f64 * range.len() as f64,
                    ));
                }
            });
        }
    }
}

fn run_fft2d(
    upc: &Upc<'_>,
    l: &Layout,
    charges: &Charges,
    pool: Option<&SubPool>,
    data: Option<&mut Data>,
    dir: Direction,
    ph: &mut Phases,
) {
    let t0 = upc.now();
    #[cfg(feature = "trace")]
    upc.ctx().trace_emit(
        hupc_trace::EventKind::SpanBegin,
        hupc_trace::span::FT_COMPUTE,
        l.nzp as u64,
    );
    if let Some(d) = data {
        data_fft2d(d, l, dir);
    }
    charge_planes(upc, pool, l.nzp, charges.plane2d);
    let dt = upc.now() - t0;
    #[cfg(feature = "trace")]
    {
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::SpanEnd, hupc_trace::span::FT_COMPUTE, dt);
        upc.trace_observe("ft.compute_ns", dt);
    }
    ph.fft2d += dt;
}

fn run_fftz(
    upc: &Upc<'_>,
    l: &Layout,
    charges: &Charges,
    pool: Option<&SubPool>,
    data: Option<&mut Data>,
    dir: Direction,
    ph: &mut Phases,
) {
    let t0 = upc.now();
    #[cfg(feature = "trace")]
    upc.ctx().trace_emit(
        hupc_trace::EventKind::SpanBegin,
        hupc_trace::span::FT_COMPUTE,
        l.nyp as u64,
    );
    if let Some(d) = data {
        data_fftz(d, l, dir);
    }
    charge_planes(upc, pool, l.nyp, charges.planez);
    let dt = upc.now() - t0;
    #[cfg(feature = "trace")]
    {
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::SpanEnd, hupc_trace::span::FT_COMPUTE, dt);
        upc.trace_observe("ft.compute_ns", dt);
    }
    ph.fft1d += dt;
}

fn run_evolve(
    upc: &Upc<'_>,
    l: &Layout,
    pool: Option<&SubPool>,
    data: Option<&mut Data>,
    me: usize,
    t: usize,
    ph: &mut Phases,
) {
    let t0 = upc.now();
    #[cfg(feature = "trace")]
    upc.ctx().trace_emit(
        hupc_trace::EventKind::SpanBegin,
        hupc_trace::span::FT_EVOLVE,
        t as u64,
    );
    if let Some(d) = data {
        data_evolve(d, l, me, t);
    }
    charge_sweep(upc, pool, l.chunk as f64 * 32.0);
    let dt = upc.now() - t0;
    #[cfg(feature = "trace")]
    upc.ctx()
        .trace_emit(hupc_trace::EventKind::SpanEnd, hupc_trace::span::FT_EVOLVE, dt);
    ph.evolve += dt;
}

/// The global exchange: pack per-destination blocks, put them, drain.
#[allow(clippy::too_many_arguments)]
fn run_exchange(
    upc: &Upc<'_>,
    cfg: &FtConfig,
    l: &Layout,
    recv: Option<&SharedArray<[f64; 2]>>,
    send: Option<&SharedArray<[f64; 2]>>,
    data: Option<&mut Data>,
    forward: bool,
    pool: Option<&SubPool>,
    ph: &mut Phases,
) {
    let me = upc.mythread();
    let p = l.p;
    let planes = if forward { l.nzp } else { l.nyp };
    let sub_elems = l.slot / planes;
    let t0 = upc.now();
    #[cfg(feature = "trace")]
    upc.ctx().trace_emit(
        hupc_trace::EventKind::SpanBegin,
        hupc_trace::span::FT_EXCHANGE,
        forward as u64,
    );
    let data = data.map(|d| &*d);

    let mut handles: Vec<Handle> = Vec::new();
    match cfg.exchange {
        ExchangeKind::Overlap => {
            for pl in 0..planes {
                charge_sweep(upc, pool, sub_elems as f64 * p as f64 * 32.0);
                for step in 0..p {
                    let dest = (me + step) % p;
                    if let Some(h) =
                        put_block(upc, cfg, l, recv, data, forward, pl, dest, sub_elems, false)
                    {
                        handles.push(h);
                    }
                }
            }
        }
        ExchangeKind::SplitPhase | ExchangeKind::SplitPhaseBlocking => {
            let blocking = cfg.exchange == ExchangeKind::SplitPhaseBlocking;
            charge_sweep(upc, pool, l.chunk as f64 * 32.0);
            for step in 0..p {
                let dest = (me + step) % p;
                for pl in 0..planes {
                    if let Some(h) =
                        put_block(upc, cfg, l, recv, data, forward, pl, dest, sub_elems, blocking)
                    {
                        handles.push(h);
                    }
                }
            }
        }
        ExchangeKind::Hierarchical => {
            charge_sweep(upc, pool, l.chunk as f64 * 32.0);
            let slot_words = l.slot * 2;
            let block_words = sub_elems * 2;
            if let (Some(d), Some(s), Some(r)) = (data, send, recv) {
                // Pack every per-destination slot into the local staging,
                // then hand the whole transpose to the collective layer.
                s.with_local_words(upc, |w| {
                    for dest in 0..p {
                        for pl in 0..planes {
                            let o = dest * slot_words + pl * block_words;
                            let blk = &mut w[o..o + block_words];
                            if forward {
                                pack_fwd_block(d, l, pl, dest, blk);
                            } else {
                                pack_inv_block(d, l, pl, dest, blk);
                            }
                        }
                    }
                });
                upc.all_exchange_words(s.word_offset(), r.word_offset(), slot_words, false);
            } else {
                // Model mode: charge the coalesced traffic — one message
                // per destination *node* (all of my slots for that node's
                // threads), memcpy-scale copies for intra-node slots, and
                // a local scatter of the received staging.
                let gn = upc.gasnet();
                let my_node = gn.thread_node(me);
                let mut local_slots = 0usize;
                let mut nodes: Vec<(usize, usize)> = Vec::new();
                for t in 0..p {
                    let n = gn.thread_node(t);
                    if n == my_node {
                        local_slots += 1;
                    } else if let Some(e) = nodes.iter_mut().find(|(h, _)| gn.thread_node(*h) == n)
                    {
                        e.1 += 1;
                    } else {
                        nodes.push((t, 1));
                    }
                }
                upc.ctx().advance_lazy(time::from_secs_f64(
                    (local_slots * slot_words) as f64 * 8.0 * 2.0 / PACK_BW,
                ));
                for (head, n_slots) in nodes {
                    handles.push(gn.transfer_nb(upc.ctx(), me, head, n_slots * slot_words * 8));
                }
                upc.ctx().advance_lazy(time::from_secs_f64(
                    (l.chunk * 2) as f64 * 8.0 * 2.0 / PACK_BW,
                ));
            }
        }
    }
    for h in handles {
        upc.wait_sync(h);
    }
    upc.barrier();
    let dt = upc.now() - t0;
    #[cfg(feature = "trace")]
    {
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::SpanEnd, hupc_trace::span::FT_EXCHANGE, dt);
        upc.trace_observe("ft.exchange_ns", dt);
    }
    ph.comm += dt;
}

/// Put one plane's sub-block for `dest`; returns a handle for nb puts.
#[allow(clippy::too_many_arguments)]
fn put_block(
    upc: &Upc<'_>,
    cfg: &FtConfig,
    l: &Layout,
    recv: Option<&SharedArray<[f64; 2]>>,
    data: Option<&Data>,
    forward: bool,
    pl: usize,
    dest: usize,
    sub_elems: usize,
    blocking: bool,
) -> Option<Handle> {
    let me = upc.mythread();
    let slot_words = l.slot * 2;
    let block_words = sub_elems * 2;
    let dst_off = recv
        .map(|r| r.word_offset() + me * slot_words + pl * block_words)
        .unwrap_or(0);

    match (cfg.mode, data) {
        (ComputeMode::Model, _) | (_, None) => {
            if dest == me {
                // Self-block: a local memcpy-scale cost. Lazy — folds into
                // the next phase's kernel interaction.
                upc.ctx().advance_lazy(time::from_secs_f64(
                    block_words as f64 * 8.0 * 2.0 / PACK_BW,
                ));
                return None;
            }
            let h = upc
                .gasnet()
                .transfer_nb(upc.ctx(), me, dest, block_words * 8);
            if blocking {
                upc.wait_sync(h);
                None
            } else {
                Some(h)
            }
        }
        (ComputeMode::Execute, Some(d)) => {
            // Zero-copy: pack straight into the destination slot (charged
            // exactly as the old staging-Vec memput of `block_words` words).
            let pack = |words: &mut [u64]| {
                if forward {
                    pack_fwd_block(d, l, pl, dest, words);
                } else {
                    pack_inv_block(d, l, pl, dest, words);
                }
            };
            if blocking {
                upc.memput_with(dest, dst_off, block_words, pack);
                None
            } else {
                Some(upc.memput_nb_with(dest, dst_off, block_words, pack).1)
            }
        }
    }
}

/// Unpack the received slots into the target layout.
fn run_unpack(
    upc: &Upc<'_>,
    l: &Layout,
    recv: Option<&SharedArray<[f64; 2]>>,
    data: Option<&mut Data>,
    forward: bool,
    pool: Option<&SubPool>,
    ph: &mut Phases,
) {
    let t0 = upc.now();
    if let (Some(r), Some(d)) = (recv, data) {
        r.with_local_words(upc, |w| {
            if forward {
                unpack_forward_with(d, l, |src| &w[src * l.slot * 2..(src + 1) * l.slot * 2]);
            } else {
                unpack_inverse_with(d, l, |src| &w[src * l.slot * 2..(src + 1) * l.slot * 2]);
            }
        });
    }
    charge_sweep(upc, pool, l.chunk as f64 * 32.0);
    ph.transpose += upc.now() - t0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::seq_checksums;
    use crate::kernel::Complex;

    fn checksums_close(a: &[(f64, f64)], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (i, ((re, im), c)) in a.iter().zip(b).enumerate() {
            let scale = c.re.abs().max(c.im.abs()).max(1.0);
            assert!(
                (re - c.re).abs() / scale < 1e-9 && (im - c.im).abs() / scale < 1e-9,
                "iter {i}: ({re}, {im}) vs ({}, {})",
                c.re,
                c.im
            );
        }
    }

    #[test]
    fn split_phase_matches_sequential_reference() {
        let class = FtClass::Custom { nx: 16, ny: 8, nz: 8, iters: 3 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(16, 8, 8, 3, 4, 2);
        cfg.class = class;
        let r = run_ft_upc(cfg);
        checksums_close(&r.checksums, &want);
        assert!(r.total_seconds > 0.0);
        assert!(r.comm_seconds > 0.0);
    }

    #[test]
    fn overlap_matches_split_phase() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 16, iters: 2 };
        let mut a = FtConfig::test_custom(8, 8, 16, 2, 4, 2);
        a.class = class;
        let mut b = a.clone();
        b.exchange = ExchangeKind::Overlap;
        let ra = run_ft_upc(a);
        let rb = run_ft_upc(b);
        assert_eq!(ra.checksums.len(), rb.checksums.len());
        for ((r1, i1), (r2, i2)) in ra.checksums.iter().zip(&rb.checksums) {
            assert!((r1 - r2).abs() < 1e-9 && (i1 - i2).abs() < 1e-9);
        }
    }

    #[test]
    fn thread_count_does_not_change_checksums() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 2 };
        let want = seq_checksums(class);
        for threads in [1usize, 2, 4] {
            let nodes = threads.min(2);
            let mut cfg = FtConfig::test_custom(8, 8, 8, 2, threads, nodes);
            cfg.class = class;
            let r = run_ft_upc(cfg);
            checksums_close(&r.checksums, &want);
        }
    }

    #[test]
    fn hybrid_subthreads_match_pure() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 2 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(8, 8, 8, 2, 2, 1);
        cfg.class = class;
        cfg.subthreads = Some(SubthreadSpec {
            n: 2,
            model: SubthreadModel::OpenMp,
        });
        let r = run_ft_upc(cfg);
        checksums_close(&r.checksums, &want);
    }

    #[test]
    fn hierarchical_exchange_matches_sequential_reference() {
        let class = FtClass::Custom { nx: 16, ny: 8, nz: 8, iters: 3 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(16, 8, 8, 3, 4, 2);
        cfg.class = class;
        cfg.exchange = ExchangeKind::Hierarchical;
        let r = run_ft_upc(cfg);
        checksums_close(&r.checksums, &want);
        assert!(r.comm_seconds > 0.0);
    }

    #[test]
    fn hierarchical_model_mode_is_competitive_with_split_phase() {
        let mut split = FtConfig::test_custom(16, 16, 16, 2, 4, 2);
        split.mode = ComputeMode::Model;
        let mut hier = split.clone();
        hier.exchange = ExchangeKind::Hierarchical;
        let rs = run_ft_upc(split);
        let rh = run_ft_upc(hier);
        assert!(rh.checksums.is_empty());
        assert!(
            rh.comm_seconds <= rs.comm_seconds * 1.5,
            "hier {} vs split {}",
            rh.comm_seconds,
            rs.comm_seconds
        );
    }

    #[test]
    fn model_mode_charges_similar_time_without_data() {
        let exec = FtConfig::test_custom(16, 16, 16, 2, 4, 2);
        let mut model = exec.clone();
        model.mode = ComputeMode::Model;
        let re = run_ft_upc(exec);
        let rm = run_ft_upc(model);
        assert!(rm.checksums.is_empty());
        let ratio = rm.total_seconds / re.total_seconds;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pthread_backend_runs() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(8, 8, 8, 1, 4, 2);
        cfg.class = class;
        cfg.backend = Backend::pthreads(2);
        let r = run_ft_upc(cfg);
        checksums_close(&r.checksums, &want);
    }

    #[test]
    fn overlap_is_not_slower_than_split_phase() {
        let mut a = FtConfig::test_custom(16, 16, 16, 3, 4, 2);
        a.mode = ComputeMode::Model;
        let mut b = a.clone();
        b.exchange = ExchangeKind::Overlap;
        let ra = run_ft_upc(a);
        let rb = run_ft_upc(b);
        assert!(
            rb.total_seconds <= ra.total_seconds * 1.05,
            "overlap {} vs split {}",
            rb.total_seconds,
            ra.total_seconds
        );
    }
}
