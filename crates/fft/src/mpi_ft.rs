//! The MPI baseline FT: identical numerics, two-sided pairwise-exchange
//! all-to-all (the Fortran-MPI comparator of thesis Figs 4.5/4.6).

use std::sync::Arc;

use hupc_mpi::{Mpi, MpiJob};
use hupc_sim::{time, SimCell, Time};
use hupc_upc::GasnetConfig;

use crate::ftcore::{
    checksum_local, data_evolve, data_fft2d, data_fftz, init_data, pack_fwd_block,
    pack_inv_block, unpack_forward_with, unpack_inverse_with, Charges, Data, Layout, FFT_EFF,
    PACK_BW,
};
use crate::kernel::Direction;
use crate::upc_ft::{ComputeMode, FtConfig, FtResult};

/// Run the FT benchmark on the MPI substrate. `cfg.exchange`, `cfg.backend`
/// and `cfg.subthreads` are ignored — MPI runs one process per core and the
/// library's collective is split-phase by construction.
pub fn run_ft_mpi(cfg: FtConfig) -> FtResult {
    let g = cfg.class.grid();
    let l = Layout::new(g, cfg.threads);
    let charges = Charges::new(&l);
    let iters = cfg.iters();
    let mode = cfg.mode;

    let job = MpiJob::new(GasnetConfig {
        machine: cfg.machine.clone(),
        n_threads: cfg.threads,
        nodes_used: cfg.nodes_used,
        bind: hupc_upc::BindPolicy::PackedCores,
        // OpenMPI's `sm` BTL: shared-memory transport between co-located ranks.
        backend: hupc_upc::Backend::processes_pshm(),
        conduit: cfg.conduit.clone(),
        segment_words: 1 << 10,
        overheads: None,
        fault: None,
        retry: Default::default(),
        barrier_timeout: None,
    });

    let out: Arc<SimCell<FtResult>> = Arc::new(SimCell::default());
    let out2 = Arc::clone(&out);

    job.run(move |mpi| {
        let me = mpi.rank();
        let mut data = match mode {
            ComputeMode::Execute => Some(init_data(&g, &l, me)),
            ComputeMode::Model => None,
        };
        let mut comm: Time = 0;
        let mut fft2d: Time = 0;
        let mut fft1d: Time = 0;
        let mut transpose: Time = 0;
        let mut evolve_t: Time = 0;
        let mut checksums: Vec<(f64, f64)> = Vec::new();

        mpi.barrier();
        let t0 = mpi.now();

        // Forward 3-D FFT.
        fft2d += timed(&mpi, |m| {
            if let Some(d) = data.as_mut() {
                data_fft2d(d, &l, Direction::Forward);
            }
            charge_flops(m, l.nzp as f64 * charges.plane2d);
        });
        transpose += timed(&mpi, |m| charge_sweep(m, l.chunk as f64 * 32.0)); // pack
        comm += timed(&mpi, |m| exchange(m, &l, data.as_mut(), true, mode));
        transpose += timed(&mpi, |m| charge_sweep(m, l.chunk as f64 * 32.0)); // unpack
        fft1d += timed(&mpi, |m| {
            if let Some(d) = data.as_mut() {
                data_fftz(d, &l, Direction::Forward);
            }
            charge_flops(m, l.nyp as f64 * charges.planez);
        });
        if let Some(d) = data.as_mut() {
            d.u0.copy_from_slice(&d.f);
        }

        for t in 1..=iters {
            evolve_t += timed(&mpi, |m| {
                if let Some(d) = data.as_mut() {
                    data_evolve(d, &l, me, t);
                }
                charge_sweep(m, l.chunk as f64 * 32.0);
            });
            fft1d += timed(&mpi, |m| {
                if let Some(d) = data.as_mut() {
                    data_fftz(d, &l, Direction::Inverse);
                }
                charge_flops(m, l.nyp as f64 * charges.planez);
            });
            transpose += timed(&mpi, |m| charge_sweep(m, l.chunk as f64 * 32.0)); // pack
            comm += timed(&mpi, |m| exchange(m, &l, data.as_mut(), false, mode));
            transpose += timed(&mpi, |m| charge_sweep(m, l.chunk as f64 * 32.0)); // unpack
            fft2d += timed(&mpi, |m| {
                if let Some(d) = data.as_mut() {
                    data_fft2d(d, &l, Direction::Inverse);
                }
                charge_flops(m, l.nzp as f64 * charges.plane2d);
            });
            let (re, im) = data
                .as_ref()
                .map(|d| checksum_local(d, &l, &g, me))
                .unwrap_or((0.0, 0.0));
            checksums.push((mpi.allreduce_sum_f64(re), mpi.allreduce_sum_f64(im)));
        }
        let total = mpi.now() - t0;

        // Aggregate maxima via scalar reductions.
        let maxes: Vec<u64> = [total, comm, fft2d, fft1d, transpose, evolve_t]
            .into_iter()
            .map(|v| reduce_max(&mpi, v))
            .collect();
        if me == 0 {
            let secs = time::as_secs_f64(maxes[0]);
            let one_fft = 5.0 * g.total() as f64 * (g.total() as f64).log2();
            out2.with_mut(|r| {
                *r = FtResult {
                    total_seconds: secs,
                    comm_seconds: time::as_secs_f64(maxes[1]),
                    fft2d_seconds: time::as_secs_f64(maxes[2]),
                    fft1d_seconds: time::as_secs_f64(maxes[3]),
                    transpose_seconds: time::as_secs_f64(maxes[4]),
                    evolve_seconds: time::as_secs_f64(maxes[5]),
                    checksums: if mode == ComputeMode::Execute {
                        checksums.clone()
                    } else {
                        Vec::new()
                    },
                    gflops: one_fft * (iters + 1) as f64 / secs / 1e9,
                }
            });
        }
    });
    Arc::try_unwrap(out).expect("result still shared").into_inner()
}

fn timed(mpi: &Mpi<'_>, f: impl FnOnce(&Mpi<'_>)) -> Time {
    let t0 = mpi.now();
    f(mpi);
    mpi.now() - t0
}

fn charge_flops(mpi: &Mpi<'_>, flops: f64) {
    let gn = Arc::clone(mpi.gasnet());
    let pu = gn.thread_pu(mpi.rank());
    gn.compute_flops_on(mpi.ctx(), pu, flops, FFT_EFF);
}

fn charge_sweep(mpi: &Mpi<'_>, bytes: f64) {
    let gn = Arc::clone(mpi.gasnet());
    let pu = gn.thread_pu(mpi.rank());
    gn.compute_on(mpi.ctx(), pu, time::from_secs_f64(bytes / PACK_BW));
}

/// max-reduce one u64 via the f64 allreduce (exact below 2⁵³ ns ≈ 104 days).
fn reduce_max(mpi: &Mpi<'_>, v: Time) -> Time {
    let p = mpi.size();
    if p == 1 {
        return v;
    }
    // gather to 0 with tags, max, broadcast
    if mpi.rank() == 0 {
        let mut acc = v;
        for src in 1..p {
            let d = mpi.recv(src, u64::MAX - 2);
            acc = acc.max(d[0]);
        }
        for dst in 1..p {
            mpi.send(dst, u64::MAX - 3, &[acc]);
        }
        acc
    } else {
        mpi.send(0, u64::MAX - 2, &[v]);
        mpi.recv(0, u64::MAX - 3)[0]
    }
}

/// The all-to-all: pack per-destination slots, collective exchange, unpack.
fn exchange(mpi: &Mpi<'_>, l: &Layout, data: Option<&mut Data>, forward: bool, mode: ComputeMode) {
    let p = l.p;
    match (mode, data) {
        (ComputeMode::Model, _) | (_, None) => {
            mpi.alltoall_sized(l.slot * 16);
        }
        (ComputeMode::Execute, Some(d)) => {
            let planes = if forward { l.nzp } else { l.nyp };
            let block_words = l.slot / planes * 2;
            let blocks: Vec<Vec<u64>> = (0..p)
                .map(|dest| {
                    let mut slot = vec![0u64; l.slot * 2];
                    for pl in 0..planes {
                        let w = &mut slot[pl * block_words..(pl + 1) * block_words];
                        if forward {
                            pack_fwd_block(d, l, pl, dest, w);
                        } else {
                            pack_inv_block(d, l, pl, dest, w);
                        }
                    }
                    slot
                })
                .collect();
            let received = mpi.alltoall(&blocks);
            if forward {
                unpack_forward_with(d, l, |src| &received[src][..]);
            } else {
                unpack_inverse_with(d, l, |src| &received[src][..]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{seq_checksums, FtClass};

    #[test]
    fn mpi_matches_sequential_reference() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 16, iters: 2 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(8, 8, 16, 2, 4, 2);
        cfg.class = class;
        let r = run_ft_mpi(cfg);
        assert_eq!(r.checksums.len(), want.len());
        for ((re, im), c) in r.checksums.iter().zip(&want) {
            let scale = c.re.abs().max(1.0);
            assert!((re - c.re).abs() / scale < 1e-9);
            assert!((im - c.im).abs() / scale < 1e-9);
        }
    }

    #[test]
    fn mpi_matches_upc_checksums() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 2 };
        let mut cfg = FtConfig::test_custom(8, 8, 8, 2, 2, 2);
        cfg.class = class;
        let upc = crate::upc_ft::run_ft_upc(cfg.clone());
        let mpi = run_ft_mpi(cfg);
        for ((a, b), (c, d)) in upc.checksums.iter().zip(&mpi.checksums) {
            assert!((a - c).abs() < 1e-9 && (b - d).abs() < 1e-9);
        }
    }

    #[test]
    fn mpi_model_mode_runs_without_data() {
        let mut cfg = FtConfig::test_custom(16, 16, 16, 2, 4, 2);
        cfg.mode = ComputeMode::Model;
        let r = run_ft_mpi(cfg);
        assert!(r.checksums.is_empty());
        assert!(r.total_seconds > 0.0 && r.comm_seconds > 0.0);
    }

    #[test]
    fn single_rank_degenerates_cleanly() {
        let class = FtClass::Custom { nx: 8, ny: 8, nz: 8, iters: 1 };
        let want = seq_checksums(class);
        let mut cfg = FtConfig::test_custom(8, 8, 8, 1, 1, 1);
        cfg.class = class;
        let r = run_ft_mpi(cfg);
        assert!((r.checksums[0].0 - want[0].re).abs() < 1e-9);
    }
}
