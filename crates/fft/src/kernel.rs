//! Complex double-precision FFT, written from scratch (the FFTW 3.2.2
//! stand-in). Iterative radix-2 decimation-in-time with precomputed twiddle
//! tables; power-of-two lengths only — all NAS FT grid dimensions are
//! powers of two.

/// A complex number as `[re, im]` (bit-compatible with the PGAS element
/// `[f64; 2]`).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Pack into a PGAS element.
    #[inline]
    pub fn to_pair(self) -> [f64; 2] {
        [self.re, self.im]
    }

    /// Unpack from a PGAS element.
    #[inline]
    pub fn from_pair(p: [f64; 2]) -> Complex {
        Complex::new(p[0], p[1])
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Inverse,
}

/// A reusable FFT plan for one power-of-two length (twiddles + bit-reversal
/// table, computed once — the "FFTW plan" analogue).
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Twiddles for the forward direction, per stage, flattened.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two() && n >= 1, "FFT length must be 2^k, got {n}");
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // Per-stage twiddles: stage with half-size m has m factors.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1;
        while m < n {
            for j in 0..m {
                let ang = -std::f64::consts::PI * j as f64 / m as f64;
                twiddles.push(Complex::new(ang.cos(), ang.sin()));
            }
            m <<= 1;
        }
        FftPlan {
            n,
            twiddles,
            bitrev,
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place transform. The inverse is unscaled-conjugate followed by a
    /// 1/n normalization, so `inverse(forward(x)) == x`.
    ///
    /// The butterfly sweep fuses consecutive radix-2 stage pairs into
    /// radix-4 passes (with one radix-2 cleanup stage first when log₂n is
    /// odd): each 4m-block loads its four points once and applies both
    /// stages in registers, halving the passes over `data`. The arithmetic —
    /// per-element operations, operands, and order — is exactly that of the
    /// plain radix-2 code ([`FftPlan::transform_radix2`]), so results are
    /// bit-identical; only memory traffic changes.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) {
        assert_eq!(data.len(), self.n, "plan is for length {}", self.n);
        let n = self.n;
        if n == 1 {
            return;
        }
        self.pre(data, dir);
        let mut m = 1;
        let mut tw_base = 0;
        if n.trailing_zeros() % 2 == 1 {
            // Radix-2 cleanup stage (m = 1, single unit twiddle).
            self.radix2_stage(data, m, tw_base);
            tw_base += m;
            m <<= 1;
        }
        while m < n {
            // Fused stages (m, 2m). Stage-m twiddles start at tw_base, the
            // 2m ones right after: w2 = tw[tw_base+m+j], w3 = tw[tw_base+m+j+m].
            // Quarter the 4m-block into length-m slices so every inner-loop
            // access is `slice[j]` with `j < slice.len()` — no bounds checks.
            let (tw1, tw23) = self.twiddles[tw_base..tw_base + 3 * m].split_at(m);
            let (tw2, tw3) = tw23.split_at(m);
            for chunk in data.chunks_exact_mut(4 * m) {
                let (h0, h1) = chunk.split_at_mut(2 * m);
                let (q0, q1) = h0.split_at_mut(m);
                let (q2, q3) = h1.split_at_mut(m);
                for j in 0..m {
                    let w1 = tw1[j];
                    let w2 = tw2[j];
                    let w3 = tw3[j];
                    // Stage m on (a,b) and (c,d)…
                    let t0 = q1[j] * w1;
                    let u0 = q0[j];
                    let a = u0 + t0;
                    let b = u0 - t0;
                    let t1 = q3[j] * w1;
                    let u1 = q2[j];
                    let c = u1 + t1;
                    let d = u1 - t1;
                    // …then stage 2m on (a,c) and (b,d), still in registers.
                    let t2 = c * w2;
                    q0[j] = a + t2;
                    q2[j] = a - t2;
                    let t3 = d * w3;
                    q1[j] = b + t3;
                    q3[j] = b - t3;
                }
            }
            tw_base += 3 * m;
            m <<= 2;
        }
        self.post(data, dir);
    }

    /// The historical single-stage radix-2 sweep. Kept as the reference the
    /// `hostkern` benchmark and the bit-identity tests compare against.
    pub fn transform_radix2(&self, data: &mut [Complex], dir: Direction) {
        assert_eq!(data.len(), self.n, "plan is for length {}", self.n);
        let n = self.n;
        if n == 1 {
            return;
        }
        self.pre(data, dir);
        let mut m = 1;
        let mut tw_base = 0;
        while m < n {
            self.radix2_stage(data, m, tw_base);
            tw_base += m;
            m <<= 1;
        }
        self.post(data, dir);
    }

    /// One radix-2 butterfly stage of half-size `m`.
    #[inline]
    fn radix2_stage(&self, data: &mut [Complex], m: usize, tw_base: usize) {
        for k in (0..self.n).step_by(2 * m) {
            for j in 0..m {
                let w = self.twiddles[tw_base + j];
                let t = data[k + j + m] * w;
                let u = data[k + j];
                data[k + j] = u + t;
                data[k + j + m] = u - t;
            }
        }
    }

    /// Inverse conjugation + bit-reversal permutation.
    fn pre(&self, data: &mut [Complex], dir: Direction) {
        if dir == Direction::Inverse {
            for v in data.iter_mut() {
                *v = v.conj();
            }
        }
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    /// Inverse conjugate-and-scale epilogue.
    fn post(&self, data: &mut [Complex], dir: Direction) {
        if dir == Direction::Inverse {
            let s = 1.0 / self.n as f64;
            for v in data.iter_mut() {
                *v = v.conj().scale(s);
            }
        }
    }

    /// Model flop count of one transform (the standard 5·n·log₂n).
    pub fn flops(&self) -> f64 {
        5.0 * self.n as f64 * (self.n as f64).log2()
    }
}

/// Naive O(n²) DFT (test oracle).
pub fn dft_reference(input: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc = acc + x * Complex::new(ang.cos(), ang.sin());
        }
        if dir == Direction::Inverse {
            acc = acc.scale(1.0 / n as f64);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let re = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let im = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
                Complex::new(re, im)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = random_signal(n, 7);
            let want = dft_reference(&x, Direction::Forward);
            let mut got = x.clone();
            FftPlan::new(n).transform(&mut got, Direction::Forward);
            for (g, w) in got.iter().zip(&want) {
                assert!(close(*g, *w, 1e-9), "n={n}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn inverse_recovers_signal() {
        for n in [2usize, 32, 256, 1024] {
            let plan = FftPlan::new(n);
            let x = random_signal(n, n as u64);
            let mut y = x.clone();
            plan.transform(&mut y, Direction::Forward);
            plan.transform(&mut y, Direction::Inverse);
            for (a, b) in x.iter().zip(&y) {
                assert!(close(*a, *b, 1e-10), "n={n}");
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::new(1.0, 0.0);
        FftPlan::new(n).transform(&mut x, Direction::Forward);
        for v in &x {
            assert!(close(*v, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn constant_gives_impulse() {
        let n = 8;
        let mut x = vec![Complex::new(2.0, 0.0); n];
        FftPlan::new(n).transform(&mut x, Direction::Forward);
        assert!(close(x[0], Complex::new(16.0, 0.0), 1e-12));
        for v in &x[1..] {
            assert!(close(*v, Complex::ZERO, 1e-12));
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 128;
        let x = random_signal(n, 99);
        let mut y = x.clone();
        FftPlan::new(n).transform(&mut y, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let plan = FftPlan::new(n);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.transform(&mut fx, Direction::Forward);
        plan.transform(&mut fy, Direction::Forward);
        let mut xy: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        plan.transform(&mut xy, Direction::Forward);
        for i in 0..n {
            assert!(close(xy[i], fx[i] + fy[i], 1e-9));
        }
    }

    #[test]
    fn fused_radix4_is_bit_identical_to_radix2() {
        // Both even and odd log2(n), both directions: every output must be
        // the same bits, not just close — Execute-mode checksums depend on it.
        for n in [1usize, 2, 4, 8, 16, 32, 128, 1024, 2048] {
            let plan = FftPlan::new(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let x = random_signal(n, 31 + n as u64);
                let mut a = x.clone();
                let mut b = x;
                plan.transform(&mut a, dir);
                plan.transform_radix2(&mut b, dir);
                for (p, q) in a.iter().zip(&b) {
                    assert_eq!(p.re.to_bits(), q.re.to_bits(), "n={n} {dir:?}");
                    assert_eq!(p.im.to_bits(), q.im.to_bits(), "n={n} {dir:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        FftPlan::new(12);
    }

    #[test]
    fn flop_model() {
        let p = FftPlan::new(1024);
        assert_eq!(p.flops(), 5.0 * 1024.0 * 10.0);
    }
}
