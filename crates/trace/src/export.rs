//! Trace exporters: JSONL (golden-trace format) and chrome://tracing.

use crate::{span, Event, EventKind};

/// Export a merged trace as JSON Lines, one event per line.
///
/// This is the **golden-trace format**: every field is an integer or a
/// stable kind name, rendered identically on every platform, so committed
/// goldens can be compared byte-for-byte. Field order is fixed:
/// `t` (virtual time, ns), `s` (trace seq), `a` (actor), `k` (kind name),
/// `p` (payload pair).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        out.push_str(&format!(
            "{{\"t\":{},\"s\":{},\"a\":{},\"k\":\"{}\",\"p\":[{},{}]}}\n",
            e.time,
            e.seq,
            e.actor,
            e.kind.name(),
            e.a,
            e.b
        ));
    }
    out
}

/// Export a merged trace in the chrome://tracing "Trace Event" JSON format
/// (load in `chrome://tracing` or Perfetto). Spans become Begin/End pairs on
/// the emitting actor's track; everything else becomes an instant event.
/// Timestamps are virtual nanoseconds (`displayTimeUnit: "ns"`).
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for e in events {
        let (ph, name) = match e.kind {
            EventKind::SpanBegin => ("B", span::name(e.a)),
            EventKind::SpanEnd => ("E", span::name(e.a)),
            k => ("i", k.name()),
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // chrome expects microsecond `ts`; emit ns scaled into fractional µs
        // as an exact integer-thousandths string to stay float-free.
        let us = e.time / 1000;
        let frac = e.time % 1000;
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{us}.{frac:03},\"pid\":0,\"tid\":{},\
             \"args\":{{\"seq\":{},\"a\":{},\"b\":{}}}{}}}",
            e.actor,
            e.seq,
            e.a,
            e.b,
            if ph == "i" { ",\"s\":\"t\"" } else { "" }
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, TraceLevel};

    fn sample() -> Vec<Event> {
        let t = Tracer::new(TraceLevel::Full);
        t.emit(0, 0, EventKind::Schedule, 0, 0);
        t.emit(1500, 1, EventKind::SpanBegin, span::FT_COMPUTE, 0);
        t.emit(2500, 1, EventKind::SpanEnd, span::FT_COMPUTE, 0);
        t.merge()
    }

    #[test]
    fn jsonl_is_one_stable_line_per_event() {
        let s = to_jsonl(&sample());
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"t\":0,\"s\":0,\"a\":0,\"k\":\"sched\",\"p\":[0,0]}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":1500,\"s\":1,\"a\":1,\"k\":\"span_begin\",\"p\":[0,0]}"
        );
    }

    #[test]
    fn chrome_trace_pairs_spans_and_parses_shape() {
        let s = to_chrome_trace(&sample());
        assert!(s.contains("\"ph\":\"B\""), "{s}");
        assert!(s.contains("\"ph\":\"E\""), "{s}");
        assert!(s.contains("\"name\":\"ft.compute\""), "{s}");
        // 1500 ns → 1.500 µs, exactly.
        assert!(s.contains("\"ts\":1.500"), "{s}");
        assert!(s.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn jsonl_empty_trace_is_empty_string() {
        assert_eq!(to_jsonl(&[]), "");
    }
}
