//! Typed metrics keyed by topology location.
//!
//! The registry replaces ad-hoc counter fields on `SimulationStats`: any
//! layer can register a counter or histogram under a stable name plus a
//! [`Loc`] (node / thread), and the whole registry snapshots into a
//! deterministic, sorted report (BTreeMap keys — no hash-order wobble).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Topology location a metric is attributed to. `u32::MAX` means
/// "unspecified" on that axis, so process-wide metrics sort last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Loc {
    pub node: u32,
    pub thread: u32,
}

impl Loc {
    /// Process-wide (no location).
    pub fn global() -> Loc {
        Loc {
            node: u32::MAX,
            thread: u32::MAX,
        }
    }

    /// Attributed to a UPC thread on a known node.
    pub fn new(node: u32, thread: u32) -> Loc {
        Loc { node, thread }
    }

    /// Attributed to a thread whose node is unknown / irrelevant.
    pub fn thread(thread: u32) -> Loc {
        Loc {
            node: u32::MAX,
            thread,
        }
    }

    /// Attributed to a whole node.
    pub fn node(node: u32) -> Loc {
        Loc {
            node,
            thread: u32::MAX,
        }
    }

    fn render(&self) -> String {
        match (self.node, self.thread) {
            (u32::MAX, u32::MAX) => "*".to_string(),
            (u32::MAX, t) => format!("t{t}"),
            (n, u32::MAX) => format!("n{n}"),
            (n, t) => format!("n{n}/t{t}"),
        }
    }
}

/// Power-of-two-bucketed histogram: observation `v` lands in bucket
/// `bits(v)` (0 for `v == 0`), i.e. bucket `i > 0` covers `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` = number of observations with `bits(v) == i` (i ≤ 64).
    pub buckets: Vec<u64>,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; 65],
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Bucket index for a value: number of significant bits.
    pub fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Mean (integer division; metrics are integer-valued by design).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A snapshotted metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Histogram(Hist),
}

enum Metric {
    Counter(u64),
    Histogram(Hist),
}

/// Deterministic snapshot of the registry: entries sorted by (name, loc).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<(String, Loc, MetricValue)>,
}

impl MetricsSnapshot {
    /// Render as an aligned text table (one metric per line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let w = self
            .entries
            .iter()
            .map(|(n, l, _)| n.len() + 1 + l.render().len())
            .max()
            .unwrap_or(0);
        for (name, loc, v) in &self.entries {
            let key = format!("{name}@{}", loc.render());
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{key:<w$}  {c}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{key:<w$}  count={} sum={} min={} max={} mean={}\n",
                        h.count,
                        h.sum,
                        if h.count == 0 { 0 } else { h.min },
                        h.max,
                        h.mean(),
                    ));
                }
            }
        }
        out
    }

    /// Render as deterministic JSON (sorted keys, integers only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, loc, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}@{}\":", loc.render()));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                )),
            }
        }
        out.push('}');
        out
    }
}

/// Counters and histograms keyed by `(name, Loc)`. All methods take `&self`;
/// internal mutex (uncontended: actors are serialized by the engine).
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(&'static str, Loc), Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(&'static str, Loc), Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Add `v` to the counter `(name, loc)`, creating it at zero.
    /// Panics (debug) if the key is already a histogram.
    pub fn count(&self, name: &'static str, loc: Loc, v: u64) {
        let mut m = self.lock();
        match m.entry((name, loc)).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += v,
            Metric::Histogram(_) => {
                debug_assert!(false, "metric {name} is a histogram, not a counter");
            }
        }
    }

    /// Record `v` into the histogram `(name, loc)`, creating it empty.
    pub fn observe(&self, name: &'static str, loc: Loc, v: u64) {
        let mut m = self.lock();
        match m
            .entry((name, loc))
            .or_insert_with(|| Metric::Histogram(Hist::new()))
        {
            Metric::Histogram(h) => h.observe(v),
            Metric::Counter(_) => {
                debug_assert!(false, "metric {name} is a counter, not a histogram");
            }
        }
    }

    /// Current value of a counter (0 if absent or a histogram).
    pub fn counter_value(&self, name: &'static str, loc: Loc) -> u64 {
        match self.lock().get(&(name, loc)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Sum of a counter across every location it was recorded at.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.lock()
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c,
                Metric::Histogram(h) => h.count,
            })
            .sum()
    }

    /// Snapshot of a histogram (None if absent or a counter).
    pub fn histogram(&self, name: &'static str, loc: Loc) -> Option<Hist> {
        match self.lock().get(&(name, loc)) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Deterministic snapshot: sorted by (name, loc).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        MetricsSnapshot {
            entries: m
                .iter()
                .map(|((name, loc), v)| {
                    let v = match v {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
                    };
                    ((*name).to_string(), *loc, v)
                })
                .collect(),
        }
    }

    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_location() {
        let r = MetricsRegistry::new();
        r.count("puts", Loc::new(0, 1), 3);
        r.count("puts", Loc::new(0, 1), 4);
        r.count("puts", Loc::new(1, 2), 5);
        assert_eq!(r.counter_value("puts", Loc::new(0, 1)), 7);
        assert_eq!(r.counter_total("puts"), 12);
        assert_eq!(r.counter_value("puts", Loc::global()), 0);
    }

    #[test]
    fn histogram_buckets_by_bits() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(2), 2);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(u64::MAX), 64);
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            r.observe("bytes", Loc::global(), v);
        }
        let h = r.histogram("bytes", Loc::global()).unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let r = MetricsRegistry::new();
        r.count("z", Loc::global(), 1);
        r.count("a", Loc::thread(3), 2);
        r.observe("m", Loc::node(1), 9);
        let s = r.snapshot();
        let names: Vec<_> = s.entries.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        let txt = s.render_text();
        assert!(txt.contains("a@t3"), "{txt}");
        assert!(txt.contains("m@n1"), "{txt}");
        assert!(txt.contains("z@*"), "{txt}");
        let json = s.to_json();
        assert!(json.contains("\"a@t3\":2"), "{json}");
        assert!(json.contains("\"m@n1\":{\"count\":1"), "{json}");
    }
}
