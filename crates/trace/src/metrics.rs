//! Typed metrics keyed by topology location.
//!
//! The registry replaces ad-hoc counter fields on `SimulationStats`: any
//! layer can register a counter or histogram under a stable name plus a
//! [`Loc`] (node / thread), and the whole registry snapshots into a
//! deterministic, sorted report (BTreeMap keys — no hash-order wobble).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Topology location a metric is attributed to. `u32::MAX` means
/// "unspecified" on that axis, so process-wide metrics sort last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Loc {
    pub node: u32,
    pub thread: u32,
}

impl Loc {
    /// Process-wide (no location).
    pub fn global() -> Loc {
        Loc {
            node: u32::MAX,
            thread: u32::MAX,
        }
    }

    /// Attributed to a UPC thread on a known node.
    pub fn new(node: u32, thread: u32) -> Loc {
        Loc { node, thread }
    }

    /// Attributed to a thread whose node is unknown / irrelevant.
    pub fn thread(thread: u32) -> Loc {
        Loc {
            node: u32::MAX,
            thread,
        }
    }

    /// Attributed to a whole node.
    pub fn node(node: u32) -> Loc {
        Loc {
            node,
            thread: u32::MAX,
        }
    }

    fn render(&self) -> String {
        match (self.node, self.thread) {
            (u32::MAX, u32::MAX) => "*".to_string(),
            (u32::MAX, t) => format!("t{t}"),
            (n, u32::MAX) => format!("n{n}"),
            (n, t) => format!("n{n}/t{t}"),
        }
    }
}

/// Power-of-two-bucketed histogram: observation `v` lands in bucket
/// `bits(v)` (0 for `v == 0`), i.e. bucket `i > 0` covers `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` = number of observations with `bits(v) == i` (i ≤ 64).
    pub buckets: Vec<u64>,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram (public so aggregation layers — e.g. the serving
    /// benchmark merging per-shard latency — can fold snapshots together).
    pub fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; 65],
        }
    }

    /// Fold `other` into `self` (the histogram of the union multiset).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
    }

    /// Record one observation (public so layers that keep private
    /// histograms — outside any registry — can reuse the bucketing).
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Bucket index for a value: number of significant bits.
    ///
    /// Boundary audit (pinned by `bucket_edges_at_exact_powers_of_two`): a
    /// value exactly equal to a power of two `2^k` has `k+1` significant
    /// bits and therefore lands in bucket `k+1` — the bucket covering
    /// `[2^k, 2^(k+1))` — never in bucket `k`, whose half-open range
    /// `[2^(k-1), 2^k)` excludes its upper edge. The symmetric edge on the
    /// estimation side: bucket `i`'s largest member is `2^i - 1`, not
    /// `2^i` (which belongs to bucket `i+1`); [`Hist::percentile`] must use
    /// the former or the p ≤ 2·exact quantile bound breaks at exact powers
    /// of two.
    pub fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Largest value bucket `i` can contain (`2^i - 1`; 0 for bucket 0).
    /// This is the conservative upper-edge representative percentile
    /// extraction reports.
    pub fn bucket_high(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Mean (integer division; metrics are integer-valued by design).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate from the pow2 buckets: the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` observation (ranks are
    /// 1-based), clamped to the exact observed `max`. `q` is given as the
    /// ratio `q_num / q_den`, e.g. `percentile(99, 100)` for p99.
    ///
    /// Guarantees (pinned by unit + property tests):
    /// * `exact ≤ estimate ≤ max(2·exact − 1, exact)` where `exact` is the
    ///   same-rank quantile of the exact sorted sample — the pow2 buckets
    ///   bound the relative error by 2x from above, never below;
    /// * an empty histogram reports 0; a one-sample histogram reports a
    ///   value in `[sample, 2·sample − 1]` (and exactly `sample` when the
    ///   sample is the histogram max, which it always is — so exact);
    /// * monotone in `q`.
    pub fn percentile(&self, q_num: u64, q_den: u64) -> u64 {
        assert!(q_den > 0 && q_num <= q_den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // 1-based target rank; q = 0 degenerates to the minimum (rank 1).
        let rank = ((self.count as u128 * q_num as u128).div_ceil(q_den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_high(i).min(self.max).max(self.min);
            }
        }
        self.max // unreachable when counts are consistent
    }

    /// Median estimate (see [`Hist::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50, 100)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99, 100)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.percentile(999, 1000)
    }
}

/// A snapshotted metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Histogram(Hist),
}

enum Metric {
    Counter(u64),
    Histogram(Hist),
}

/// Deterministic snapshot of the registry: entries sorted by (name, loc).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<(String, Loc, MetricValue)>,
}

impl MetricsSnapshot {
    /// Render as an aligned text table (one metric per line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let w = self
            .entries
            .iter()
            .map(|(n, l, _)| n.len() + 1 + l.render().len())
            .max()
            .unwrap_or(0);
        for (name, loc, v) in &self.entries {
            let key = format!("{name}@{}", loc.render());
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{key:<w$}  {c}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{key:<w$}  count={} sum={} min={} max={} mean={}\n",
                        h.count,
                        h.sum,
                        if h.count == 0 { 0 } else { h.min },
                        h.max,
                        h.mean(),
                    ));
                }
            }
        }
        out
    }

    /// Render as deterministic JSON (sorted keys, integers only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, loc, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}@{}\":", loc.render()));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                )),
            }
        }
        out.push('}');
        out
    }
}

/// Counters and histograms keyed by `(name, Loc)`. All methods take `&self`;
/// internal mutex (uncontended: actors are serialized by the engine).
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(&'static str, Loc), Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(&'static str, Loc), Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Add `v` to the counter `(name, loc)`, creating it at zero.
    /// Panics (debug) if the key is already a histogram.
    pub fn count(&self, name: &'static str, loc: Loc, v: u64) {
        let mut m = self.lock();
        match m.entry((name, loc)).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += v,
            Metric::Histogram(_) => {
                debug_assert!(false, "metric {name} is a histogram, not a counter");
            }
        }
    }

    /// Record `v` into the histogram `(name, loc)`, creating it empty.
    pub fn observe(&self, name: &'static str, loc: Loc, v: u64) {
        let mut m = self.lock();
        match m
            .entry((name, loc))
            .or_insert_with(|| Metric::Histogram(Hist::new()))
        {
            Metric::Histogram(h) => h.observe(v),
            Metric::Counter(_) => {
                debug_assert!(false, "metric {name} is a counter, not a histogram");
            }
        }
    }

    /// Current value of a counter (0 if absent or a histogram).
    pub fn counter_value(&self, name: &'static str, loc: Loc) -> u64 {
        match self.lock().get(&(name, loc)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Sum of a counter across every location it was recorded at.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.lock()
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c,
                Metric::Histogram(h) => h.count,
            })
            .sum()
    }

    /// Snapshot of a histogram (None if absent or a counter).
    pub fn histogram(&self, name: &'static str, loc: Loc) -> Option<Hist> {
        match self.lock().get(&(name, loc)) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Merge of a histogram across every location it was recorded at
    /// (empty histogram when the name was never observed).
    pub fn histogram_total(&self, name: &'static str) -> Hist {
        let mut out = Hist::new();
        for ((n, _), m) in self.lock().iter() {
            if *n == name {
                if let Metric::Histogram(h) = m {
                    out.merge(h);
                }
            }
        }
        out
    }

    /// Deterministic snapshot: sorted by (name, loc).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        MetricsSnapshot {
            entries: m
                .iter()
                .map(|((name, loc), v)| {
                    let v = match v {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
                    };
                    ((*name).to_string(), *loc, v)
                })
                .collect(),
        }
    }

    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_location() {
        let r = MetricsRegistry::new();
        r.count("puts", Loc::new(0, 1), 3);
        r.count("puts", Loc::new(0, 1), 4);
        r.count("puts", Loc::new(1, 2), 5);
        assert_eq!(r.counter_value("puts", Loc::new(0, 1)), 7);
        assert_eq!(r.counter_total("puts"), 12);
        assert_eq!(r.counter_value("puts", Loc::global()), 0);
    }

    #[test]
    fn histogram_buckets_by_bits() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(2), 2);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(u64::MAX), 64);
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            r.observe("bytes", Loc::global(), v);
        }
        let h = r.histogram("bytes", Loc::global()).unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
    }

    /// Regression pin for the pow2 bucket-edge audit: a value exactly at a
    /// bucket edge (`v == 2^k`) belongs to the *upper* bucket `k+1` — the
    /// half-open `[2^(k-1), 2^k)` convention excludes its right edge — and
    /// the largest member of bucket `i` is `2^i - 1`, never `2^i`. p999
    /// correctness rides on both: misplacing edge values by one bucket
    /// doubles (or halves) the reported tail.
    #[test]
    fn bucket_edges_at_exact_powers_of_two() {
        for k in 0..64usize {
            let edge = 1u64 << k;
            assert_eq!(Hist::bucket(edge), k + 1, "2^{k} must land in bucket {}", k + 1);
            if k >= 1 {
                assert_eq!(Hist::bucket(edge - 1), k, "2^{k}-1 must stay in bucket {k}");
            }
            if (1..63).contains(&k) {
                assert_eq!(Hist::bucket(edge + 1), k + 1, "2^{k}+1 shares bucket {}", k + 1);
            }
            assert_eq!(Hist::bucket_high(k + 1), (edge << 1).wrapping_sub(1));
        }
        assert_eq!(Hist::bucket(u64::MAX), 64);
        assert_eq!(Hist::bucket_high(64), u64::MAX);
        assert_eq!(Hist::bucket_high(0), 0);
        // A histogram holding only exact powers of two: every percentile
        // estimate must stay within [exact, 2*exact - 1].
        let mut h = Hist::new();
        for k in 0..20 {
            h.observe(1u64 << k);
        }
        let p50 = h.p50();
        let exact = 1u64 << 9; // rank 10 of 20
        assert!(p50 >= exact && p50 < 2 * exact, "p50 {p50} vs exact {exact}");
    }

    /// Exact sorted-sample quantile with the same 1-based ceil-rank rule
    /// `percentile` uses.
    fn exact_quantile(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
        let rank = ((sorted.len() as u64 * q_num).div_ceil(q_den)).max(1);
        sorted[rank as usize - 1]
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = Hist::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p999(), 0);
        let mut one = Hist::new();
        one.observe(777);
        // Single sample: clamping to the observed max makes it exact.
        assert_eq!(one.p50(), 777);
        assert_eq!(one.p99(), 777);
        assert_eq!(one.p999(), 777);
        let mut zeros = Hist::new();
        for _ in 0..10 {
            zeros.observe(0);
        }
        assert_eq!(zeros.p999(), 0);
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let mut h = Hist::new();
        for v in [3u64, 9, 17, 90, 1000, 5, 64, 128, 2] {
            h.observe(v);
        }
        let mut last = 0;
        for q in 0..=100 {
            let p = h.percentile(q, 100);
            assert!(p >= last, "q={q}: {p} < {last}");
            last = p;
        }
        assert_eq!(h.percentile(100, 100), 1000); // pmax is exact (clamped)
    }

    #[test]
    fn percentile_brackets_exact_quantiles_on_fixed_samples() {
        let samples: Vec<u64> = (0..500).map(|i: u64| (i * i * 37 + 11) % 10_000).collect();
        let mut h = Hist::new();
        for &v in &samples {
            h.observe(v);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for (num, den) in [(50u64, 100u64), (90, 100), (99, 100), (999, 1000)] {
            let exact = exact_quantile(&sorted, num, den);
            let est = h.percentile(num, den);
            assert!(est >= exact, "p{num}/{den}: est {est} < exact {exact}");
            assert!(
                est <= (2 * exact.max(1) - 1).max(exact),
                "p{num}/{den}: est {est} > 2x exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_union_of_observations() {
        let (mut a, mut b, mut whole) = (Hist::new(), Hist::new(), Hist::new());
        for v in 0..100u64 {
            if v % 3 == 0 {
                a.observe(v * 7);
            } else {
                b.observe(v * 7);
            }
            whole.observe(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        let mut with_empty = whole.clone();
        with_empty.merge(&Hist::new());
        assert_eq!(with_empty, whole);
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let r = MetricsRegistry::new();
        r.count("z", Loc::global(), 1);
        r.count("a", Loc::thread(3), 2);
        r.observe("m", Loc::node(1), 9);
        let s = r.snapshot();
        let names: Vec<_> = s.entries.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        let txt = s.render_text();
        assert!(txt.contains("a@t3"), "{txt}");
        assert!(txt.contains("m@n1"), "{txt}");
        assert!(txt.contains("z@*"), "{txt}");
        let json = s.to_json();
        assert!(json.contains("\"a@t3\":2"), "{json}");
        assert!(json.contains("\"m@n1\":{\"count\":1"), "{json}");
    }
}
