//! Virtual-time structured event tracing and metrics for the hupc runtime.
//!
//! The simulation core attributes every nanosecond of virtual time to a
//! modeled cause — a wake, a NIC service, a lock handover — but until this
//! crate the only observable outputs were a handful of aggregate counters.
//! `hupc-trace` records *structured events* `(time, seq, actor, kind,
//! payload)` into per-actor ring buffers and merges them deterministically,
//! plus a typed [`MetricsRegistry`] of counters and histograms keyed by
//! topology location.
//!
//! # Determinism contract
//!
//! - Recording is **observationally free**: emitting an event never touches
//!   the kernel clock, the event queue, or any PRNG. A run with tracing
//!   `Off` and a run with tracing `Full` produce bit-identical virtual-time
//!   behavior (`end_time`, kernel event seqs, fast-path hits, app results).
//! - The trace itself is deterministic: actors execute serialized under the
//!   discrete-event engine, so the global trace sequence counter observes a
//!   deterministic interleaving. Two runs with the same seed produce
//!   byte-identical JSONL exports (the golden-trace tests pin this).
//! - Trace `seq` numbers are allocated only when an event is actually
//!   recorded; they are unrelated to (and independent of) kernel event
//!   sequence numbers, which are carried in event payloads where relevant.
//!
//! # Cost model
//!
//! The level check is a single relaxed atomic load; with the tracer absent
//! (the default) instrumented code branches on an `Option` and does nothing.
//! Compile the `trace` feature out of the runtime crates
//! (`--no-default-features`) and the instrumentation disappears entirely.

mod export;
mod metrics;

pub use export::{to_chrome_trace, to_jsonl};
pub use metrics::{Hist, Loc, MetricValue, MetricsRegistry, MetricsSnapshot};

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Virtual-time timestamp in nanoseconds (mirrors `hupc_sim::Time`; this
/// crate keeps its own alias so the sim can depend on it without a cycle).
pub type Time = u64;

/// How much the tracer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Record nothing (default). Instrumentation costs one branch.
    Off = 0,
    /// Update metrics (counters / histograms) but record no events.
    Counters = 1,
    /// Metrics plus full structured event recording.
    Full = 2,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Counters,
            _ => TraceLevel::Full,
        }
    }
}

/// What happened. Payload semantics (the `a` / `b` fields of [`Event`]) are
/// per-kind and documented on each variant; all payloads are plain integers
/// so exports are bit-stable across platforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    // ----- kernel (crates/sim) ------------------------------------------
    /// A wake was scheduled for `actor`. `a` = wake time.
    Schedule,
    /// The scheduler dispatched a wake to `actor`. `a` = kernel event seq.
    Wake,
    /// A simcall resolved inline on the scheduler-bypass fast path.
    /// `a` = kernel event seq the bypassed wake consumed.
    FastPathBypass,
    /// `actor` parked (blocked). `a` = block-kind code (see `park` module).
    Park,
    /// A completion fired. `a` = completion id.
    Complete,
    /// A timed-wait deadline event was dispatched. `a` = 1 if live, 0 stale.
    Timeout,
    // ----- gasnet --------------------------------------------------------
    /// One-sided put issued. `a` = destination thread, `b` = bytes.
    PutIssue,
    /// Put charged to the platform. `a` = bytes, `b` = access-path code.
    PutCharge,
    /// One-sided get issued. `a` = source (remote) thread, `b` = bytes.
    GetIssue,
    /// Get charged to the platform. `a` = bytes, `b` = access-path code.
    GetCharge,
    /// A transmission was dropped and will be retried. `a` = attempt number
    /// (1-based), `b` = bytes.
    Retry,
    /// Exponential backoff before a retry. `a` = backoff delay (ns).
    Backoff,
    /// Entered a blocking barrier (quiesce + arrive). `a` = barrier cost.
    BarrierEnter,
    /// Released from a blocking barrier.
    BarrierExit,
    /// Split-phase `barrier_notify` arrival.
    BarrierNotify,
    /// Split-phase `barrier_wait` completed.
    BarrierWait,
    // ----- upc -----------------------------------------------------------
    /// UPC lock acquired. `a` = home thread, `b` = 1 if home is castable
    /// (same-node cheap path), 0 remote.
    LockAcquire,
    /// UPC lock released. `a` = home thread.
    LockRelease,
    /// Collective started. `a` = op code (see `coll` module), `b` = words.
    CollBegin,
    /// Collective finished. `a` = op code.
    CollEnd,
    // ----- apps ----------------------------------------------------------
    /// UTS steal attempt. `a` = victim thread, `b` = group distance
    /// (node-index distance between thief and victim; 0 = same node).
    StealAttempt,
    /// UTS steal success. `a` = victim thread, `b` = group distance.
    StealSuccess,
    /// A labeled span opened. `a` = span code (see `span` module).
    SpanBegin,
    /// A labeled span closed. `a` = span code.
    SpanEnd,
}

impl EventKind {
    /// Stable short name used by the exporters (part of the golden-trace
    /// format — do not rename without re-blessing goldens).
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            Schedule => "sched",
            Wake => "wake",
            FastPathBypass => "bypass",
            Park => "park",
            Complete => "complete",
            Timeout => "timeout",
            PutIssue => "put",
            PutCharge => "put_charge",
            GetIssue => "get",
            GetCharge => "get_charge",
            Retry => "retry",
            Backoff => "backoff",
            BarrierEnter => "bar_enter",
            BarrierExit => "bar_exit",
            BarrierNotify => "bar_notify",
            BarrierWait => "bar_wait",
            LockAcquire => "lock",
            LockRelease => "unlock",
            CollBegin => "coll_begin",
            CollEnd => "coll_end",
            StealAttempt => "steal_try",
            StealSuccess => "steal_ok",
            SpanBegin => "span_begin",
            SpanEnd => "span_end",
        }
    }
}

/// Block-kind payload codes for [`EventKind::Park`].
pub mod park {
    pub const START: u64 = 0;
    pub const ADVANCE: u64 = 1;
    pub const RESOURCE: u64 = 2;
    pub const COMPLETION: u64 = 3;
    pub const COND: u64 = 4;
    pub const BARRIER: u64 = 5;
    pub const MUTEX: u64 = 6;
}

/// Collective op codes for [`EventKind::CollBegin`] / [`EventKind::CollEnd`].
///
/// The `a` payload of a collective event packs three fields:
/// `op | (algo << ALGO_SHIFT) | (phase << PHASE_SHIFT)`. A flat whole-op
/// event is `algo == ALGO_FLAT` and `phase == 0`, so the packed value equals
/// the bare op code — existing goldens (which predate the tags) stay valid
/// byte-for-byte.
pub mod coll {
    pub const BROADCAST: u64 = 0;
    pub const ALLREDUCE: u64 = 1;
    pub const ALL_EXCHANGE: u64 = 2;
    pub const ALLGATHER: u64 = 3;
    pub const BARRIER: u64 = 4;

    /// Algorithm tag (which decomposition ran), packed above the op code.
    pub const ALGO_SHIFT: u32 = 8;
    pub const ALGO_FLAT: u64 = 0;
    pub const ALGO_TWO_LEVEL: u64 = 1;
    pub const ALGO_THREE_LEVEL: u64 = 2;

    /// Phase tag (which stage of a hierarchical op), packed above the algo.
    pub const PHASE_SHIFT: u32 = 12;
    /// Whole-op event (no phase).
    pub const PHASE_OP: u64 = 0;
    /// Intra-group shared-memory stage (gather / fan-out, no network).
    pub const PHASE_INTRA: u64 = 1;
    /// Inter-leader network stage (trees / rings over gasnet).
    pub const PHASE_INTER: u64 = 2;

    /// Pack an op + algorithm tag (whole-op event).
    pub fn tag(op: u64, algo: u64) -> u64 {
        op | (algo << ALGO_SHIFT)
    }

    /// Pack an op + algorithm + phase tag (stage event).
    pub fn phase_tag(op: u64, algo: u64, phase: u64) -> u64 {
        op | (algo << ALGO_SHIFT) | (phase << PHASE_SHIFT)
    }

    /// The bare op code of a packed collective payload.
    pub fn op_of(a: u64) -> u64 {
        a & ((1 << ALGO_SHIFT) - 1)
    }

    /// The algorithm tag of a packed collective payload.
    pub fn algo_of(a: u64) -> u64 {
        (a >> ALGO_SHIFT) & ((1 << (PHASE_SHIFT - ALGO_SHIFT)) - 1)
    }

    /// The phase tag of a packed collective payload.
    pub fn phase_of(a: u64) -> u64 {
        a >> PHASE_SHIFT
    }
}

/// Span codes for [`EventKind::SpanBegin`] / [`EventKind::SpanEnd`].
pub mod span {
    /// FT: local FFT compute (2-D planes or z-pencils).
    pub const FT_COMPUTE: u64 = 0;
    /// FT: global transpose exchange (pack + put + drain).
    pub const FT_EXCHANGE: u64 = 1;
    /// FT: spectral evolve.
    pub const FT_EVOLVE: u64 = 2;
    /// GUPS: update generation + routing (the communication phase).
    pub const GUPS_EXCHANGE: u64 = 3;
    /// GUPS: applying delivered updates to the local table.
    pub const GUPS_APPLY: u64 = 4;

    /// Human-readable span name for exporters.
    pub fn name(code: u64) -> &'static str {
        match code {
            FT_COMPUTE => "ft.compute",
            FT_EXCHANGE => "ft.exchange",
            FT_EVOLVE => "ft.evolve",
            GUPS_EXCHANGE => "gups.exchange",
            GUPS_APPLY => "gups.apply",
            _ => "span",
        }
    }
}

/// One recorded event. `seq` is the tracer-global emission sequence number:
/// unique across all actors, monotone in emission order, so `(time, seq)`
/// totally orders the merged trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub time: Time,
    pub seq: u64,
    pub actor: u32,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}

/// Bounded per-actor event buffer: keeps the most recent `capacity` events,
/// counting (deterministically) how many older ones were evicted.
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event, capacity: usize) {
        if self.events.len() == capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// The tracer: level gate, global sequence counter, per-actor rings, and the
/// metrics registry. Cheap to share (`Arc`); all methods take `&self`.
pub struct Tracer {
    level: AtomicU8,
    seq: AtomicU64,
    capacity: usize,
    /// Per-actor rings, keyed by actor id (sparse: the engine emits under a
    /// `u32::MAX` sentinel actor).
    rings: Mutex<BTreeMap<u32, Ring>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level())
            .field("events", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// Default per-actor ring capacity (events). Each event is 48 bytes, so the
/// default bounds tracing memory at ~3 MiB per actor.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

impl Tracer {
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer::with_capacity(level, DEFAULT_RING_CAPACITY)
    }

    /// Tracer whose per-actor rings keep at most `capacity` events each
    /// (drop-oldest). Eviction is deterministic, so bounded traces are still
    /// byte-identical across runs.
    pub fn with_capacity(level: TraceLevel, capacity: usize) -> Tracer {
        Tracer {
            level: AtomicU8::new(level as u8),
            seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            rings: Mutex::new(BTreeMap::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    pub fn level(&self) -> TraceLevel {
        TraceLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Single-branch gate: is the tracer at least at `min`?
    #[inline]
    pub fn enabled(&self, min: TraceLevel) -> bool {
        self.level.load(Ordering::Relaxed) >= min as u8
    }

    /// Record one event at virtual time `time`. No-op below `Full`. Never
    /// blocks on anything but the (uncontended — actors are serialized)
    /// rings mutex; never touches virtual time.
    #[inline]
    pub fn emit(&self, time: Time, actor: u32, kind: EventKind, a: u64, b: u64) {
        if !self.enabled(TraceLevel::Full) {
            return;
        }
        self.emit_always(time, actor, kind, a, b);
    }

    fn emit_always(&self, time: Time, actor: u32, kind: EventKind, a: u64, b: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            time,
            seq,
            actor,
            kind,
            a,
            b,
        };
        let mut rings = lock(&self.rings);
        rings.entry(actor).or_insert_with(Ring::new).push(ev, self.capacity);
    }

    /// Bump a counter metric. No-op below `Counters`.
    #[inline]
    pub fn count(&self, name: &'static str, loc: Loc, v: u64) {
        if self.enabled(TraceLevel::Counters) {
            self.metrics.count(name, loc, v);
        }
    }

    /// Record a histogram observation. No-op below `Counters`.
    #[inline]
    pub fn observe(&self, name: &'static str, loc: Loc, v: u64) {
        if self.enabled(TraceLevel::Counters) {
            self.metrics.observe(name, loc, v);
        }
    }

    /// The metrics registry (readable at any level).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Total events recorded so far (= next seq to be allocated).
    pub fn events_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Total events evicted from full rings across all actors.
    pub fn events_dropped(&self) -> u64 {
        lock(&self.rings).values().map(|r| r.dropped).sum()
    }

    /// Merge every actor ring into one trace, totally ordered by
    /// `(time, seq)`. Deterministic: same run → same vector.
    pub fn merge(&self) -> Vec<Event> {
        let rings = lock(&self.rings);
        let mut all: Vec<Event> =
            rings.values().flat_map(|r| r.events.iter().copied()).collect();
        all.sort_by_key(|e| (e.time, e.seq));
        all
    }

    /// Discard all recorded events and metrics, keeping the level. The seq
    /// counter keeps counting up (uniqueness over the tracer's lifetime).
    pub fn clear(&self) {
        lock(&self.rings).clear();
        self.metrics.clear();
    }

    /// Install this tracer as the process-global default picked up by every
    /// subsequently created `Simulation`, returning a guard that uninstalls
    /// it on drop. Guards serialize: concurrent installs (e.g. parallel
    /// tests) block until the previous guard drops, so a simulation can
    /// never observe another test's tracer.
    pub fn install(self: &Arc<Self>) -> Installed {
        let lock = lock(&INSTALL_LOCK);
        set_global_tracer(Some(Arc::clone(self)));
        Installed { _lock: lock }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// process-global default tracer
// ---------------------------------------------------------------------------

static GLOBAL: Mutex<Option<Arc<Tracer>>> = Mutex::new(None);
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// Set (or clear) the process-global default tracer, returning the previous
/// one. Prefer [`Tracer::install`], whose guard also serializes installs.
pub fn set_global_tracer(t: Option<Arc<Tracer>>) -> Option<Arc<Tracer>> {
    std::mem::replace(&mut lock(&GLOBAL), t)
}

/// The process-global default tracer, if one is installed.
pub fn global_tracer() -> Option<Arc<Tracer>> {
    lock(&GLOBAL).clone()
}

/// RAII guard from [`Tracer::install`]: uninstalls the global tracer on drop
/// and holds the install lock so installs are serialized process-wide.
pub struct Installed {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        set_global_tracer(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_and_allocates_no_seqs() {
        let t = Tracer::new(TraceLevel::Off);
        t.emit(10, 0, EventKind::Wake, 1, 2);
        t.count("x", Loc::global(), 5);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.merge().is_empty());
        assert!(t.metrics().snapshot().entries.is_empty());
    }

    #[test]
    fn counters_level_updates_metrics_but_records_no_events() {
        let t = Tracer::new(TraceLevel::Counters);
        t.emit(10, 0, EventKind::Wake, 1, 2);
        t.count("x", Loc::global(), 5);
        assert_eq!(t.events_recorded(), 0);
        assert_eq!(t.metrics().counter_value("x", Loc::global()), 5);
    }

    #[test]
    fn merge_orders_by_time_then_seq() {
        let t = Tracer::new(TraceLevel::Full);
        // Interleave actors with equal times: seq must break the tie in
        // emission order.
        t.emit(5, 1, EventKind::Park, 0, 0); // seq 0
        t.emit(5, 0, EventKind::Wake, 0, 0); // seq 1
        t.emit(3, 2, EventKind::Schedule, 3, 0); // seq 2
        let m = t.merge();
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 0, 1],
            "sorted by (time, seq): t=3 first, then the two t=5 in seq order"
        );
        assert!(m.windows(2).all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)));
    }

    #[test]
    fn ring_drops_oldest_deterministically() {
        let t = Tracer::with_capacity(TraceLevel::Full, 4);
        for i in 0..10u64 {
            t.emit(i, 0, EventKind::Wake, i, 0);
        }
        assert_eq!(t.events_dropped(), 6);
        let m = t.merge();
        assert_eq!(m.len(), 4);
        assert_eq!(m.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn install_guard_sets_and_restores_global() {
        let t = Arc::new(Tracer::new(TraceLevel::Full));
        {
            let _g = t.install();
            assert!(global_tracer().is_some());
        }
        assert!(global_tracer().is_none());
    }

    #[test]
    fn coll_tags_round_trip_and_flat_is_bare_op() {
        use super::coll;
        // Flat whole-op payloads are the bare op code (golden stability).
        assert_eq!(coll::tag(coll::ALLREDUCE, coll::ALGO_FLAT), coll::ALLREDUCE);
        let a = coll::phase_tag(coll::BROADCAST, coll::ALGO_THREE_LEVEL, coll::PHASE_INTER);
        assert_eq!(coll::op_of(a), coll::BROADCAST);
        assert_eq!(coll::algo_of(a), coll::ALGO_THREE_LEVEL);
        assert_eq!(coll::phase_of(a), coll::PHASE_INTER);
    }

    #[test]
    fn kind_names_are_unique() {
        use EventKind::*;
        let kinds = [
            Schedule,
            Wake,
            FastPathBypass,
            Park,
            Complete,
            Timeout,
            PutIssue,
            PutCharge,
            GetIssue,
            GetCharge,
            Retry,
            Backoff,
            BarrierEnter,
            BarrierExit,
            BarrierNotify,
            BarrierWait,
            LockAcquire,
            LockRelease,
            CollBegin,
            CollEnd,
            StealAttempt,
            StealSuccess,
            SpanBegin,
            SpanEnd,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
