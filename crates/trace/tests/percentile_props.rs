//! Property pins for pow2-bucket percentile extraction: on arbitrary
//! workloads the histogram estimate must bracket the exact sorted-sample
//! quantile from above within the 2x bucket-resolution bound, for every
//! quantile the serving stack reports (p50/p99/p999) and a sweep of others.

use hupc_trace::{Hist, Loc, MetricsRegistry};
use proptest::prelude::*;

/// Exact quantile under the same 1-based ceil-rank rule `Hist::percentile`
/// documents.
fn exact_quantile(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
    let rank = ((sorted.len() as u128 * q_num as u128).div_ceil(q_den as u128) as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// exact ≤ estimate ≤ max(2·exact − 1, exact) on random multisets,
    /// including values straddling bucket edges.
    #[test]
    fn percentile_brackets_exact_quantiles(
        values in proptest::collection::vec(0u64..1_000_000, 1..400),
        q_num in 1u64..1000,
    ) {
        let mut h = Hist::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        for (num, den) in [(q_num, 1000), (50, 100), (99, 100), (999, 1000)] {
            let exact = exact_quantile(&sorted, num, den);
            let est = h.percentile(num, den);
            prop_assert!(est >= exact, "p{}/{}: est {} < exact {}", num, den, est, exact);
            let ceil = (2u64.saturating_mul(exact.max(1)) - 1).max(exact);
            prop_assert!(est <= ceil, "p{}/{}: est {} > bound {}", num, den, est, ceil);
        }
    }

    /// Merging per-location histograms then extracting equals extracting
    /// from one histogram fed the union — the registry aggregation the
    /// serving stack uses cannot change any percentile.
    #[test]
    fn registry_total_matches_direct_union(
        values in proptest::collection::vec(0u64..100_000, 1..200),
    ) {
        let reg = MetricsRegistry::new();
        let mut direct = Hist::new();
        for (i, &v) in values.iter().enumerate() {
            reg.observe("lat", Loc::new((i % 3) as u32, (i % 5) as u32), v);
            direct.observe(v);
        }
        let merged = reg.histogram_total("lat");
        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.p999(), direct.p999());
    }
}
