//! Typed identifiers for topology objects, all machine-global and dense.

/// A hardware thread (processing unit), global across the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PuId(pub usize);

/// A physical core, global across the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// A CPU socket (= ccNUMA domain on both evaluation platforms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub usize);

/// A cluster node (one shared-memory domain behind one network address).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Proximity between two PUs, ordered closest-first. This is the "thread
/// layout query" of §3.2.1, extended below node granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Same physical core (SMT siblings).
    SameCore,
    /// Same socket / ccNUMA domain.
    SameSocket,
    /// Same node (shared-memory reachable, cross-socket).
    SameNode,
    /// Different nodes (network only).
    Remote,
}

impl Level {
    /// Whether two PUs at this proximity can share physical memory.
    pub fn shares_memory(self) -> bool {
        self != Level::Remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_closest_first() {
        assert!(Level::SameCore < Level::SameSocket);
        assert!(Level::SameSocket < Level::SameNode);
        assert!(Level::SameNode < Level::Remote);
    }

    #[test]
    fn memory_sharing() {
        assert!(Level::SameCore.shares_memory());
        assert!(Level::SameNode.shares_memory());
        assert!(!Level::Remote.shares_memory());
    }
}
