//! `hupc-topo` — hardware topology model for simulated clusters of SMPs.
//!
//! Plays the role `hwloc` and the physical machines play in the thesis: it
//! describes machines as a tree *machine → node → socket → core → PU*
//! (PU = processing unit, i.e. hardware thread), with per-level cache sizes,
//! NUMA parameters and network-facing attributes, and answers the locality
//! queries the rest of the stack asks ("are these two software threads on the
//! same node/socket/core?", "which PUs does this socket own?").
//!
//! The two evaluation platforms of the thesis are included as presets:
//!
//! * [`MachineSpec::lehman`] — 12 nodes × 2 × 4-core Intel Nehalem, SMT-2,
//!   QDR InfiniBand;
//! * [`MachineSpec::pyramid`] — 128 nodes × 2 × 4-core AMD Barcelona,
//!   DDR InfiniBand (plus a GigE conduit for the UTS study).
//!
//! Software-thread → PU assignment is a [`Placement`], built from a
//! [`BindPolicy`] that mirrors the thesis' `numactl` practice.

mod bitmask;
mod ids;
mod machine;
pub mod placement;
mod spec;

pub use bitmask::AffinityMask;
pub use ids::{CoreId, Level, NodeId, PuId, SocketId};
pub use machine::Machine;
pub use placement::{BindPolicy, Placement};
pub use spec::{CacheSpec, MachineSpec};
