//! Machine specifications: the numbers behind the model, including the two
//! thesis platforms (Table 2.1 of the thesis).

/// Per-core / per-socket cache sizes, bytes. Informational for the model
//  (cache-resident working sets are charged at higher effective bandwidth).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheSpec {
    /// L1 data cache per core.
    pub l1d: usize,
    /// Unified L2 per core.
    pub l2: usize,
    /// Shared L3 per socket.
    pub l3: usize,
}

/// Full description of a cluster platform.
///
/// All bandwidths are bytes/second; rates are per second. The derived
/// helpers (`pus_per_node`, …) are what the rest of the stack uses.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Sockets (= ccNUMA domains) per node.
    pub sockets_per_node: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (1 = no SMT).
    pub smt_per_core: usize,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Double-precision flops per cycle per core (SIMD width × ports).
    pub flops_per_cycle: f64,
    /// Cache sizes.
    pub cache: CacheSpec,
    /// Sustained memory bandwidth per socket (STREAM-like), bytes/s.
    pub mem_bw_per_socket: f64,
    /// Multiplier on access cost when the data's home socket differs from
    /// the accessing PU's socket (thesis: remote-socket accesses are
    /// "about 15% to 40% slower"; we model the midpoint).
    pub numa_remote_factor: f64,
    /// Aggregate throughput of one core when both SMT threads are busy,
    /// relative to a single thread (e.g. 1.15 ⇒ each SMT thread runs at
    /// 57.5% speed). 1.0 when `smt_per_core == 1`.
    pub smt_aggregate_speedup: f64,
}

impl MachineSpec {
    /// *Lehman*: 12 Sun/Intel nodes, dual-socket quad-core Nehalem
    /// (Xeon E5520, 2.27 GHz, SMT-2), QDR InfiniBand. Thesis Table 2.1.
    pub fn lehman() -> Self {
        MachineSpec {
            name: "lehman",
            nodes: 12,
            sockets_per_node: 2,
            cores_per_socket: 4,
            smt_per_core: 2,
            clock_hz: 2.27e9,
            flops_per_cycle: 4.0, // 128-bit SSE mul+add
            cache: CacheSpec {
                l1d: 32 << 10,
                l2: 256 << 10,
                l3: 8 << 20,
            },
            mem_bw_per_socket: 12.3e9,
            numa_remote_factor: 1.28,
            smt_aggregate_speedup: 1.15,
        }
    }

    /// *Pyramid*: 128 Sun X2200 nodes, dual-socket quad-core Barcelona
    /// (Opteron 2354, 2.2 GHz), DDR InfiniBand + GigE. Thesis Table 2.1.
    pub fn pyramid() -> Self {
        MachineSpec {
            name: "pyramid",
            nodes: 128,
            sockets_per_node: 2,
            cores_per_socket: 4,
            smt_per_core: 1,
            clock_hz: 2.2e9,
            flops_per_cycle: 4.0,
            cache: CacheSpec {
                l1d: 64 << 10,
                l2: 512 << 10,
                l3: 2 << 20,
            },
            mem_bw_per_socket: 8.5e9,
            numa_remote_factor: 1.28,
            smt_aggregate_speedup: 1.0,
        }
    }

    /// A small laptop-scale platform for tests and examples: 4 nodes,
    /// 2 sockets × 2 cores, no SMT.
    pub fn small_test(nodes: usize) -> Self {
        MachineSpec {
            name: "testbox",
            nodes,
            sockets_per_node: 2,
            cores_per_socket: 2,
            smt_per_core: 1,
            clock_hz: 2.0e9,
            flops_per_cycle: 2.0,
            cache: CacheSpec {
                l1d: 32 << 10,
                l2: 256 << 10,
                l3: 4 << 20,
            },
            mem_bw_per_socket: 10.0e9,
            numa_remote_factor: 1.3,
            smt_aggregate_speedup: 1.0,
        }
    }

    /// Restrict the spec to the first `nodes` nodes (the thesis uses 2, 4, 8
    /// or 16 nodes of each cluster per experiment).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1);
        self.nodes = nodes;
        self
    }

    // ----- derived counts ---------------------------------------------------

    /// Physical cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Hardware threads per socket.
    pub fn pus_per_socket(&self) -> usize {
        self.cores_per_socket * self.smt_per_core
    }

    /// Hardware threads per node.
    pub fn pus_per_node(&self) -> usize {
        self.sockets_per_node * self.pus_per_socket()
    }

    /// Hardware threads in the whole machine.
    pub fn pus_total(&self) -> usize {
        self.nodes * self.pus_per_node()
    }

    /// Physical cores in the whole machine.
    pub fn cores_total(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Peak double-precision flops per core, per second.
    pub fn peak_flops_per_core(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }

    /// Peak node flops (the thesis quotes 72 GF for Lehman, 70.4 GF for
    /// Pyramid).
    pub fn peak_flops_per_node(&self) -> f64 {
        self.peak_flops_per_core() * self.cores_per_node() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lehman_matches_table_2_1() {
        let m = MachineSpec::lehman();
        assert_eq!(m.cores_per_node(), 8);
        assert_eq!(m.pus_per_node(), 16);
        assert_eq!(m.nodes, 12);
        // 72.64 GFlops/node quoted as 72 in the thesis
        assert!((m.peak_flops_per_node() / 1e9 - 72.64).abs() < 0.1);
    }

    #[test]
    fn pyramid_matches_table_2_1() {
        let m = MachineSpec::pyramid();
        assert_eq!(m.cores_per_node(), 8);
        assert_eq!(m.pus_per_node(), 8);
        assert_eq!(m.nodes, 128);
        assert_eq!(m.cores_total(), 1024);
        assert!((m.peak_flops_per_node() / 1e9 - 70.4).abs() < 0.1);
    }

    #[test]
    fn with_nodes_restricts() {
        let m = MachineSpec::pyramid().with_nodes(16);
        assert_eq!(m.nodes, 16);
        assert_eq!(m.pus_total(), 128);
    }

    #[test]
    fn smt_free_machine_has_no_smt_speedup() {
        let m = MachineSpec::pyramid();
        assert_eq!(m.smt_per_core, 1);
        assert_eq!(m.smt_aggregate_speedup, 1.0);
    }
}
