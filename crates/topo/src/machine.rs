//! `Machine`: topology arithmetic over a [`MachineSpec`].
//!
//! Identifiers are dense and hierarchical by construction: PU `p` lives in
//! core `p / smt_per_core`, core `c` lives in socket `c / cores_per_socket`,
//! and so on. SMT siblings are therefore *adjacent* PU numbers — the same
//! convention Linux' `hwloc` logical indexing uses on these platforms.

use crate::bitmask::AffinityMask;
use crate::ids::{CoreId, Level, NodeId, PuId, SocketId};
use crate::spec::MachineSpec;

/// A machine instance: spec plus topology queries.
#[derive(Clone, Debug)]
pub struct Machine {
    spec: MachineSpec,
}

impl Machine {
    pub fn new(spec: MachineSpec) -> Self {
        assert!(spec.nodes >= 1);
        assert!(spec.sockets_per_node >= 1);
        assert!(spec.cores_per_socket >= 1);
        assert!(spec.smt_per_core >= 1);
        Machine { spec }
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    // ----- containment ------------------------------------------------------

    /// Core containing `pu`.
    pub fn pu_core(&self, pu: PuId) -> CoreId {
        debug_assert!(pu.0 < self.spec.pus_total());
        CoreId(pu.0 / self.spec.smt_per_core)
    }

    /// Socket containing `pu`.
    pub fn pu_socket(&self, pu: PuId) -> SocketId {
        SocketId(self.pu_core(pu).0 / self.spec.cores_per_socket)
    }

    /// Node containing `pu`.
    pub fn pu_node(&self, pu: PuId) -> NodeId {
        NodeId(self.pu_socket(pu).0 / self.spec.sockets_per_node)
    }

    /// Socket containing `core`.
    pub fn core_socket(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.spec.cores_per_socket)
    }

    /// Node containing `socket`.
    pub fn socket_node(&self, socket: SocketId) -> NodeId {
        NodeId(socket.0 / self.spec.sockets_per_node)
    }

    // ----- enumeration ------------------------------------------------------

    /// PUs of `core` (SMT siblings), in order.
    pub fn core_pus(&self, core: CoreId) -> impl Iterator<Item = PuId> {
        let s = self.spec.smt_per_core;
        (core.0 * s..(core.0 + 1) * s).map(PuId)
    }

    /// PUs of `socket`, in order.
    pub fn socket_pus(&self, socket: SocketId) -> impl Iterator<Item = PuId> {
        let s = self.spec.pus_per_socket();
        (socket.0 * s..(socket.0 + 1) * s).map(PuId)
    }

    /// PUs of `node`, in order.
    pub fn node_pus(&self, node: NodeId) -> impl Iterator<Item = PuId> {
        let s = self.spec.pus_per_node();
        (node.0 * s..(node.0 + 1) * s).map(PuId)
    }

    /// Cores of `node`, in order.
    pub fn node_cores(&self, node: NodeId) -> impl Iterator<Item = CoreId> {
        let s = self.spec.cores_per_node();
        (node.0 * s..(node.0 + 1) * s).map(CoreId)
    }

    /// Sockets of `node`, in order.
    pub fn node_sockets(&self, node: NodeId) -> impl Iterator<Item = SocketId> {
        let s = self.spec.sockets_per_node;
        (node.0 * s..(node.0 + 1) * s).map(SocketId)
    }

    /// Affinity mask of a whole socket.
    pub fn socket_mask(&self, socket: SocketId) -> AffinityMask {
        AffinityMask::from_pus(self.spec.pus_total(), self.socket_pus(socket))
    }

    /// Affinity mask of a whole node.
    pub fn node_mask(&self, node: NodeId) -> AffinityMask {
        AffinityMask::from_pus(self.spec.pus_total(), self.node_pus(node))
    }

    // ----- distance ---------------------------------------------------------

    /// Proximity of two PUs (§3.2.1's layout query).
    pub fn distance(&self, a: PuId, b: PuId) -> Level {
        if self.pu_core(a) == self.pu_core(b) {
            Level::SameCore
        } else if self.pu_socket(a) == self.pu_socket(b) {
            Level::SameSocket
        } else if self.pu_node(a) == self.pu_node(b) {
            Level::SameNode
        } else {
            Level::Remote
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lehman() -> Machine {
        Machine::new(MachineSpec::lehman())
    }

    #[test]
    fn containment_arithmetic() {
        let m = lehman(); // 2 SMT/core, 4 cores/socket, 2 sockets/node
        // PU 0 and 1 are SMT siblings on core 0
        assert_eq!(m.pu_core(PuId(0)), CoreId(0));
        assert_eq!(m.pu_core(PuId(1)), CoreId(0));
        assert_eq!(m.pu_core(PuId(2)), CoreId(1));
        // Socket 0 holds cores 0..4 (PUs 0..8)
        assert_eq!(m.pu_socket(PuId(7)), SocketId(0));
        assert_eq!(m.pu_socket(PuId(8)), SocketId(1));
        // Node 0 holds PUs 0..16
        assert_eq!(m.pu_node(PuId(15)), NodeId(0));
        assert_eq!(m.pu_node(PuId(16)), NodeId(1));
    }

    #[test]
    fn enumeration_counts() {
        let m = lehman();
        assert_eq!(m.core_pus(CoreId(3)).count(), 2);
        assert_eq!(m.socket_pus(SocketId(0)).count(), 8);
        assert_eq!(m.node_pus(NodeId(1)).count(), 16);
        assert_eq!(m.node_cores(NodeId(0)).count(), 8);
        assert_eq!(m.node_sockets(NodeId(0)).count(), 2);
        let pus: Vec<_> = m.node_pus(NodeId(1)).collect();
        assert_eq!(pus[0], PuId(16));
        assert_eq!(pus[15], PuId(31));
    }

    #[test]
    fn distance_levels() {
        let m = lehman();
        assert_eq!(m.distance(PuId(0), PuId(1)), Level::SameCore);
        assert_eq!(m.distance(PuId(0), PuId(2)), Level::SameSocket);
        assert_eq!(m.distance(PuId(0), PuId(8)), Level::SameNode);
        assert_eq!(m.distance(PuId(0), PuId(16)), Level::Remote);
        assert_eq!(m.distance(PuId(17), PuId(16)), Level::SameCore);
    }

    #[test]
    fn masks_cover_their_level() {
        let m = lehman();
        let sm = m.socket_mask(SocketId(1));
        assert_eq!(sm.count(), 8);
        assert!(sm.contains(PuId(8)));
        assert!(!sm.contains(PuId(7)));
        let nm = m.node_mask(NodeId(0));
        assert_eq!(nm.count(), 16);
    }

    #[test]
    fn no_smt_machine() {
        let m = Machine::new(MachineSpec::pyramid());
        assert_eq!(m.pu_core(PuId(5)), CoreId(5));
        assert_eq!(m.distance(PuId(0), PuId(1)), Level::SameSocket);
    }
}
