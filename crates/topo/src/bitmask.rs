//! Affinity masks: sets of PUs, in the spirit of `hwloc` cpusets.

use crate::ids::PuId;

/// A set of processing units, used as a binding mask for software threads.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AffinityMask {
    words: Vec<u64>,
}

impl AffinityMask {
    /// Empty mask sized for `n_pus` processing units.
    pub fn empty(n_pus: usize) -> Self {
        AffinityMask {
            words: vec![0; n_pus.div_ceil(64)],
        }
    }

    /// Mask containing every PU in `0..n_pus`.
    pub fn all(n_pus: usize) -> Self {
        let mut m = Self::empty(n_pus);
        for i in 0..n_pus {
            m.insert(PuId(i));
        }
        m
    }

    /// Mask containing exactly one PU.
    pub fn single(n_pus: usize, pu: PuId) -> Self {
        let mut m = Self::empty(n_pus);
        m.insert(pu);
        m
    }

    /// Build from an iterator of PUs.
    pub fn from_pus(n_pus: usize, pus: impl IntoIterator<Item = PuId>) -> Self {
        let mut m = Self::empty(n_pus);
        for p in pus {
            m.insert(p);
        }
        m
    }

    pub fn insert(&mut self, pu: PuId) {
        let (w, b) = (pu.0 / 64, pu.0 % 64);
        assert!(w < self.words.len(), "PU {} out of mask range", pu.0);
        self.words[w] |= 1 << b;
    }

    pub fn remove(&mut self, pu: PuId) {
        let (w, b) = (pu.0 / 64, pu.0 % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    pub fn contains(&self, pu: PuId) -> bool {
        let (w, b) = (pu.0 / 64, pu.0 % 64);
        w < self.words.len() && (self.words[w] >> b) & 1 == 1
    }

    /// Number of PUs in the mask.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over member PUs in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = PuId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(PuId(wi * 64 + b))
                } else {
                    None
                }
            })
        })
    }

    /// Set intersection.
    pub fn and(&self, other: &AffinityMask) -> AffinityMask {
        let n = self.words.len().min(other.words.len());
        AffinityMask {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        }
    }

    /// Set union.
    pub fn or(&self, other: &AffinityMask) -> AffinityMask {
        let n = self.words.len().max(other.words.len());
        AffinityMask {
            words: (0..n)
                .map(|i| {
                    self.words.get(i).copied().unwrap_or(0)
                        | other.words.get(i).copied().unwrap_or(0)
                })
                .collect(),
        }
    }

    /// Lowest-numbered PU in the mask, if any.
    pub fn first(&self) -> Option<PuId> {
        self.iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut m = AffinityMask::empty(130);
        m.insert(PuId(0));
        m.insert(PuId(64));
        m.insert(PuId(129));
        assert!(m.contains(PuId(0)));
        assert!(m.contains(PuId(64)));
        assert!(m.contains(PuId(129)));
        assert!(!m.contains(PuId(1)));
        assert_eq!(m.count(), 3);
        m.remove(PuId(64));
        assert!(!m.contains(PuId(64)));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn all_and_iter() {
        let m = AffinityMask::all(70);
        assert_eq!(m.count(), 70);
        let pus: Vec<usize> = m.iter().map(|p| p.0).collect();
        assert_eq!(pus.len(), 70);
        assert_eq!(pus[0], 0);
        assert_eq!(pus[69], 69);
    }

    #[test]
    fn set_algebra() {
        let a = AffinityMask::from_pus(16, [PuId(1), PuId(2), PuId(3)]);
        let b = AffinityMask::from_pus(16, [PuId(2), PuId(3), PuId(4)]);
        assert_eq!(
            a.and(&b),
            AffinityMask::from_pus(16, [PuId(2), PuId(3)])
        );
        assert_eq!(
            a.or(&b),
            AffinityMask::from_pus(16, [PuId(1), PuId(2), PuId(3), PuId(4)])
        );
    }

    #[test]
    fn first_and_empty() {
        assert!(AffinityMask::empty(8).is_empty());
        assert_eq!(AffinityMask::empty(8).first(), None);
        assert_eq!(
            AffinityMask::from_pus(8, [PuId(5), PuId(6)]).first(),
            Some(PuId(5))
        );
    }
}
