//! Software-thread placement: which PU each UPC thread (and its sub-threads)
//! runs on, mirroring the thesis' `numactl`-based binding practice (§4.3.2:
//! "UPC processes are cyclically pinned to independent ccNUMA nodes
//! (CPU sockets) using numactl by default").

use crate::bitmask::AffinityMask;
use crate::ids::{Level, NodeId, PuId, SocketId};
use crate::machine::Machine;

/// How UPC threads are bound within each node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindPolicy {
    /// Fill physical cores in order (socket 0 first), SMT siblings last.
    /// Standard dense binding for process-per-core runs.
    PackedCores,
    /// Alternate sockets core-by-core (the thesis' cyclic `numactl`
    /// binding). Sub-thread masks are the owning socket.
    RoundRobinSockets,
    /// No binding: threads get nominal PUs but may use the whole node; the
    /// memory system sees worst-case placement (Table 4.1's 1×8 case).
    Unbound,
}

/// A concrete thread → PU assignment over the first `nodes_used` nodes of a
/// machine.
#[derive(Clone, Debug)]
pub struct Placement {
    n_threads: usize,
    nodes_used: usize,
    policy: BindPolicy,
    assignment: Vec<PuId>,
    masks: Vec<AffinityMask>,
}

impl Placement {
    /// Distribute `n_threads` evenly over the first `nodes_used` nodes
    /// (blocked: threads `[i*per_node, (i+1)*per_node)` on node `i`), binding
    /// within each node per `policy`.
    ///
    /// Panics if `n_threads` is not a multiple of `nodes_used` or a node's
    /// share exceeds its PU count.
    pub fn build(
        machine: &Machine,
        n_threads: usize,
        nodes_used: usize,
        policy: BindPolicy,
    ) -> Placement {
        let spec = machine.spec();
        assert!(nodes_used >= 1 && nodes_used <= spec.nodes,
            "nodes_used {nodes_used} out of range (machine has {})", spec.nodes);
        assert!(n_threads >= 1);
        assert_eq!(
            n_threads % nodes_used,
            0,
            "threads ({n_threads}) must divide evenly over nodes ({nodes_used})"
        );
        let per_node = n_threads / nodes_used;
        assert!(
            per_node <= spec.pus_per_node(),
            "{per_node} threads per node exceed {} PUs",
            spec.pus_per_node()
        );

        let total_pus = spec.pus_total();
        let mut assignment = Vec::with_capacity(n_threads);
        let mut masks = Vec::with_capacity(n_threads);
        for node in 0..nodes_used {
            let order = node_pu_order(machine, NodeId(node), policy);
            for &pu in order.iter().take(per_node) {
                assignment.push(pu);
                let mask = match policy {
                    BindPolicy::Unbound => machine.node_mask(NodeId(node)),
                    _ => machine.socket_mask(machine.pu_socket(pu)),
                };
                let _ = total_pus;
                masks.push(mask);
            }
        }
        Placement {
            n_threads,
            nodes_used,
            policy,
            assignment,
            masks,
        }
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    pub fn nodes_used(&self) -> usize {
        self.nodes_used
    }

    pub fn policy(&self) -> BindPolicy {
        self.policy
    }

    pub fn threads_per_node(&self) -> usize {
        self.n_threads / self.nodes_used
    }

    /// PU the thread is (nominally) bound to.
    pub fn thread_pu(&self, t: usize) -> PuId {
        self.assignment[t]
    }

    /// Affinity mask sub-threads of `t` inherit.
    pub fn thread_mask(&self, t: usize) -> &AffinityMask {
        &self.masks[t]
    }

    /// Whether threads are actually pinned (false for [`BindPolicy::Unbound`]).
    pub fn is_bound(&self) -> bool {
        self.policy != BindPolicy::Unbound
    }

    /// Node of thread `t`.
    pub fn thread_node(&self, machine: &Machine, t: usize) -> NodeId {
        machine.pu_node(self.assignment[t])
    }

    /// Socket of thread `t`.
    pub fn thread_socket(&self, machine: &Machine, t: usize) -> SocketId {
        machine.pu_socket(self.assignment[t])
    }

    /// Proximity between two software threads.
    pub fn co_located(&self, machine: &Machine, a: usize, b: usize) -> Level {
        machine.distance(self.assignment[a], self.assignment[b])
    }

    /// All threads placed on `node`, in rank order.
    pub fn node_threads(&self, machine: &Machine, node: NodeId) -> Vec<usize> {
        (0..self.n_threads)
            .filter(|&t| self.thread_node(machine, t) == node)
            .collect()
    }

    /// PUs for `n_sub` sub-threads of UPC thread `t` (the master's own
    /// bound PU first), chosen core-first from the thread's mask.
    ///
    /// Masters that share a mask (co-located UPC threads of one socket /
    /// node) keep their own bound PUs and split the *remaining* PUs of the
    /// mask into disjoint consecutive slices — master `k` of the domain
    /// gets its own PU plus slice `k` — so their pools never double-book a
    /// PU while capacity lasts. Beyond capacity the assignment wraps
    /// (time-shared PUs; the per-PU FIFO resource serializes the
    /// oversubscription).
    pub fn subthread_pus(&self, machine: &Machine, t: usize, n_sub: usize) -> Vec<PuId> {
        let mask = &self.masks[t];
        let own = self.assignment[t];
        // Core-first order within the mask: one PU per core, then SMT
        // siblings.
        let mut primary = Vec::new();
        let mut secondary = Vec::new();
        let mut seen_core = std::collections::HashSet::new();
        for pu in mask.iter() {
            if seen_core.insert(machine.pu_core(pu)) {
                primary.push(pu);
            } else {
                secondary.push(pu);
            }
        }
        let order: Vec<PuId> = primary.into_iter().chain(secondary).collect();
        // Co-located masters (same mask), in thread order; their bound PUs
        // are reserved for themselves.
        let domain: Vec<usize> = (0..self.n_threads)
            .filter(|&u| self.masks[u] == *mask)
            .collect();
        let k = domain
            .iter()
            .position(|&u| u == t)
            .expect("thread not found in its own domain");
        let reserved: Vec<PuId> = domain.iter().map(|&u| self.assignment[u]).collect();
        let free: Vec<PuId> = order
            .into_iter()
            .filter(|pu| !reserved.contains(pu))
            .collect();
        let mut pus = vec![own];
        if n_sub > 1 {
            let want = n_sub - 1;
            if free.is_empty() {
                // Degenerate: every PU is a master's PU; time-share them.
                pus.extend((0..want).map(|i| reserved[(k + 1 + i) % reserved.len()]));
            } else {
                let offset = k * want;
                pus.extend((0..want).map(|i| free[(offset + i) % free.len()]));
            }
        }
        pus
    }
}

/// PU fill order within a node for a policy: physical cores first, SMT
/// siblings afterwards.
fn node_pu_order(machine: &Machine, node: NodeId, policy: BindPolicy) -> Vec<PuId> {
    let spec = machine.spec();
    let sockets: Vec<_> = machine.node_sockets(node).collect();
    let mut first_pus: Vec<PuId> = Vec::new(); // one per core
    match policy {
        BindPolicy::PackedCores | BindPolicy::Unbound => {
            for &s in &sockets {
                for core in socket_cores(machine, s) {
                    first_pus.push(PuId(core * spec.smt_per_core));
                }
            }
        }
        BindPolicy::RoundRobinSockets => {
            for c in 0..spec.cores_per_socket {
                for &s in &sockets {
                    let core = s.0 * spec.cores_per_socket + c;
                    first_pus.push(PuId(core * spec.smt_per_core));
                }
            }
        }
    }
    let mut order = first_pus.clone();
    for smt in 1..spec.smt_per_core {
        for &p in &first_pus {
            order.push(PuId(p.0 + smt));
        }
    }
    order
}

fn socket_cores(machine: &Machine, s: SocketId) -> impl Iterator<Item = usize> {
    let per = machine.spec().cores_per_socket;
    s.0 * per..(s.0 + 1) * per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    fn lehman() -> Machine {
        Machine::new(MachineSpec::lehman())
    }

    #[test]
    fn packed_fills_cores_then_smt() {
        let m = lehman();
        let p = Placement::build(&m, 16, 1, BindPolicy::PackedCores);
        // First 8 threads on the 8 physical cores (PUs 0,2,4,...,14)
        for t in 0..8 {
            assert_eq!(p.thread_pu(t), PuId(t * 2), "thread {t}");
        }
        // Next 8 are the SMT siblings
        for t in 8..16 {
            assert_eq!(p.thread_pu(t), PuId((t - 8) * 2 + 1), "thread {t}");
        }
    }

    #[test]
    fn round_robin_alternates_sockets() {
        let m = lehman();
        let p = Placement::build(&m, 4, 1, BindPolicy::RoundRobinSockets);
        assert_eq!(p.thread_socket(&m, 0), SocketId(0));
        assert_eq!(p.thread_socket(&m, 1), SocketId(1));
        assert_eq!(p.thread_socket(&m, 2), SocketId(0));
        assert_eq!(p.thread_socket(&m, 3), SocketId(1));
    }

    #[test]
    fn threads_spread_over_nodes_blocked() {
        let m = lehman();
        let p = Placement::build(&m, 32, 4, BindPolicy::PackedCores);
        assert_eq!(p.threads_per_node(), 8);
        for t in 0..8 {
            assert_eq!(p.thread_node(&m, t), NodeId(0));
        }
        for t in 8..16 {
            assert_eq!(p.thread_node(&m, t), NodeId(1));
        }
        assert_eq!(p.node_threads(&m, NodeId(2)), vec![16, 17, 18, 19, 20, 21, 22, 23]);
    }

    #[test]
    fn co_location_levels() {
        let m = lehman();
        let p = Placement::build(&m, 32, 4, BindPolicy::PackedCores);
        assert_eq!(p.co_located(&m, 0, 1), Level::SameSocket);
        assert_eq!(p.co_located(&m, 0, 4), Level::SameNode);
        assert_eq!(p.co_located(&m, 0, 8), Level::Remote);
        // thread 8 (SMT partner of thread 0) would be SameCore on 16/node:
        let p16 = Placement::build(&m, 16, 1, BindPolicy::PackedCores);
        assert_eq!(p16.co_located(&m, 0, 8), Level::SameCore);
    }

    #[test]
    fn bound_masks_are_sockets_unbound_whole_node() {
        let m = lehman();
        let pb = Placement::build(&m, 2, 1, BindPolicy::RoundRobinSockets);
        assert_eq!(pb.thread_mask(0).count(), 8);
        assert!(pb.is_bound());
        let pu = Placement::build(&m, 2, 1, BindPolicy::Unbound);
        assert_eq!(pu.thread_mask(0).count(), 16);
        assert!(!pu.is_bound());
    }

    #[test]
    fn subthread_pus_master_first_cores_then_smt() {
        let m = lehman();
        let p = Placement::build(&m, 2, 1, BindPolicy::RoundRobinSockets);
        // Thread 1 is on socket 1 (PUs 8..16); its own PU is 8.
        let pus = p.subthread_pus(&m, 1, 8);
        assert_eq!(pus[0], p.thread_pu(1));
        assert_eq!(pus.len(), 8);
        // First 4 are distinct physical cores, last 4 are SMT siblings.
        let cores: std::collections::HashSet<_> =
            pus[..4].iter().map(|&pu| m.pu_core(pu)).collect();
        assert_eq!(cores.len(), 4);
        let cores2: std::collections::HashSet<_> =
            pus[4..].iter().map(|&pu| m.pu_core(pu)).collect();
        assert_eq!(cores2, cores);
    }

    #[test]
    #[should_panic(expected = "must divide evenly")]
    fn uneven_distribution_rejected() {
        let m = lehman();
        Placement::build(&m, 9, 4, BindPolicy::PackedCores);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscription_rejected() {
        let m = lehman();
        Placement::build(&m, 17, 1, BindPolicy::PackedCores);
    }
}
