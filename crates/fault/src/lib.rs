//! `hupc-fault` — deterministic, seeded fault injection for the simulated
//! fabric and CPUs.
//!
//! The thesis' UTS study runs on Pyramid's GigE network precisely because it
//! is the slow, lossy fabric where locality-aware algorithms matter. This
//! crate describes *how* lossy: a [`FaultPlan`] declares per-link packet-loss
//! probabilities, latency [`Jitter`] distributions, degraded-NIC time windows
//! and straggler nodes, all driven by a seeded PRNG so that every run is
//! bit-for-bit reproducible.
//!
//! Two invariants the rest of the stack relies on (and the property tests in
//! `tests/integration_props.rs` enforce):
//!
//! * **Zero plan = no plan.** A `FaultPlan` with zero loss, no jitter, no
//!   windows and no stragglers produces completion times identical to a run
//!   with no plan installed at all — the injector draws from its PRNG but
//!   adds nothing.
//! * **Same seed = same faults.** Two runs with the same plan (seed
//!   included) drop the same packets and add the same jitter.
//!
//! The plan is *consulted* by `hupc-net`'s `Fabric` (drop/jitter/NIC
//! degradation) and `hupc-gasnet`'s runtime (straggler CPU slowdown); the
//! retry/backoff machinery that *recovers* from these faults lives in
//! `hupc-gasnet`.

use hupc_sim::{time, SimCell, Time};

/// Latency jitter distribution added to each traversal of the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Jitter {
    /// No jitter (the default; preserves bit-identical timings).
    None,
    /// Uniform in `[0, max]`.
    Uniform { max: Time },
    /// Exponential with the given mean, truncated at `cap` (models
    /// congestion tails without unbounded outliers).
    Exp { mean: Time, cap: Time },
}

impl Jitter {
    fn sample(&self, u: f64) -> Time {
        match *self {
            Jitter::None => 0,
            Jitter::Uniform { max } => time::from_secs_f64(time::as_secs_f64(max) * u),
            Jitter::Exp { mean, cap } => {
                let t = -time::as_secs_f64(mean) * (1.0 - u).ln();
                time::from_secs_f64(t).min(cap)
            }
        }
    }
}

/// A time interval during which one node's NIC runs below line rate
/// (thermal throttling, a flapping link renegotiating, a misbehaving
/// firmware — the `nic_factor` spikes of a real cluster).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradedWindow {
    pub node: usize,
    pub from: Time,
    pub until: Time,
    /// Service-time multiplier while the window is open (≥ 1.0).
    pub nic_factor: f64,
}

/// Declarative description of every fault the simulated platform should
/// suffer. Build with the fluent methods; hand to `GasnetConfig::fault`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Baseline per-message drop probability for every inter-node link.
    default_loss: f64,
    /// Per-link `(src, dst, probability)` overrides.
    link_loss: Vec<(usize, usize, f64)>,
    jitter: Jitter,
    degraded: Vec<DegradedWindow>,
    /// `(node, slowdown)`: CPU work on `node` takes `slowdown`× as long.
    stragglers: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// A plan with the given PRNG seed and no faults (identity behavior).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_loss: 0.0,
            link_loss: Vec::new(),
            jitter: Jitter::None,
            degraded: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// Set the baseline packet-loss probability for every link.
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.default_loss = p;
        self
    }

    /// Override the loss probability of the directed link `src → dst`.
    pub fn link_loss(mut self, src: usize, dst: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.link_loss.push((src, dst, p));
        self
    }

    /// Set the per-traversal latency jitter distribution.
    pub fn jitter(mut self, j: Jitter) -> Self {
        self.jitter = j;
        self
    }

    /// Degrade `node`'s NIC by `nic_factor`× during `[from, until)`.
    pub fn degraded_nic(mut self, node: usize, from: Time, until: Time, nic_factor: f64) -> Self {
        assert!(nic_factor >= 1.0, "nic degradation factor must be >= 1");
        self.degraded.push(DegradedWindow {
            node,
            from,
            until,
            nic_factor,
        });
        self
    }

    /// Slow all CPU work on `node` down by `slowdown`× (a straggler).
    pub fn straggler(mut self, node: usize, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "straggler slowdown must be >= 1");
        self.stragglers.push((node, slowdown));
        self
    }

    /// The PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Effective loss probability of the directed link `src → dst`.
    pub fn loss_for(&self, src: usize, dst: usize) -> f64 {
        self.link_loss
            .iter()
            .rev() // later overrides win
            .find(|&&(s, d, _)| s == src && d == dst)
            .map(|&(_, _, p)| p)
            .unwrap_or(self.default_loss)
    }

    /// NIC service-time multiplier for `node` at virtual time `now`
    /// (product of all open windows; 1.0 when none).
    pub fn nic_factor(&self, node: usize, now: Time) -> f64 {
        self.degraded
            .iter()
            .filter(|w| w.node == node && w.from <= now && now < w.until)
            .map(|w| w.nic_factor)
            .product::<f64>()
            .max(1.0)
    }

    /// CPU slowdown factor for `node` (1.0 for healthy nodes).
    pub fn cpu_slowdown(&self, node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, s)| s)
            .product::<f64>()
            .max(1.0)
    }

    /// Whether this plan can never perturb a run (identity plan).
    pub fn is_identity(&self) -> bool {
        self.default_loss == 0.0
            && self.link_loss.iter().all(|&(_, _, p)| p == 0.0)
            && self.jitter == Jitter::None
            && self.degraded.is_empty()
            && self.stragglers.is_empty()
    }
}

/// Outcome of consulting the injector for one wire traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Xmit {
    /// The packet is lost: it never reaches the destination NIC.
    pub dropped: bool,
    /// Extra latency added on top of the conduit's wire latency.
    pub jitter: Time,
}

/// splitmix64 — a tiny, high-quality, seedable PRNG. Deterministic across
/// platforms; the whole fault layer's randomness flows through one instance.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The stateful runtime companion of a [`FaultPlan`]: owns the PRNG.
///
/// Shared (via `Arc`) between the fabric and the runtime; interior
/// mutability through [`SimCell`] is safe because the simulation engine
/// serializes all actor execution.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimCell<SplitMix64>,
    /// Wire traversals this injector actually perturbed (dropped or
    /// jittered). Monotonic; a pure function of the drawn stream, so it is
    /// as deterministic as the faults themselves.
    perturbations: SimCell<u64>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimCell::new(SplitMix64(plan.seed));
        FaultInjector {
            plan,
            rng,
            perturbations: SimCell::new(0),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of traversals perturbed so far (drops + nonzero jitter).
    ///
    /// Request-serving layers snapshot this around each request to *tag* the
    /// requests a fault actually touched — the clean/faulted latency split
    /// that turns a fault plan into a tail-latency experiment. Stragglers and
    /// degraded-NIC windows are not draws; consult
    /// [`FaultPlan::cpu_slowdown`] / [`FaultPlan::nic_factor`] for those.
    pub fn perturbations(&self) -> u64 {
        self.perturbations.get()
    }

    /// Decide the fate of one wire traversal `src → dst`. Always draws the
    /// same number of PRNG values regardless of the plan's parameters, so
    /// changing a probability never shifts the random stream of unrelated
    /// links.
    pub fn xmit(&self, src: usize, dst: usize) -> Xmit {
        let (u_loss, u_jitter) = self.rng.with_mut(|r| (r.next_f64(), r.next_f64()));
        let dropped = u_loss < self.plan.loss_for(src, dst);
        let jitter = self.plan.jitter.sample(u_jitter);
        if dropped || jitter > 0 {
            self.perturbations.with_mut(|p| *p += 1);
        }
        Xmit { dropped, jitter }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_plan_never_perturbs() {
        let inj = FaultInjector::new(FaultPlan::new(42));
        assert!(inj.plan().is_identity());
        for _ in 0..1000 {
            let x = inj.xmit(0, 1);
            assert!(!x.dropped);
            assert_eq!(x.jitter, 0);
        }
        assert_eq!(inj.plan().nic_factor(0, time::ms(5)), 1.0);
        assert_eq!(inj.plan().cpu_slowdown(3), 1.0);
    }

    #[test]
    fn same_seed_same_stream() {
        let mk = || FaultInjector::new(FaultPlan::new(7).loss(0.3).jitter(Jitter::Uniform {
            max: time::us(50),
        }));
        let (a, b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.xmit(0, 1), b.xmit(0, 1));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::new(1).loss(0.5));
        let b = FaultInjector::new(FaultPlan::new(2).loss(0.5));
        let same = (0..256)
            .filter(|_| a.xmit(0, 1).dropped == b.xmit(0, 1).dropped)
            .count();
        assert!(same < 256, "streams should diverge");
    }

    #[test]
    fn loss_rate_approximates_probability() {
        let inj = FaultInjector::new(FaultPlan::new(99).loss(0.25));
        let n = 10_000;
        let drops = (0..n).filter(|_| inj.xmit(0, 1).dropped).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn link_override_beats_default() {
        let p = FaultPlan::new(0).loss(0.1).link_loss(2, 3, 0.9).link_loss(2, 3, 0.4);
        assert_eq!(p.loss_for(0, 1), 0.1);
        assert_eq!(p.loss_for(2, 3), 0.4); // later override wins
        assert_eq!(p.loss_for(3, 2), 0.1); // directed
    }

    #[test]
    fn degraded_window_is_half_open() {
        let p = FaultPlan::new(0).degraded_nic(1, time::us(10), time::us(20), 3.0);
        assert_eq!(p.nic_factor(1, time::us(9)), 1.0);
        assert_eq!(p.nic_factor(1, time::us(10)), 3.0);
        assert_eq!(p.nic_factor(1, time::us(19)), 3.0);
        assert_eq!(p.nic_factor(1, time::us(20)), 1.0);
        assert_eq!(p.nic_factor(0, time::us(15)), 1.0);
    }

    #[test]
    fn overlapping_windows_compound() {
        let p = FaultPlan::new(0)
            .degraded_nic(0, 0, time::ms(1), 2.0)
            .degraded_nic(0, 0, time::ms(1), 1.5);
        assert_eq!(p.nic_factor(0, time::us(1)), 3.0);
    }

    #[test]
    fn jitter_respects_bounds() {
        let inj = FaultInjector::new(
            FaultPlan::new(5).jitter(Jitter::Uniform { max: time::us(10) }),
        );
        for _ in 0..1000 {
            assert!(inj.xmit(0, 1).jitter <= time::us(10));
        }
        let exp = FaultInjector::new(FaultPlan::new(5).jitter(Jitter::Exp {
            mean: time::us(5),
            cap: time::us(40),
        }));
        for _ in 0..1000 {
            assert!(exp.xmit(0, 1).jitter <= time::us(40));
        }
    }

    #[test]
    fn straggler_factors_compound() {
        let p = FaultPlan::new(0).straggler(2, 2.0).straggler(2, 1.5);
        assert_eq!(p.cpu_slowdown(2), 3.0);
        assert_eq!(p.cpu_slowdown(0), 1.0);
    }

    #[test]
    fn empty_window_is_never_open() {
        // from == until: the half-open interval [t, t) contains nothing.
        let p = FaultPlan::new(0).degraded_nic(0, time::us(10), time::us(10), 5.0);
        for t in [0, time::us(9), time::us(10), time::us(11)] {
            assert_eq!(p.nic_factor(0, t), 1.0);
        }
    }

    #[test]
    fn windows_are_per_node() {
        let p = FaultPlan::new(0)
            .degraded_nic(0, 0, time::ms(1), 2.0)
            .degraded_nic(1, 0, time::ms(1), 3.0);
        assert_eq!(p.nic_factor(0, time::us(1)), 2.0);
        assert_eq!(p.nic_factor(1, time::us(1)), 3.0);
        assert_eq!(p.nic_factor(2, time::us(1)), 1.0);
    }

    #[test]
    fn disjoint_windows_do_not_leak() {
        let p = FaultPlan::new(0)
            .degraded_nic(0, time::us(0), time::us(10), 2.0)
            .degraded_nic(0, time::us(20), time::us(30), 4.0);
        assert_eq!(p.nic_factor(0, time::us(5)), 2.0);
        assert_eq!(p.nic_factor(0, time::us(15)), 1.0); // gap
        assert_eq!(p.nic_factor(0, time::us(25)), 4.0);
    }

    /// Changing the loss probability must not shift the jitter stream:
    /// `xmit` always draws exactly two PRNG values, so unrelated fault
    /// parameters stay statistically independent and runs stay comparable
    /// across plan edits.
    #[test]
    fn loss_probability_does_not_shift_jitter_stream() {
        let j = Jitter::Uniform { max: time::us(20) };
        let lossless = FaultInjector::new(FaultPlan::new(77).jitter(j));
        let lossy = FaultInjector::new(FaultPlan::new(77).loss(0.9).jitter(j));
        for _ in 0..1000 {
            assert_eq!(lossless.xmit(0, 1).jitter, lossy.xmit(0, 1).jitter);
        }
    }

    /// Same for link overrides: adding an override on one link must not
    /// perturb the drop decisions observed on another.
    #[test]
    fn link_override_does_not_shift_other_links() {
        let base = FaultInjector::new(FaultPlan::new(5).loss(0.5));
        let with_override = FaultInjector::new(FaultPlan::new(5).loss(0.5).link_loss(8, 9, 1.0));
        for _ in 0..1000 {
            assert_eq!(base.xmit(0, 1).dropped, with_override.xmit(0, 1).dropped);
        }
    }

    #[test]
    fn exp_jitter_same_seed_is_deterministic() {
        let mk = || {
            FaultInjector::new(FaultPlan::new(13).jitter(Jitter::Exp {
                mean: time::us(4),
                cap: time::us(64),
            }))
        };
        let (a, b) = (mk(), mk());
        let mut nonzero = 0;
        for _ in 0..1000 {
            let (xa, xb) = (a.xmit(1, 0), b.xmit(1, 0));
            assert_eq!(xa, xb);
            nonzero += (xa.jitter > 0) as u32;
        }
        assert!(nonzero > 900, "exp jitter almost always positive, saw {nonzero}");
    }

    /// The perturbation counter advances exactly when a traversal is
    /// dropped or jittered — never on clean deliveries — and two same-seed
    /// injectors agree on it draw for draw.
    #[test]
    fn perturbation_counter_tracks_actual_faults() {
        let clean = FaultInjector::new(FaultPlan::new(3));
        for _ in 0..100 {
            clean.xmit(0, 1);
        }
        assert_eq!(clean.perturbations(), 0);

        let mk = || FaultInjector::new(FaultPlan::new(8).loss(0.3));
        let (a, b) = (mk(), mk());
        let mut manual = 0;
        for _ in 0..500 {
            let (xa, xb) = (a.xmit(0, 1), b.xmit(0, 1));
            assert_eq!(xa, xb);
            manual += xa.dropped as u64;
            assert_eq!(a.perturbations(), manual);
            assert_eq!(b.perturbations(), manual);
        }
        assert!(manual > 0, "0.3 loss over 500 draws must drop something");

        let jittery = FaultInjector::new(
            FaultPlan::new(8).jitter(Jitter::Uniform { max: time::us(10) }),
        );
        let mut touched = 0;
        for _ in 0..200 {
            touched += (jittery.xmit(1, 0).jitter > 0) as u64;
        }
        assert_eq!(jittery.perturbations(), touched);
    }

    #[test]
    fn is_identity_tracks_every_knob() {
        assert!(FaultPlan::new(9).is_identity());
        assert!(FaultPlan::new(9).loss(0.0).is_identity());
        assert!(FaultPlan::new(9).link_loss(0, 1, 0.0).is_identity());
        assert!(!FaultPlan::new(9).loss(0.1).is_identity());
        assert!(!FaultPlan::new(9).link_loss(0, 1, 0.2).is_identity());
        assert!(!FaultPlan::new(9)
            .jitter(Jitter::Uniform { max: time::ns(1) })
            .is_identity());
        assert!(!FaultPlan::new(9).degraded_nic(0, 0, 1, 1.5).is_identity());
        assert!(!FaultPlan::new(9).straggler(0, 2.0).is_identity());
    }
}
