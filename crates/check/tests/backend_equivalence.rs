//! Thread→coroutine equivalence pins: the coroutine actor core must be
//! observationally identical to the one-OS-thread-per-actor backend it
//! replaced. Same `(t, seq)` total order in the kernel event log, same
//! policy decision logs, same corpus `.schedule` replays — byte for byte.
//!
//! (The committed golden JSONL traces in `tests/golden/` are the other half
//! of this pin: they were blessed under the thread backend and must keep
//! passing under the coroutine default.)

use std::sync::{Arc, Mutex};

use hupc_check::{find_scenario, Artifact, Decision, PolicyHandle, ARTIFACT_EXT};
use hupc_sim::{
    set_actor_backend_default, time, ActorBackend, SimCell, Simulation, TraceEvent,
};
use proptest::prelude::*;

/// Run `f` with the process-wide default backend forced to `b`, restoring
/// the auto default afterwards (even on panic). Serialized so concurrent
/// tests in this binary don't fight over the global.
fn with_backend<T>(b: ActorBackend, f: impl FnOnce() -> T) -> T {
    static LOCK: Mutex<()> = Mutex::new(());
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_actor_backend_default(None);
        }
    }
    let _r = Restore;
    set_actor_backend_default(Some(b));
    f()
}

/// The tie-rich workload from `determinism.rs`, parameterized over the
/// actor backend via the per-simulation override.
fn tie_rich_run(
    seed: u64,
    backend: ActorBackend,
) -> (Vec<TraceEvent>, u64, u64, Vec<Decision>) {
    let mut sim = Simulation::new();
    sim.set_actor_backend(backend);
    let policy = PolicyHandle::random(seed);
    let m = {
        let mut k = sim.kernel();
        policy.install(&mut k);
        k.record_event_log(true);
        k.new_mutex()
    };
    let counter = Arc::new(SimCell::new(0u64));
    for a in 0..4 {
        let c = Arc::clone(&counter);
        sim.spawn(format!("worker{a}"), move |ctx| {
            for _ in 0..6 {
                ctx.advance(time::ns(10));
                ctx.mutex_lock(m);
                let v = c.get();
                ctx.advance(time::ns(2));
                c.set(v + 1);
                ctx.mutex_unlock(m);
            }
        });
    }
    let stats = sim.run_result().expect("workload cannot deadlock");
    let log = sim.kernel().take_event_log();
    (log, stats.end_time, counter.get(), policy.log())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same explored schedule on coroutines vs OS threads: byte-identical
    /// kernel event log, end time, end state, and decision log.
    #[test]
    fn backends_agree_on_explored_schedules(seed in any::<u64>()) {
        let coro = tie_rich_run(seed, ActorBackend::Coroutine);
        let os = tie_rich_run(seed, ActorBackend::OsThread);
        prop_assert_eq!(&coro.0, &os.0, "event logs diverged for seed {}", seed);
        prop_assert_eq!(coro.1, os.1, "end times diverged");
        prop_assert_eq!(coro.2, os.2, "counter diverged");
        prop_assert_eq!(coro.3, os.3, "decision logs diverged");
    }
}

/// Every committed corpus `.schedule` reproduces the *same* violation on
/// both backends: same kind, same detail string.
#[test]
fn corpus_replays_identically_on_both_backends() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir must exist") {
        let path = entry.unwrap().path();
        if !path.extension().is_some_and(|x| x == ARTIFACT_EXT) {
            continue;
        }
        let art = Artifact::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let replay = |b| {
            with_backend(b, || {
                let v = art
                    .replay()
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                format!("{:?}", v)
            })
        };
        assert_eq!(
            replay(ActorBackend::Coroutine),
            replay(ActorBackend::OsThread),
            "{}: backends disagree on the replayed violation",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 2, "corpus should hold the two mutation schedules");
}

/// Full-stack UPC scenarios, explored with the same policy seed on both
/// backends: identical end state, end time, and tie-break decisions.
#[test]
fn scenarios_agree_across_backends() {
    for name in ["split_barrier", "allreduce2", "retry_loss"] {
        let s = find_scenario(name).unwrap();
        for seed in [1u64, 7, 42] {
            let run = |b| {
                with_backend(b, || {
                    let p = PolicyHandle::random(seed);
                    let out = s.run(&p, 0, true);
                    assert!(
                        out.violation.is_none(),
                        "{name} seed {seed}: {:?}",
                        out.violation
                    );
                    (out.end_state, out.end_time, out.decisions)
                })
            };
            assert_eq!(
                run(ActorBackend::Coroutine),
                run(ActorBackend::OsThread),
                "{name} seed {seed}: backend changed the run"
            );
        }
    }
}
