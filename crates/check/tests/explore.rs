//! End-to-end explorer tests: the seeded mutations must be caught, shrunk
//! to tiny deterministic schedules, and the committed corpus must replay;
//! the real runtime scenarios must hold their invariants under a modest
//! bounded exploration.

use hupc_check::{
    all_scenarios, explore, find_scenario, Artifact, ExploreConfig, PolicyHandle,
    ARTIFACT_EXT,
};

fn quick(budget: usize) -> ExploreConfig {
    ExploreConfig {
        budget,
        seed: 0xDECAF,
        shrink_budget: 200,
        ..ExploreConfig::default()
    }
}

/// Both seeded ordering bugs are found, shrink to at most two decisions,
/// and replay deterministically.
#[test]
fn mutations_are_caught_shrunk_and_replayable() {
    for s in all_scenarios().iter().filter(|s| s.is_mutation()) {
        let report = explore(s.as_ref(), &quick(64));
        assert_eq!(
            report.failures.len(),
            1,
            "{}: expected exactly one (stop-on-first) failure, got {:?}",
            s.name(),
            report.failures
        );
        let f = &report.failures[0];
        assert!(
            !f.minimal.is_empty() && f.minimal.len() <= 2,
            "{}: minimal schedule should be 1-2 decisions, got {:?}",
            s.name(),
            f.minimal
        );
        assert!(f.replay_ok, "{}: minimal schedule replay was unstable", s.name());

        // The serialized artifact round-trips and reproduces.
        let art = Artifact::from_failure(f, true);
        let reparsed = Artifact::parse(&art.serialize()).unwrap();
        assert_eq!(art, reparsed);
        let v = reparsed.replay().expect("artifact must reproduce");
        assert_eq!(v.kind, f.violation.kind);

        // Two independent replays of the minimal prefix are identical.
        let run = || {
            let p = PolicyHandle::prefix(&f.minimal);
            let out = s.run(&p, f.fault, true);
            (out.violation.map(|v| v.kind), hupc_check::log_hash(&out.decisions))
        };
        assert_eq!(run(), run(), "{}: replay is not deterministic", s.name());
    }
}

/// The real runtime scenarios hold their oracles over a bounded exploration
/// (systematic + random stages) and expose a genuinely branchy space.
#[test]
fn runtime_invariants_hold_under_exploration() {
    for s in all_scenarios().iter().filter(|s| !s.is_mutation()) {
        let report = explore(s.as_ref(), &quick(16));
        assert!(
            report.failures.is_empty(),
            "{}: schedule exploration found a violation: {:?}",
            s.name(),
            report.failures
        );
        assert!(
            report.distinct >= 8,
            "{}: only {} distinct schedules out of {} runs — the scenario \
             has lost its tie-richness",
            s.name(),
            report.distinct,
            report.runs
        );
    }
}

/// Every committed corpus entry still reproduces its recorded violation.
#[test]
fn corpus_entries_replay() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir must exist") {
        let path = entry.unwrap().path();
        if !path.extension().is_some_and(|x| x == ARTIFACT_EXT) {
            continue;
        }
        let art = Artifact::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        art.replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        checked += 1;
    }
    assert!(checked >= 2, "corpus should hold the two mutation schedules");
}

/// An explicitly perturbed UTS schedule still counts every tree node —
/// spot check that the policy seam reaches all the way into the benchmark.
#[test]
fn uts_perturbed_prefix_counts_exactly() {
    let s = find_scenario("uts_steal").unwrap();
    for prefix in [vec![1], vec![0, 2, 1], vec![3, 3, 3, 3]] {
        let p = PolicyHandle::prefix(&prefix);
        let out = s.run(&p, 0, true);
        assert!(
            out.violation.is_none(),
            "prefix {prefix:?} broke the UTS count: {:?}",
            out.violation
        );
    }
}
