//! Schedule-perturbation determinism (property tests):
//!
//! 1. The same `SchedulePolicy` seed yields a byte-identical kernel event
//!    log — a perturbed run is still a fully deterministic run.
//! 2. The scheduler-bypass fast path is invisible to exploration: the same
//!    policy seed with the fast path on and off produces the identical
//!    event log, decision log, end state and end time.

use std::sync::Arc;

use hupc_check::{find_scenario, Decision, PolicyHandle};
use hupc_sim::{time, SimCell, Simulation, TraceEvent};
use proptest::prelude::*;

/// A tie-rich raw-sim workload: four workers advance in lockstep (every
/// wake ties) and fight over a mutex-protected counter. Returns the full
/// kernel event log, the end time, the counter, and the decision log.
fn tie_rich_run(seed: u64, fast_path: bool) -> (Vec<TraceEvent>, u64, u64, Vec<Decision>) {
    let mut sim = Simulation::new();
    let policy = PolicyHandle::random(seed);
    let m = {
        let mut k = sim.kernel();
        policy.install(&mut k);
        k.set_fast_path(fast_path);
        k.record_event_log(true);
        k.new_mutex()
    };
    let counter = Arc::new(SimCell::new(0u64));
    for a in 0..4 {
        let c = Arc::clone(&counter);
        sim.spawn(format!("worker{a}"), move |ctx| {
            for _ in 0..6 {
                ctx.advance(time::ns(10));
                ctx.mutex_lock(m);
                let v = c.get();
                ctx.advance(time::ns(2));
                c.set(v + 1);
                ctx.mutex_unlock(m);
            }
        });
    }
    let stats = sim.run_result().expect("workload cannot deadlock");
    let log = sim.kernel().take_event_log();
    (log, stats.end_time, counter.get(), policy.log())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, two fresh simulations: byte-identical event logs.
    #[test]
    fn same_seed_same_trace(seed in any::<u64>()) {
        let a = tie_rich_run(seed, true);
        let b = tie_rich_run(seed, true);
        prop_assert_eq!(&a.0, &b.0, "event logs diverged for seed {}", seed);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.3, b.3);
    }

    /// Fast path on vs off under the same explored schedule: identical
    /// event log (bypassed events are logged as the scheduler would have),
    /// identical decisions, identical end state.
    #[test]
    fn fast_path_is_invisible_to_exploration(seed in any::<u64>()) {
        let on = tie_rich_run(seed, true);
        let off = tie_rich_run(seed, false);
        prop_assert_eq!(&on.0, &off.0, "event logs diverged for seed {}", seed);
        prop_assert_eq!(on.1, off.1, "end times diverged");
        prop_assert_eq!(on.2, off.2, "counter diverged");
        prop_assert_eq!(on.3, off.3, "decision logs diverged");
    }

    /// The mutex keeps the counter exact on every explored schedule.
    #[test]
    fn mutex_counter_is_exact_under_perturbation(seed in any::<u64>()) {
        let (_, _, counter, _) = tie_rich_run(seed, true);
        prop_assert_eq!(counter, 24);
    }
}

/// Full-stack fast-path agreement: explored runs of the UPC scenarios end
/// in the same state with the bypass on and off.
#[test]
fn scenarios_agree_across_fast_path() {
    for name in ["split_barrier", "allreduce2", "retry_loss"] {
        let s = find_scenario(name).unwrap();
        for seed in [1u64, 7, 42] {
            let run = |fast: bool| {
                let p = PolicyHandle::random(seed);
                let out = s.run(&p, 0, fast);
                assert!(
                    out.violation.is_none(),
                    "{name} seed {seed} fast={fast}: {:?}",
                    out.violation
                );
                (out.end_state, out.end_time, out.decisions)
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on, off, "{name} seed {seed}: fast path changed the run");
        }
    }
}
