//! Sequential→parallel equivalence pins: the conservative parallel engine
//! must be observationally identical to the sequential scheduler it
//! parallelizes. Single-LP simulations (every existing app) must be
//! *bit*-identical — same event log, same stats, same bypass decisions —
//! because one LP on one worker runs the exact same protocol. Multi-LP
//! simulations must agree on the committed `(t, seq)`-sorted event log and
//! every virtual-time observable; only host-side counters (bypass hits,
//! handoffs, heap ops) may differ.
//!
//! Corpus `.schedule` replays and policy-driven scenarios are pinned too: a
//! schedule policy forces the sequential dispatch loop regardless of the
//! configured backend, so replays are backend-independent by construction —
//! these tests keep that contract honest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hupc_check::{find_scenario, Artifact, PolicyHandle, ARTIFACT_EXT};
use hupc_sim::{
    set_sim_backend_default, time, SimBackend, Simulation, Time, TraceEvent,
};
use proptest::prelude::*;

/// Run `f` with the process-wide default sim backend forced to `b`,
/// restoring auto afterwards (even on panic). Serialized so concurrent
/// tests in this binary don't fight over the global.
fn with_sim_backend<T>(b: SimBackend, f: impl FnOnce() -> T) -> T {
    static LOCK: Mutex<()> = Mutex::new(());
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_sim_backend_default(None);
        }
    }
    let _r = Restore;
    set_sim_backend_default(Some(b));
    f()
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A randomized workload over `lps` logical processes: per-LP mutex and
/// resource contention (the intra-LP fast path), plus cross-LP
/// fire-and-forget spawns when partitioned (the lookahead-bounded slow
/// path). Returns every deterministic observable.
fn partitioned_run(
    seed: u64,
    lps: usize,
    backend: SimBackend,
) -> (Vec<TraceEvent>, Time, u64, u64, usize) {
    let mut sim = Simulation::new();
    sim.set_sim_backend(backend);
    sim.set_lp_count(lps);
    sim.set_lookahead(time::us(1));
    sim.kernel().record_event_log(true);
    // Order-independent end-state witness (atomic sum over all actors).
    let total = Arc::new(AtomicU64::new(0));
    for lp in 0..lps {
        let (m, res) = {
            let mut k = sim.kernel();
            (k.new_mutex(), k.new_resource(format!("r{lp}")))
        };
        let mut s = seed ^ (lp as u64).wrapping_mul(0xA5A5_A5A5);
        let n_actors = 2 + (splitmix(&mut s) % 2) as usize;
        for a in 0..n_actors {
            let total = Arc::clone(&total);
            let mut rng = splitmix(&mut s);
            sim.spawn_on(lp, format!("lp{lp}a{a}"), move |ctx| {
                for _ in 0..5 {
                    ctx.advance(time::ns(1 + splitmix(&mut rng) % 40));
                    ctx.mutex_lock(m);
                    ctx.advance(time::ns(1 + splitmix(&mut rng) % 5));
                    ctx.mutex_unlock(m);
                    ctx.acquire(res, time::ns(10 + splitmix(&mut rng) % 30));
                    total.fetch_add(1, Ordering::Relaxed);
                }
                if a == 0 && ctx.lp() + 1 < lps {
                    // Cross-LP child: starts at `now + lookahead`.
                    let t2 = Arc::clone(&total);
                    let mut r2 = splitmix(&mut rng);
                    ctx.spawn_on(ctx.lp() + 1, format!("x{lp}"), move |c| {
                        c.advance(time::ns(1 + splitmix(&mut r2) % 20));
                        t2.fetch_add(100, Ordering::Relaxed);
                    });
                }
            });
        }
    }
    let stats = sim.run_result().expect("workload cannot deadlock");
    let log = sim.kernel().take_event_log();
    (
        log,
        stats.end_time,
        stats.events,
        total.load(Ordering::Relaxed),
        stats.actors,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random partitioned workloads: Sequential and Parallel(1/2/4) agree
    /// on the sorted kernel event log, end time, event count, actor count
    /// and end state — for every partition width.
    #[test]
    fn parallel_backends_agree_on_partitioned_runs(
        seed in any::<u64>(),
        lps_raw in 1u64..5,
    ) {
        let lps = lps_raw as usize;
        let seq = partitioned_run(seed, lps, SimBackend::Sequential);
        for n in [1usize, 2, 4] {
            let par = partitioned_run(seed, lps, SimBackend::Parallel(n));
            prop_assert_eq!(
                &seq.0, &par.0,
                "event logs diverged: seed {} lps {} workers {}", seed, lps, n
            );
            prop_assert_eq!(seq.1, par.1, "end time diverged");
            prop_assert_eq!(seq.2, par.2, "event count diverged");
            prop_assert_eq!(seq.3, par.3, "end state diverged");
            prop_assert_eq!(seq.4, par.4, "actor count diverged");
        }
    }
}

/// Every committed corpus `.schedule` reproduces the *same* violation under
/// the parallel backend default for n ∈ {1, 2, 4} as under sequential
/// (replays install a policy, which pins dispatch to the sequential loop —
/// this test keeps schedules portable across backend configuration).
#[test]
fn corpus_replays_identically_under_parallel_defaults() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir must exist") {
        let path = entry.unwrap().path();
        if !path.extension().is_some_and(|x| x == ARTIFACT_EXT) {
            continue;
        }
        let art = Artifact::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let replay = |b| {
            with_sim_backend(b, || {
                let v = art
                    .replay()
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                format!("{v:?}")
            })
        };
        let seq = replay(SimBackend::Sequential);
        for n in [1usize, 2, 4] {
            assert_eq!(
                seq,
                replay(SimBackend::Parallel(n)),
                "{}: Parallel({n}) disagrees on the replayed violation",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(checked >= 2, "corpus should hold the two mutation schedules");
}

/// Full-stack UPC scenarios explored with the same policy seed under
/// sequential and parallel defaults: identical end state, end time and
/// tie-break decisions.
#[test]
fn scenarios_agree_under_parallel_defaults() {
    for name in ["split_barrier", "allreduce2", "retry_loss", "serve_kv"] {
        let s = find_scenario(name).unwrap();
        for seed in [1u64, 7, 42] {
            let run = |b| {
                with_sim_backend(b, || {
                    let p = PolicyHandle::random(seed);
                    let out = s.run(&p, 0, true);
                    assert!(
                        out.violation.is_none(),
                        "{name} seed {seed}: {:?}",
                        out.violation
                    );
                    (out.end_state, out.end_time, out.decisions)
                })
            };
            let seq = run(SimBackend::Sequential);
            assert_eq!(
                seq,
                run(SimBackend::Parallel(4)),
                "{name} seed {seed}: parallel default changed the run"
            );
        }
    }
}

/// Single-LP simulations under `Parallel(n)` run the full worker machinery
/// on one worker and must be *bit*-identical to sequential — stats and
/// bypass decisions included, which is what keeps the committed golden
/// JSONL traces backend-independent.
#[test]
fn single_lp_parallel_is_bit_identical_including_stats() {
    let run = |backend| {
        let mut sim = Simulation::new();
        sim.set_sim_backend(backend);
        sim.kernel().record_event_log(true);
        let bar = sim.kernel().new_barrier(3);
        for id in 0..3u64 {
            sim.spawn(format!("w{id}"), move |ctx| {
                for i in 0..8 {
                    ctx.advance(time::ns(7 + id * 3 + i));
                    ctx.barrier_wait(bar);
                }
            });
        }
        let stats = sim.run();
        let log = sim.kernel().take_event_log();
        (log, stats)
    };
    let seq = run(SimBackend::Sequential);
    for n in [1usize, 2, 4] {
        assert_eq!(seq, run(SimBackend::Parallel(n)), "Parallel({n}) diverged");
    }
}

/// The serving path end to end: same seed ⇒ byte-identical open-loop
/// arrival schedules, identical request logs, end state, and latency
/// histograms — across repeat runs and across `Sequential` vs
/// `Parallel(4)` process defaults (the PGAS job is single-LP, so the
/// parallel backend must leave it bit-identical).
#[test]
fn serving_runs_identically_under_parallel_defaults() {
    use hupc_serve::{encode_schedule, run_serve, ServeConfig, ShardMap};

    let cfg = ServeConfig::small(0xD1CE);
    let shard = ShardMap::flat(8, cfg.partitions_per_thread, cfg.keys_per_partition);
    let schedules: Vec<Vec<u8>> = (0..8)
        .map(|f| encode_schedule(&cfg.traffic.schedule_for(f, &shard)))
        .collect();
    let run = |b| {
        with_sim_backend(b, || {
            // The arrival schedule is generated inside the run too; pin the
            // pre-materialized bytes against regeneration under this backend.
            for (f, bytes) in schedules.iter().enumerate() {
                assert_eq!(
                    bytes,
                    &encode_schedule(&cfg.traffic.schedule_for(f, &shard)),
                    "frontend {f}: schedule bytes changed under {b:?}"
                );
            }
            let r = run_serve(cfg.clone());
            assert_eq!(r.completed + r.shed + r.failed, r.generated);
            (r.records, r.committed, r.hist, r.end_state, r.end_time)
        })
    };
    let seq = run(SimBackend::Sequential);
    let rerun = run(SimBackend::Sequential);
    assert_eq!(seq, rerun, "sequential serving run not reproducible");
    let par = run(SimBackend::Parallel(4));
    assert_eq!(seq, par, "parallel backend changed the serving run");
}

/// The multi-LP serving model (one LP per node) must agree across
/// sequential and parallel backends on every virtual-time observable:
/// request log, latency histogram, counts, end time.
#[test]
fn serving_model_agrees_across_backends() {
    use hupc_serve::{run_model, ModelConfig};

    let base = run_model(ModelConfig::small(0xAB, SimBackend::Sequential));
    assert_eq!(base.completed, base.generated);
    for workers in [1usize, 2, 4] {
        let par = run_model(ModelConfig::small(0xAB, SimBackend::Parallel(workers)));
        assert_eq!(par.log, base.log, "{workers} workers: request log diverged");
        assert_eq!(par.hist, base.hist, "{workers} workers: histogram diverged");
        assert_eq!(par.end_time, base.end_time);
        assert_eq!(
            (par.generated, par.completed, par.shed),
            (base.generated, base.completed, base.shed)
        );
    }
}
