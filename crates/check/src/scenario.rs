//! Checkable scenarios: small, tie-rich workloads over the runtime stack,
//! each paired with an invariant oracle.
//!
//! A scenario owns everything about one run: it builds the simulation (raw
//! `hupc-sim` actors, a `UpcJob`, or a full UTS run), installs the policy
//! handle into the kernel via the pre-run seam, selects a fault plan, and
//! evaluates its oracle over the end state. The explorer only sees
//! [`Outcome`]s, so adding a scenario is the whole integration surface.
//!
//! Two scenarios are *mutations* — deliberately seeded ordering bugs
//! (`lost_update`, `missed_notify`) whose default schedule passes but which
//! some perturbed tie order breaks. They keep the harness honest: `hupc-check
//! mutation` fails CI unless both are found, shrunk and replayed.

use std::sync::{Arc, Mutex};

use hupc_coll::{CollAlgo, CollDomain, CollPlan};
use hupc_gasnet::FaultPlan;
use hupc_sim::{time, SimCell, SimError, Simulation, Time};
use hupc_upc::{UpcConfig, UpcJob};
use hupc_uts::{sequential_traverse, run_uts_prepared, StealStrategy, UtsConfig};

use crate::policy::{Decision, PolicyHandle};
use crate::rng::Fnv64;

/// What kind of invariant a schedule broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// An oracle over application state failed (lost update, wrong
    /// collective result, node-count mismatch, …).
    State,
    /// The run deadlocked where no deadlock is permitted.
    Deadlock,
    /// An actor panicked under the perturbed schedule.
    Panic,
}

impl ViolationKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::State => "state",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Panic => "panic",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "state" => Some(ViolationKind::State),
            "deadlock" => Some(ViolationKind::Deadlock),
            "panic" => Some(ViolationKind::Panic),
            _ => None,
        }
    }
}

/// An invariant violation observed on one schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    pub detail: String,
}

/// The result of running one schedule of one scenario.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Fingerprint of the application-visible end state (plus virtual end
    /// time). Two runs that agree here finished in the same state — used by
    /// the fast-path-agreement tests. Zero when the run failed.
    pub end_state: u64,
    /// Virtual time when the simulation finished (or failed).
    pub end_time: Time,
    /// Tie-break decisions the policy was consulted for.
    pub decisions: Vec<Decision>,
    pub violation: Option<Violation>,
}

/// A workload + oracle that the explorer can drive through the
/// [`hupc_sim::SchedulePolicy`] seam.
pub trait Scenario: Send + Sync {
    /// Stable identifier (used in artifacts and on the CLI).
    fn name(&self) -> &'static str;

    /// One-line description for `hupc-check list`.
    fn about(&self) -> &'static str;

    /// True for deliberately seeded ordering bugs: the explorer *must* find
    /// a violation here, and a clean report is itself a harness failure.
    fn is_mutation(&self) -> bool {
        false
    }

    /// Labels for the fault plans this scenario is crossed with. Index 0 is
    /// always the fault-free run.
    fn fault_labels(&self) -> Vec<&'static str> {
        vec!["none"]
    }

    /// Run one schedule: install `policy` into the kernel, run under fault
    /// plan `fault` (an index into [`Scenario::fault_labels`]), and judge
    /// the oracle.
    fn run(&self, policy: &PolicyHandle, fault: usize, fast_path: bool) -> Outcome;
}

/// All registered scenarios, mutations last.
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(UtsSteal),
        Box::new(SplitBarrier),
        Box::new(Allreduce { three_level: false }),
        Box::new(Allreduce { three_level: true }),
        Box::new(RetryLoss),
        Box::new(ServeKv),
        Box::new(LostUpdate),
        Box::new(MissedNotify),
    ]
}

/// Look a scenario up by name.
pub fn find_scenario(name: &str) -> Option<Box<dyn Scenario>> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

fn state_hash(parts: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

fn violation_from_err(e: &SimError) -> Violation {
    match e {
        SimError::Deadlock { .. } => Violation {
            kind: ViolationKind::Deadlock,
            detail: e.to_string(),
        },
        SimError::ActorPanic { .. } => Violation {
            kind: ViolationKind::Panic,
            detail: e.to_string(),
        },
    }
}

fn err_time(e: &SimError) -> Time {
    match e {
        SimError::Deadlock { time, .. } => *time,
        SimError::ActorPanic { .. } => 0,
    }
}

/// Shared accumulator for oracle failures observed inside actors. Actors
/// never panic on a bad value — a violation is data, not a crash — so the
/// run always drains and the decision log stays complete.
type ViolCell = Arc<Mutex<Option<String>>>;

fn note_viol(cell: &ViolCell, msg: String) {
    let mut v = cell.lock().unwrap();
    if v.is_none() {
        *v = Some(msg);
    }
}

fn outcome_from(
    result: hupc_sim::SimResult,
    policy: &PolicyHandle,
    viol: &ViolCell,
    state: impl FnOnce(Time) -> u64,
) -> Outcome {
    match result {
        Ok(stats) => {
            let violation = viol.lock().unwrap().take().map(|detail| Violation {
                kind: ViolationKind::State,
                detail,
            });
            let end_state = if violation.is_none() {
                state(stats.end_time)
            } else {
                0
            };
            Outcome {
                end_state,
                end_time: stats.end_time,
                decisions: policy.log(),
                violation,
            }
        }
        Err(e) => Outcome {
            end_state: 0,
            end_time: err_time(&e),
            decisions: policy.log(),
            violation: Some(violation_from_err(&e)),
        },
    }
}

// ---------------------------------------------------------------------------
// Serving: sharded KV under open-loop load
// ---------------------------------------------------------------------------

/// The hupc-serve PGAS key-value service, shrunk to exploration size:
/// 4 threads over 2 nodes serving a seeded open-loop request stream, with
/// the linearizability-lite oracle (dense per-key committed versions,
/// monotonic reads, no reads from the future, exact outcome accounting)
/// judged over the run's logs. Crossed with 10% loss and a straggler plan —
/// the serving path's retries, acks and epoch fan-in must stay correct no
/// matter how ties are broken or packets are dropped.
struct ServeKv;

impl Scenario for ServeKv {
    fn name(&self) -> &'static str {
        "serve_kv"
    }

    fn about(&self) -> &'static str {
        "sharded KV service, open-loop load: linearizability-lite oracle"
    }

    fn fault_labels(&self) -> Vec<&'static str> {
        vec!["none", "loss10", "loss10_straggler"]
    }

    fn run(&self, policy: &PolicyHandle, fault: usize, fast_path: bool) -> Outcome {
        let mut cfg = hupc_serve::ServeConfig::small(0x5E21);
        cfg.upc = UpcConfig::test_default(4, 2);
        cfg.traffic.requests_per_frontend = 24;
        cfg.upc.gasnet.fault = match fault {
            0 => None,
            1 => Some(FaultPlan::new(31).loss(0.10)),
            _ => Some(FaultPlan::new(37).loss(0.10).straggler(1, 3.0)),
        };
        let viol: ViolCell = Arc::new(Mutex::new(None));
        let result = hupc_serve::run_serve_prepared(cfg.clone(), |k| {
            policy.install(k);
            k.set_fast_path(fast_path);
        });
        match result {
            Ok(r) => {
                if let Err(msg) = hupc_serve::verify_linearizable_lite(&r, cfg.traffic.batch_len)
                {
                    note_viol(&viol, format!("serve_kv oracle: {msg}"));
                }
                if r.failed > 0 {
                    note_viol(
                        &viol,
                        format!("{} requests exhausted the transport retry budget", r.failed),
                    );
                }
                let violation = viol.lock().unwrap().take().map(|detail| Violation {
                    kind: ViolationKind::State,
                    detail,
                });
                let end_state = if violation.is_none() {
                    state_hash(&[
                        r.end_state,
                        r.completed,
                        r.shed,
                        r.hist.count,
                        r.hist.sum,
                        r.end_time,
                    ])
                } else {
                    0
                };
                Outcome {
                    end_state,
                    end_time: r.end_time,
                    decisions: policy.log(),
                    violation,
                }
            }
            Err(e) => Outcome {
                end_state: 0,
                end_time: err_time(&e),
                decisions: policy.log(),
                violation: Some(violation_from_err(&e)),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation: lost update
// ---------------------------------------------------------------------------

/// Seeded bug: two actors increment a shared cell with a read → advance →
/// write window. The default schedule serializes the windows back-to-back
/// (writer's wake carries the smaller seq at the t=10ns tie), but flipping
/// either tie lets the second actor read the counter *before* the first
/// one's write lands — a lost update. Oracle: counter == 2.
struct LostUpdate;

impl Scenario for LostUpdate {
    fn name(&self) -> &'static str {
        "lost_update"
    }

    fn about(&self) -> &'static str {
        "seeded read-advance-write race on a shared counter (mutation)"
    }

    fn is_mutation(&self) -> bool {
        true
    }

    fn run(&self, policy: &PolicyHandle, _fault: usize, fast_path: bool) -> Outcome {
        let mut sim = Simulation::new();
        {
            let mut k = sim.kernel();
            policy.install(&mut k);
            k.set_fast_path(fast_path);
        }
        let counter: Arc<SimCell<u64>> = Arc::new(SimCell::new(0));

        // Actor A: window [0, 10ns).
        let c = Arc::clone(&counter);
        sim.spawn("rmw-a", move |ctx| {
            let v = c.get();
            ctx.advance(time::ns(10));
            c.set(v + 1);
        });
        // Actor B: window [10ns, 20ns) — starts exactly when A's write wake
        // fires, so the two wakes tie at t=10ns.
        let c = Arc::clone(&counter);
        sim.spawn("rmw-b", move |ctx| {
            ctx.advance(time::ns(10));
            let v = c.get();
            ctx.advance(time::ns(10));
            c.set(v + 1);
        });
        // Noise actor: touches nothing, but wakes at both boundaries so the
        // tie sets are wider than two and the explorer has more to chew on.
        sim.spawn("noise", move |ctx| {
            ctx.advance(time::ns(10));
            ctx.advance(time::ns(10));
        });

        let viol: ViolCell = Arc::new(Mutex::new(None));
        let result = sim.run_result();
        let got = counter.get();
        if result.is_ok() && got != 2 {
            note_viol(&viol, format!("lost update: counter is {got}, expected 2"));
        }
        outcome_from(result, policy, &viol, |end| state_hash(&[got, end]))
    }
}

// ---------------------------------------------------------------------------
// Mutation: missed notify
// ---------------------------------------------------------------------------

/// Seeded bug: a waiter parks on a condition without re-checking a flag
/// (the classic missed-wakeup shape) while a signaller fires `notify_one`
/// at the same virtual time. Default order parks the waiter first, so the
/// notify connects; perturbing either tie delivers the notify into thin air
/// and the waiter sleeps forever. Oracle: the run must not deadlock.
struct MissedNotify;

impl Scenario for MissedNotify {
    fn name(&self) -> &'static str {
        "missed_notify"
    }

    fn about(&self) -> &'static str {
        "seeded lost-wakeup: unconditional cond_wait racing notify_one (mutation)"
    }

    fn is_mutation(&self) -> bool {
        true
    }

    fn run(&self, policy: &PolicyHandle, _fault: usize, fast_path: bool) -> Outcome {
        let mut sim = Simulation::new();
        let cond = {
            let mut k = sim.kernel();
            policy.install(&mut k);
            k.set_fast_path(fast_path);
            k.new_cond()
        };
        sim.spawn("waiter", move |ctx| {
            ctx.advance(time::ns(10));
            // BUG: no state check before waiting — if the signal already
            // fired, this parks forever.
            ctx.cond_wait(cond);
        });
        sim.spawn("signaller", move |ctx| {
            ctx.advance(time::ns(10));
            ctx.cond_notify_one(cond);
        });

        let viol: ViolCell = Arc::new(Mutex::new(None));
        let result = sim.run_result();
        outcome_from(result, policy, &viol, |end| state_hash(&[end]))
    }
}

// ---------------------------------------------------------------------------
// UTS work stealing
// ---------------------------------------------------------------------------

/// Unbalanced Tree Search on 4 threads / 2 nodes: steals, releases and the
/// termination protocol all race at collective boundaries. Oracle: the node
/// count must equal the sequential traversal — no tree node may be lost or
/// double-counted under any tie order, including with packet loss rerouting
/// steals.
struct UtsSteal;

const UTS_SEED: u32 = 5;

impl UtsSteal {
    fn config(fault: usize) -> UtsConfig {
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, UTS_SEED);
        if fault == 1 {
            cfg.fault = Some(FaultPlan::new(11).loss(0.2));
        }
        cfg
    }
}

impl Scenario for UtsSteal {
    fn name(&self) -> &'static str {
        "uts_steal"
    }

    fn about(&self) -> &'static str {
        "UTS work stealing: node count == sequential traversal"
    }

    fn fault_labels(&self) -> Vec<&'static str> {
        vec!["none", "loss20"]
    }

    fn run(&self, policy: &PolicyHandle, fault: usize, fast_path: bool) -> Outcome {
        let cfg = Self::config(fault);
        let (want_total, _, want_leaves) = sequential_traverse(&cfg.tree);
        let p = policy.clone();
        let result = run_uts_prepared(cfg, move |k| {
            p.install(k);
            k.set_fast_path(fast_path);
        });
        match result {
            Ok(r) => {
                let violation = if r.total_nodes != want_total || r.leaves != want_leaves {
                    Some(Violation {
                        kind: ViolationKind::State,
                        detail: format!(
                            "UTS count mismatch: got {} nodes / {} leaves, expected {} / {}",
                            r.total_nodes, r.leaves, want_total, want_leaves
                        ),
                    })
                } else {
                    None
                };
                let end_time = time::from_secs_f64(r.seconds);
                let end_state = if violation.is_none() {
                    state_hash(&[r.total_nodes, r.max_depth, r.leaves])
                } else {
                    0
                };
                Outcome {
                    end_state,
                    end_time,
                    decisions: policy.log(),
                    violation,
                }
            }
            Err(e) => Outcome {
                end_state: 0,
                end_time: err_time(&e),
                decisions: policy.log(),
                violation: Some(violation_from_err(&e)),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Split-phase barrier
// ---------------------------------------------------------------------------

/// Split-phase barrier agreement on 6 threads / 2 nodes: every thread
/// publishes its round number, calls `upc_notify`, then after `upc_wait`
/// must see *every* other thread's publication. Oracle: no thread exits
/// `wait` before all notifies of the round are in.
struct SplitBarrier;

impl Scenario for SplitBarrier {
    fn name(&self) -> &'static str {
        "split_barrier"
    }

    fn about(&self) -> &'static str {
        "split-phase barrier: publications visible after wait, every round"
    }

    fn run(&self, policy: &PolicyHandle, _fault: usize, fast_path: bool) -> Outcome {
        const THREADS: usize = 6;
        const ROUNDS: u64 = 4;
        let job = UpcJob::new(UpcConfig::test_default(THREADS, 2));
        {
            let mut k = job.kernel();
            policy.install(&mut k);
            k.set_fast_path(fast_path);
        }
        let slots: Arc<Vec<SimCell<u64>>> =
            Arc::new((0..THREADS).map(|_| SimCell::new(0)).collect());
        let viol: ViolCell = Arc::new(Mutex::new(None));

        let slots2 = Arc::clone(&slots);
        let viol2 = Arc::clone(&viol);
        let result = job.run_result(move |upc| {
            let me = upc.mythread();
            for r in 1..=ROUNDS {
                slots2[me].set(r);
                upc.notify();
                // Uniform local work between the phases keeps the notify
                // and wait wakes tied across threads.
                upc.ctx().advance(time::ns(200));
                upc.wait();
                for (t, slot) in slots2.iter().enumerate() {
                    let v = slot.get();
                    if v < r {
                        note_viol(
                            &viol2,
                            format!(
                                "thread {me} exited wait in round {r} but \
                                 thread {t} had only published {v}"
                            ),
                        );
                    }
                }
            }
        });
        let finals: Vec<u64> = slots.iter().map(|s| s.get()).collect();
        outcome_from(result, policy, &viol, |end| {
            let mut parts = finals;
            parts.push(end);
            state_hash(&parts)
        })
    }
}

// ---------------------------------------------------------------------------
// Hierarchical allreduce / broadcast
// ---------------------------------------------------------------------------

/// Hierarchical collectives on 8 threads / 2 nodes / 2 sockets: forced
/// two-level or three-level plans must produce the arithmetic answer on
/// every thread in every round, whatever order the group stages fire in.
struct Allreduce {
    three_level: bool,
}

impl Scenario for Allreduce {
    fn name(&self) -> &'static str {
        if self.three_level {
            "allreduce3"
        } else {
            "allreduce2"
        }
    }

    fn about(&self) -> &'static str {
        if self.three_level {
            "three-level allreduce/broadcast agreement on 2 nodes x 2 sockets"
        } else {
            "two-level allreduce/broadcast agreement on 2 nodes"
        }
    }

    fn run(&self, policy: &PolicyHandle, _fault: usize, fast_path: bool) -> Outcome {
        const THREADS: u64 = 8;
        const ROUNDS: u64 = 3;
        let mut cfg = UpcConfig::test_default(THREADS as usize, 2);
        cfg.gasnet.machine.sockets_per_node = 2;
        cfg.gasnet.machine.cores_per_socket = 2;
        let job = UpcJob::new(cfg);
        let algo = if self.three_level {
            CollAlgo::ThreeLevel
        } else {
            CollAlgo::TwoLevel
        };
        CollDomain::for_job(&job, CollPlan::Force(algo)).install(&job);
        {
            let mut k = job.kernel();
            policy.install(&mut k);
            k.set_fast_path(fast_path);
        }
        let viol: ViolCell = Arc::new(Mutex::new(None));
        let viol2 = Arc::clone(&viol);
        let result = job.run_result(move |upc| {
            let me = upc.mythread() as u64;
            for r in 0..ROUNDS {
                let sum = upc.allreduce_sum_u64(3 * me + r + 1);
                let want_sum = 3 * (THREADS * (THREADS - 1) / 2) + THREADS * (r + 1);
                if sum != want_sum {
                    note_viol(
                        &viol2,
                        format!("round {r}: thread {me} allreduce_sum {sum} != {want_sum}"),
                    );
                }
                let max = upc.allreduce_max_u64(me + r);
                if max != THREADS - 1 + r {
                    note_viol(
                        &viol2,
                        format!("round {r}: thread {me} allreduce_max {max} != {}", THREADS - 1 + r),
                    );
                }
                let root = (r % THREADS) as usize;
                let word = upc.broadcast_word(root, 0xB0 + r);
                if word != 0xB0 + r {
                    note_viol(
                        &viol2,
                        format!("round {r}: thread {me} broadcast got {word:#x}"),
                    );
                }
            }
        });
        outcome_from(result, policy, &viol, |end| state_hash(&[end]))
    }
}

// ---------------------------------------------------------------------------
// Retry/backoff under loss
// ---------------------------------------------------------------------------

/// PGAS puts/gets under packet loss, with application-level retry/backoff
/// over the `try_*` operations (the same shape the UTS steal path uses to
/// reroute). Oracle: every retry loop terminates within its attempt cap,
/// each thread reads back exactly what it wrote into its neighbor's
/// segment, and the run completes (no deadlock, no panic) — on every
/// schedule, because the fault stream's draw order shifts with the
/// interleaving.
struct RetryLoss;

/// App-level retry cap; exceeding it is a termination violation.
const RETRY_CAP: usize = 300;

impl Scenario for RetryLoss {
    fn name(&self) -> &'static str {
        "retry_loss"
    }

    fn about(&self) -> &'static str {
        "try-puts/gets + barriers under 10% loss: exact data, bounded retries"
    }

    fn fault_labels(&self) -> Vec<&'static str> {
        vec!["loss10"]
    }

    fn run(&self, policy: &PolicyHandle, _fault: usize, fast_path: bool) -> Outcome {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 3;
        let mut cfg = UpcConfig::test_default(THREADS, 2);
        cfg.gasnet.fault = Some(FaultPlan::new(23).loss(0.10));
        let job = UpcJob::new(cfg);
        let off = job.runtime().alloc_words(THREADS);
        {
            let mut k = job.kernel();
            policy.install(&mut k);
            k.set_fast_path(fast_path);
        }
        let viol: ViolCell = Arc::new(Mutex::new(None));
        let viol2 = Arc::clone(&viol);
        let result = job.run_result(move |upc| {
            let me = upc.mythread();
            let n = upc.threads();
            let right = (me + 1) % n;
            // Retry with linear backoff until the op lands or the cap trips.
            let attempt = |what: &str, mut op: Box<dyn FnMut() -> bool + '_>| -> bool {
                for tries in 0..RETRY_CAP {
                    if op() {
                        return true;
                    }
                    upc.ctx().advance(time::ns(300 * (1 + tries as u64 / 8)));
                }
                note_viol(
                    &viol2,
                    format!("thread {me}: {what} did not land within {RETRY_CAP} attempts"),
                );
                false
            };
            for r in 0..ROUNDS {
                let val = 1000 * (r + 1) + me as u64;
                // Write into the right neighbor's segment, slot `me`.
                attempt(
                    "memput",
                    Box::new(|| upc.try_memput(right, off + me, &[val]).is_ok()),
                );
                upc.barrier();
                // Read it back across the wire and verify.
                let mut got = [0u64];
                if attempt(
                    "memget",
                    Box::new(|| upc.try_memget(right, off + me, &mut got).is_ok()),
                ) && got[0] != val
                {
                    note_viol(
                        &viol2,
                        format!(
                            "round {r}: thread {me} read {} from neighbor {right}, wrote {val}",
                            got[0]
                        ),
                    );
                }
                upc.barrier();
            }
        });
        outcome_from(result, policy, &viol, |end| state_hash(&[end]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario's default schedule (empty prefix) must pass its own
    /// oracle — mutations included: the seeded bugs only fire when a tie is
    /// actually flipped.
    #[test]
    fn default_schedules_are_clean() {
        for s in all_scenarios() {
            for fault in 0..s.fault_labels().len() {
                let policy = PolicyHandle::prefix(&[]);
                let out = s.run(&policy, fault, true);
                assert!(
                    out.violation.is_none(),
                    "{} (fault {}) violated its oracle on the default schedule: {:?}",
                    s.name(),
                    fault,
                    out.violation
                );
            }
        }
    }

    /// The seeded lost-update fires when the first tie is flipped.
    #[test]
    fn lost_update_mutation_fires() {
        let s = LostUpdate;
        let policy = PolicyHandle::prefix(&[1]);
        let out = s.run(&policy, 0, true);
        let v = out.violation.expect("perturbed schedule must lose an update");
        assert_eq!(v.kind, ViolationKind::State);
    }

    /// The seeded missed-notify deadlocks when the first tie is flipped.
    #[test]
    fn missed_notify_mutation_fires() {
        let s = MissedNotify;
        let policy = PolicyHandle::prefix(&[1]);
        let out = s.run(&policy, 0, true);
        let v = out.violation.expect("perturbed schedule must deadlock");
        assert_eq!(v.kind, ViolationKind::Deadlock);
    }

    /// Scenario names are unique and stable (the corpus depends on them).
    #[test]
    fn scenario_names_are_unique() {
        let names: Vec<_> = all_scenarios().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate scenario names: {names:?}");
    }
}
