//! Exploration policies: handles that plug into the sim kernel's
//! [`SchedulePolicy`] tie-break seam and record every decision they make.
//!
//! A policy decides which of the ready events *tied at the same virtual
//! time* dispatches first. Everything else about a run is deterministic, so
//! the decision log — `(choice, nready)` per consulted tie — is a complete,
//! replayable identity of the schedule.

use std::sync::{Arc, Mutex};

use hupc_sim::{Kernel, ReadyEvent, SchedulePolicy};

use crate::rng::{Fnv64, SplitMix64};

/// One recorded tie-break: which index was chosen out of how many ready
/// events. `nready` is recorded so branching in the explorer knows the
/// sibling choices that existed at this point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    pub choice: u32,
    pub nready: u32,
}

enum Mode {
    /// Seeded random sampling: uniform over the ready set at every tie.
    Random(SplitMix64),
    /// Forced prefix: decision `k` takes `prefix[k]` (clamped to the ready
    /// set); past the end of the prefix, index 0 — the kernel's default
    /// seq order. The empty prefix therefore reproduces the default run.
    Prefix(Vec<u32>),
}

struct Core {
    mode: Mode,
    log: Vec<Decision>,
}

/// Shared handle to a recording policy. Cloneable so the driver keeps a
/// reference while a boxed forwarder lives inside the kernel.
#[derive(Clone)]
pub struct PolicyHandle {
    core: Arc<Mutex<Core>>,
}

impl PolicyHandle {
    pub fn random(seed: u64) -> Self {
        PolicyHandle {
            core: Arc::new(Mutex::new(Core {
                mode: Mode::Random(SplitMix64::new(seed)),
                log: Vec::new(),
            })),
        }
    }

    pub fn prefix(choices: &[u32]) -> Self {
        PolicyHandle {
            core: Arc::new(Mutex::new(Core {
                mode: Mode::Prefix(choices.to_vec()),
                log: Vec::new(),
            })),
        }
    }

    /// Install a forwarder for this handle into a kernel. Call from a
    /// scenario's `prepare` hook, before the simulation runs.
    pub fn install(&self, k: &mut Kernel) {
        k.set_schedule_policy(Some(Box::new(Forwarder {
            core: Arc::clone(&self.core),
        })));
    }

    /// The decisions recorded so far (drained runs leave the log in place;
    /// a handle is single-run — build a fresh one per run).
    pub fn log(&self) -> Vec<Decision> {
        self.core.lock().unwrap().log.clone()
    }

    /// Just the chosen indices, suitable for use as a replay prefix.
    pub fn choices(&self) -> Vec<u32> {
        self.core
            .lock()
            .unwrap()
            .log
            .iter()
            .map(|d| d.choice)
            .collect()
    }

    /// Stable fingerprint of the decision log. Two runs of the same
    /// scenario with equal hashes took the identical schedule.
    pub fn log_hash(&self) -> u64 {
        log_hash(&self.core.lock().unwrap().log)
    }
}

/// Fingerprint a decision log (FNV-1a over (choice, nready) pairs).
pub fn log_hash(log: &[Decision]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(log.len() as u64);
    for d in log {
        h.write_u64(((d.choice as u64) << 32) | d.nready as u64);
    }
    h.finish()
}

/// Fingerprint a forced prefix (used as the explorer's visited-set key).
pub fn prefix_hash(prefix: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(prefix.len() as u64);
    for &c in prefix {
        h.write_u64(c as u64);
    }
    h.finish()
}

struct Forwarder {
    core: Arc<Mutex<Core>>,
}

impl SchedulePolicy for Forwarder {
    fn choose(&mut self, ready: &[ReadyEvent]) -> usize {
        let mut core = self.core.lock().unwrap();
        let n = ready.len() as u32;
        let idx = core.log.len();
        let choice = match &mut core.mode {
            Mode::Random(rng) => rng.below(n as u64) as u32,
            Mode::Prefix(p) => p.get(idx).copied().unwrap_or(0).min(n - 1),
        };
        core.log.push(Decision { choice, nready: n });
        choice as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_past_end_defaults_to_zero() {
        let h = PolicyHandle::prefix(&[1]);
        let mut fwd = Forwarder {
            core: Arc::clone(&h.core),
        };
        let ready = |n: usize| {
            (0..n)
                .map(|i| ReadyEvent {
                    time: hupc_sim::time::ns(5),
                    seq: i as u64,
                    kind: hupc_sim::ReadyEventKind::Wake { actor: i },
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fwd.choose(&ready(3)), 1);
        assert_eq!(fwd.choose(&ready(3)), 0);
        assert_eq!(
            h.log(),
            vec![
                Decision {
                    choice: 1,
                    nready: 3
                },
                Decision {
                    choice: 0,
                    nready: 3
                }
            ]
        );
    }

    #[test]
    fn out_of_range_prefix_is_clamped() {
        let h = PolicyHandle::prefix(&[9]);
        let mut fwd = Forwarder {
            core: Arc::clone(&h.core),
        };
        let ready: Vec<_> = (0..2)
            .map(|i| ReadyEvent {
                time: hupc_sim::time::ns(5),
                seq: i as u64,
                kind: hupc_sim::ReadyEventKind::Wake { actor: i },
            })
            .collect();
        assert_eq!(fwd.choose(&ready), 1);
    }

    #[test]
    fn log_hash_distinguishes_logs() {
        let a = log_hash(&[Decision {
            choice: 0,
            nready: 2,
        }]);
        let b = log_hash(&[Decision {
            choice: 1,
            nready: 2,
        }]);
        assert_ne!(a, b);
        assert_ne!(log_hash(&[]), a);
    }
}
