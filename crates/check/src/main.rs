//! `hupc-check` CLI — explore runtime schedules, replay minimal failing
//! ones, and police the committed regression corpus.
//!
//! ```text
//! hupc-check list
//! hupc-check explore [--scenario NAME]... [--budget N] [--seed S]
//!                    [--min-distinct N] [--max-seconds S] [--fast-path on|off]
//!                    [--shrink-budget N] [--keep-going] [--out DIR]
//! hupc-check mutation [--budget N] [--out DIR]
//! hupc-check replay FILE...
//! hupc-check corpus [DIR]
//! ```
//!
//! Exit status is nonzero when any invariant is violated, a mutation goes
//! uncaught, a corpus entry stops reproducing, or a `--min-distinct` floor
//! is missed — so every subcommand is CI-gateable as-is.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use hupc_check::{
    all_scenarios, explore, find_scenario, Artifact, ExploreConfig, Scenario,
    ARTIFACT_EXT,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => {
            usage();
            return ExitCode::FAILURE;
        }
    };
    let ok = match cmd {
        "list" => cmd_list(),
        "explore" => cmd_explore(&rest),
        "mutation" => cmd_mutation(&rest),
        "replay" => cmd_replay(&rest),
        "corpus" => cmd_corpus(&rest),
        "help" | "--help" | "-h" => {
            usage();
            true
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() {
    eprintln!(
        "hupc-check — bounded schedule exploration over the hupc runtime\n\
         \n\
         commands:\n\
         \x20 list                      show scenarios and their fault plans\n\
         \x20 explore [opts]            explore schedules, shrink + save any failure\n\
         \x20 mutation [opts]           require the seeded ordering bugs to be caught\n\
         \x20 replay FILE...            replay schedule artifacts\n\
         \x20 corpus [DIR]              replay every committed corpus entry\n\
         \n\
         explore options:\n\
         \x20 --scenario NAME    limit to one scenario (repeatable)\n\
         \x20 --budget N         schedules per scenario per fault plan (default 200)\n\
         \x20 --seed S           random-stage seed (default 0xC0FFEE)\n\
         \x20 --min-distinct N   fail unless >= N distinct schedules per scenario\n\
         \x20 --max-seconds S    wall-clock cap per scenario\n\
         \x20 --fast-path on|off scheduler-bypass fast path (default on)\n\
         \x20 --shrink-budget N  extra runs for shrinking a failure (default 400)\n\
         \x20 --keep-going       continue a scenario after its first failure\n\
         \x20 --out DIR          write failure artifacts here (default check_failures)"
    );
}

struct Opts {
    scenarios: Vec<String>,
    cfg: ExploreConfig,
    min_distinct: Option<usize>,
    out: PathBuf,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        scenarios: Vec::new(),
        cfg: ExploreConfig::default(),
        min_distinct: None,
        out: PathBuf::from("check_failures"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scenario" => o.scenarios.push(val("--scenario")?.clone()),
            "--budget" => {
                o.cfg.budget = val("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget".to_string())?
            }
            "--seed" => {
                o.cfg.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--shrink-budget" => {
                o.cfg.shrink_budget = val("--shrink-budget")?
                    .parse()
                    .map_err(|_| "bad --shrink-budget".to_string())?
            }
            "--min-distinct" => {
                o.min_distinct = Some(
                    val("--min-distinct")?
                        .parse()
                        .map_err(|_| "bad --min-distinct".to_string())?,
                )
            }
            "--max-seconds" => {
                let s: u64 = val("--max-seconds")?
                    .parse()
                    .map_err(|_| "bad --max-seconds".to_string())?;
                o.cfg.max_wall = Some(Duration::from_secs(s));
            }
            "--fast-path" => {
                o.cfg.fast_path = match val("--fast-path")?.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => return Err("--fast-path wants on|off".into()),
                }
            }
            "--keep-going" => o.cfg.stop_on_violation = false,
            "--out" => o.out = PathBuf::from(val("--out")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn selected(names: &[String], mutations: bool) -> Result<Vec<Box<dyn Scenario>>, String> {
    if names.is_empty() {
        return Ok(all_scenarios()
            .into_iter()
            .filter(|s| s.is_mutation() == mutations)
            .collect());
    }
    names
        .iter()
        .map(|n| find_scenario(n).ok_or_else(|| format!("unknown scenario {n:?}")))
        .collect()
}

fn cmd_list() -> bool {
    println!("{:<16} {:<10} {:<18} description", "scenario", "kind", "fault plans");
    for s in all_scenarios() {
        println!(
            "{:<16} {:<10} {:<18} {}",
            s.name(),
            if s.is_mutation() { "mutation" } else { "invariant" },
            s.fault_labels().join(","),
            s.about()
        );
    }
    true
}

fn write_artifact(dir: &Path, art: &Artifact) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(art.file_name());
    std::fs::write(&path, art.serialize())?;
    Ok(path)
}

fn cmd_explore(args: &[String]) -> bool {
    let o = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let scenarios = match selected(&o.scenarios, false) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let mut ok = true;
    for s in scenarios {
        let report = explore(s.as_ref(), &o.cfg);
        println!(
            "{:<16} runs={:<6} distinct={:<6} max-decisions={:<4} failures={}",
            report.scenario,
            report.runs,
            report.distinct,
            report.max_decisions,
            report.failures.len()
        );
        if let Some(min) = o.min_distinct {
            if report.distinct < min {
                eprintln!(
                    "FAIL {}: only {} distinct schedules (need >= {min})",
                    report.scenario, report.distinct
                );
                ok = false;
            }
        }
        for f in &report.failures {
            ok = false;
            eprintln!(
                "FAIL {} (fault {} {}): {} — {}",
                f.scenario,
                f.fault,
                f.fault_label,
                f.violation.kind.as_str(),
                f.violation.detail.lines().next().unwrap_or("")
            );
            eprintln!(
                "  found with prefix {:?}, shrunk to {:?} (replay {})",
                f.found,
                f.minimal,
                if f.replay_ok { "deterministic" } else { "UNSTABLE" }
            );
            let art = Artifact::from_failure(f, o.cfg.fast_path);
            match write_artifact(&o.out, &art) {
                Ok(p) => eprintln!("  artifact: {}", p.display()),
                Err(e) => eprintln!("  could not write artifact: {e}"),
            }
        }
    }
    ok
}

fn cmd_mutation(args: &[String]) -> bool {
    let mut o = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    if args.iter().all(|a| a != "--budget") {
        // Mutations are tiny; a small budget finds them in milliseconds.
        o.cfg.budget = 64;
    }
    let scenarios = match selected(&o.scenarios, true) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let mut ok = true;
    for s in scenarios {
        let name = s.name();
        let report = explore(s.as_ref(), &o.cfg);
        let caught = report
            .failures
            .iter()
            .find(|f| f.replay_ok && !f.minimal.is_empty());
        match caught {
            Some(f) => {
                println!(
                    "CAUGHT {name}: {} with minimal schedule {:?} after {} runs \
                     (shrunk from {} decisions)",
                    f.violation.kind.as_str(),
                    f.minimal,
                    report.runs,
                    f.found.len()
                );
                let art = Artifact::from_failure(f, o.cfg.fast_path);
                if args.iter().any(|a| a == "--out") {
                    match write_artifact(&o.out, &art) {
                        Ok(p) => println!("  artifact: {}", p.display()),
                        Err(e) => {
                            eprintln!("  could not write artifact: {e}");
                            ok = false;
                        }
                    }
                }
            }
            None => {
                eprintln!(
                    "MISSED {name}: seeded ordering bug not caught \
                     ({} runs, {} distinct schedules) — the explorer has regressed",
                    report.runs, report.distinct
                );
                ok = false;
            }
        }
    }
    ok
}

fn replay_file(path: &Path) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL {}: {e}", path.display());
            return false;
        }
    };
    let art = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("FAIL {}: {e}", path.display());
            return false;
        }
    };
    match art.replay() {
        Ok(v) => {
            println!(
                "OK   {}: {} reproduces ({})",
                path.display(),
                v.kind.as_str(),
                v.detail.lines().next().unwrap_or("")
            );
            true
        }
        Err(e) => {
            eprintln!("FAIL {}: {e}", path.display());
            false
        }
    }
}

fn cmd_replay(args: &[String]) -> bool {
    if args.is_empty() {
        eprintln!("replay: need at least one artifact file");
        return false;
    }
    let mut ok = true;
    for a in args {
        ok &= replay_file(Path::new(a));
    }
    ok
}

fn cmd_corpus(args: &[String]) -> bool {
    let dir = match args.first() {
        Some(d) => PathBuf::from(d),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus"),
    };
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == ARTIFACT_EXT))
            .collect(),
        Err(e) => {
            eprintln!("corpus: cannot read {}: {e}", dir.display());
            return false;
        }
    };
    entries.sort();
    if entries.is_empty() {
        eprintln!("corpus: no .{ARTIFACT_EXT} entries in {}", dir.display());
        return false;
    }
    let mut ok = true;
    for p in &entries {
        ok &= replay_file(p);
    }
    println!("corpus: {} entries checked", entries.len());
    ok
}
