//! `hupc-check` — bounded model checking of the runtime's schedule space.
//!
//! The deterministic sim kernel dispatches events in (time, seq) order; the
//! *only* nondeterminism a real machine would add is the order of events
//! tied at the same virtual time. The kernel exposes exactly that surface
//! through the [`hupc_sim::SchedulePolicy`] seam, and this crate drives it:
//!
//! - [`policy`] — recording tie-break policies (seeded random sampling and
//!   forced-prefix replay); a run's decision log is its complete identity.
//! - [`scenario`] — tie-rich workloads over the stack (UTS stealing,
//!   split-phase barriers, hierarchical collectives, retry-under-loss) with
//!   invariant oracles, plus two deliberately seeded ordering bugs the
//!   harness must catch (mutation testing of the checker itself).
//! - [`explore`] — bounded exploration: systematic prefix branching with
//!   visited-set (sleep-set-lite) pruning plus seeded random sampling.
//! - [`shrink`] — ddmin-style reduction of a failing schedule to a
//!   1-minimal decision prefix.
//! - [`artifact`] — replayable text artifacts; minimal failing schedules
//!   are committed under `crates/check/corpus/` and replayed in CI.
//!
//! The `hupc-check` binary wires these into `explore` / `mutation` /
//! `replay` / `corpus` subcommands (see `README.md`).

pub mod artifact;
pub mod explore;
pub mod policy;
pub mod rng;
pub mod scenario;
pub mod shrink;

pub use artifact::{Artifact, ARTIFACT_EXT, ARTIFACT_VERSION};
pub use explore::{explore, ExploreConfig, ExploreReport, ScheduleFailure};
pub use policy::{log_hash, prefix_hash, Decision, PolicyHandle};
pub use scenario::{
    all_scenarios, find_scenario, Outcome, Scenario, Violation, ViolationKind,
};
pub use shrink::shrink;
