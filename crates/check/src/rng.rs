//! Minimal deterministic RNG + hashing helpers (no external deps).

/// SplitMix64 — the same tiny generator the fault injector uses. Good
/// statistical quality for schedule sampling, trivially seedable, and —
/// crucially for replay — fully deterministic.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a 64-bit — used to fingerprint decision logs and prefixes. Stable
/// across platforms and releases (the corpus stores these hashes).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn fnv_differs_on_order() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
