//! Bounded schedule exploration: systematic prefix branching with
//! visited-set pruning (sleep-set-lite), plus seeded random sampling.
//!
//! Every run is identified by its decision log — the sequence of tie-breaks
//! the policy made. The systematic stage replays a forced prefix and then
//! lets the kernel default (seq order) finish the run; each decision point
//! observed past the prefix spawns sibling prefixes for every alternative
//! choice. A visited set over prefix fingerprints prunes the re-exploration
//! a naive DFS would do after commuting choices — the lite version of a
//! sleep set: we cannot prove two tied events independent, but we never
//! schedule the same forced prefix twice.
//!
//! On a violation the failing prefix is shrunk (see [`crate::shrink`]) to a
//! 1-minimal schedule, replayed twice for determinism, and reported as a
//! [`ScheduleFailure`] ready to serialize into the corpus.

use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

use crate::policy::{log_hash, prefix_hash, PolicyHandle};
use crate::scenario::{Outcome, Scenario, Violation};
use crate::shrink::shrink;
use crate::rng::SplitMix64;

/// Exploration budget and knobs for one scenario.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Schedules to run per fault plan (systematic + random stages).
    pub budget: usize,
    /// Seed for the random-sampling stage.
    pub seed: u64,
    /// Run with the scheduler-bypass fast path enabled (the default; the
    /// policy seam only sees ties, which never bypass).
    pub fast_path: bool,
    /// Extra runs the shrinker may spend per failure.
    pub shrink_budget: usize,
    /// Optional wall-clock cap across this scenario's exploration.
    pub max_wall: Option<Duration>,
    /// Stop exploring a scenario after its first (shrunk) failure.
    pub stop_on_violation: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: 200,
            seed: 0xC0FFEE,
            fast_path: true,
            shrink_budget: 400,
            max_wall: None,
            stop_on_violation: true,
        }
    }
}

/// A violation found by exploration, shrunk and replay-verified.
#[derive(Clone, Debug)]
pub struct ScheduleFailure {
    pub scenario: String,
    pub fault: usize,
    pub fault_label: String,
    pub violation: Violation,
    /// The prefix that first exposed the violation.
    pub found: Vec<u32>,
    /// The 1-minimal failing prefix after shrinking.
    pub minimal: Vec<u32>,
    /// Decision-log fingerprint of the minimal replay.
    pub log_hash: u64,
    /// Two fresh replays of `minimal` reproduced the same violation kind
    /// and identical decision logs.
    pub replay_ok: bool,
}

/// Summary of one scenario's exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    pub scenario: String,
    /// Total schedules executed (all fault plans, incl. shrink replays).
    pub runs: usize,
    /// Distinct schedules seen (unique decision-log fingerprints).
    pub distinct: usize,
    /// Longest decision log observed (tie depth of the scenario).
    pub max_decisions: usize,
    pub failures: Vec<ScheduleFailure>,
    /// Branch prefixes dropped because the frontier hit its cap — nonzero
    /// means the systematic stage did not exhaust the space (expected for
    /// anything nontrivial; the random stage keeps sampling it).
    pub dropped_prefixes: usize,
}

/// Explore one scenario under `cfg`, crossing every registered fault plan.
pub fn explore(s: &dyn Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let start = Instant::now();
    let faults = s.fault_labels();
    let mut report = ExploreReport {
        scenario: s.name().to_string(),
        runs: 0,
        distinct: 0,
        max_decisions: 0,
        failures: Vec::new(),
        dropped_prefixes: 0,
    };
    let mut seen = HashSet::new();

    'faults: for (fault, label) in faults.iter().enumerate() {
        let over_wall = |r: &ExploreReport| {
            cfg.max_wall.is_some_and(|cap| start.elapsed() > cap) && r.runs > 0
        };

        // One schedule: force `prefix`, record what actually happened.
        let run_prefix = |prefix: &[u32], report: &mut ExploreReport| -> Outcome {
            let policy = PolicyHandle::prefix(prefix);
            let out = s.run(&policy, fault, cfg.fast_path);
            report.runs += 1;
            report.max_decisions = report.max_decisions.max(out.decisions.len());
            out
        };
        let note_distinct = |out: &Outcome, seen: &mut HashSet<u64>, report: &mut ExploreReport| {
            let mut key = log_hash(&out.decisions);
            key ^= (fault as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if seen.insert(key) {
                report.distinct += 1;
            }
        };

        // The budget splits between a systematic stage (breadth-first over
        // branch prefixes) and a random stage; the systematic stage hands
        // unused budget to the random one when the space is small.
        let systematic_budget = cfg.budget / 2;
        let frontier_cap = cfg.budget.saturating_mul(4).max(64);

        let mut frontier: VecDeque<Vec<u32>> = VecDeque::new();
        frontier.push_back(Vec::new());
        let mut queued: HashSet<u64> = HashSet::new();
        queued.insert(prefix_hash(&[]));

        // Schedules sampled for this fault plan (shrink/replay runs are
        // accounted in `report.runs` but do not consume sampling budget).
        let mut sampled = 0usize;
        while let Some(prefix) = frontier.pop_front() {
            if sampled >= systematic_budget || over_wall(&report) {
                break;
            }
            let out = run_prefix(&prefix, &mut report);
            sampled += 1;
            note_distinct(&out, &mut seen, &mut report);
            if let Some(v) = &out.violation {
                let failing: Vec<u32> = out.decisions.iter().map(|d| d.choice).collect();
                handle_failure(
                    s, fault, label, cfg, v.clone(), failing, &mut report,
                );
                if cfg.stop_on_violation {
                    break 'faults;
                }
                continue;
            }
            // Branch: every untaken choice at every decision point past the
            // forced prefix becomes a new frontier entry (once).
            for i in prefix.len()..out.decisions.len() {
                let d = out.decisions[i];
                for c in 0..d.nready {
                    if c == d.choice {
                        continue;
                    }
                    let mut p2: Vec<u32> =
                        out.decisions[..i].iter().map(|x| x.choice).collect();
                    p2.push(c);
                    if !queued.insert(prefix_hash(&p2)) {
                        continue;
                    }
                    if frontier.len() >= frontier_cap {
                        report.dropped_prefixes += 1;
                    } else {
                        frontier.push_back(p2);
                    }
                }
            }
        }

        // Random stage: whatever sampling budget the systematic stage left.
        let mut rng = SplitMix64::new(
            cfg.seed ^ (fault as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        while sampled < cfg.budget {
            if over_wall(&report) {
                break;
            }
            let policy = PolicyHandle::random(rng.next_u64());
            let out = s.run(&policy, fault, cfg.fast_path);
            report.runs += 1;
            sampled += 1;
            report.max_decisions = report.max_decisions.max(out.decisions.len());
            note_distinct(&out, &mut seen, &mut report);
            if let Some(v) = &out.violation {
                let failing: Vec<u32> = out.decisions.iter().map(|d| d.choice).collect();
                handle_failure(
                    s, fault, label, cfg, v.clone(), failing, &mut report,
                );
                if cfg.stop_on_violation {
                    break 'faults;
                }
            }
        }
    }
    report
}

fn handle_failure(
    s: &dyn Scenario,
    fault: usize,
    label: &str,
    cfg: &ExploreConfig,
    violation: Violation,
    failing: Vec<u32>,
    report: &mut ExploreReport,
) {
    let kind = violation.kind;
    let mut spent = 0usize;
    let minimal = {
        let mut fails = |p: &[u32]| -> bool {
            let policy = PolicyHandle::prefix(p);
            let out = s.run(&policy, fault, cfg.fast_path);
            spent += 1;
            out.violation.as_ref().is_some_and(|v| v.kind == kind)
        };
        shrink(failing.clone(), cfg.shrink_budget, &mut fails)
    };
    report.runs += spent;

    // Replay the minimal schedule twice: same violation kind, identical
    // decision logs — the artifact is only worth committing if it is
    // deterministic.
    let replay = |p: &[u32]| {
        let policy = PolicyHandle::prefix(p);
        let out = s.run(&policy, fault, cfg.fast_path);
        let h = log_hash(&out.decisions);
        (out, h)
    };
    let (out1, h1) = replay(&minimal);
    let (out2, h2) = replay(&minimal);
    report.runs += 2;
    let replay_ok = h1 == h2
        && out1.violation.as_ref().is_some_and(|v| v.kind == kind)
        && out2.violation.as_ref().is_some_and(|v| v.kind == kind);
    // Prefer the violation text the minimal schedule actually produces.
    let violation = out1.violation.clone().unwrap_or(violation);

    report.failures.push(ScheduleFailure {
        scenario: s.name().to_string(),
        fault,
        fault_label: label.to_string(),
        violation,
        found: failing,
        minimal,
        log_hash: h1,
        replay_ok,
    });
}
