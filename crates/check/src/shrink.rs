//! Schedule shrinking: reduce a failing decision prefix to a 1-minimal one.
//!
//! The prefix semantics make shrinking cheap: choice 0 *is* the kernel's
//! default seq order, and decisions past the end of the prefix default to 0.
//! So "remove a decision" = "set it to 0", and trailing zeros can be
//! truncated without a run. The ddmin-style loop below drives every
//! position to 0 (or to a smaller choice) while the violation kind keeps
//! reproducing, then keeps the shortest failing truncation. The result is
//! 1-minimal: no single decision can be zeroed, lowered or dropped without
//! losing the failure.

/// Shrink `failing` with at most `budget` calls to `fails` (which runs the
/// scenario under the candidate prefix and reports whether the original
/// violation kind reproduces). `failing` itself is assumed to fail.
pub fn shrink(
    mut failing: Vec<u32>,
    budget: usize,
    fails: &mut dyn FnMut(&[u32]) -> bool,
) -> Vec<u32> {
    let mut left = budget;
    trim_zeros(&mut failing);

    // Cheap first cut: binary-search toward the shortest failing
    // truncation. Not monotone in general, so this is opportunistic — the
    // fixpoint loop below catches whatever it misses.
    let mut lo = 0usize;
    while left > 0 && failing.len() > 1 {
        let mid = (lo + failing.len()) / 2;
        if mid <= lo || mid >= failing.len() {
            break;
        }
        let mut cand = failing[..mid].to_vec();
        trim_zeros(&mut cand);
        left -= 1;
        if fails(&cand) {
            failing = cand;
            lo = 0;
        } else {
            lo = mid;
        }
    }

    // Fixpoint: zero individual decisions, then lower remaining choices.
    loop {
        let mut changed = false;
        for i in 0..failing.len() {
            if failing[i] == 0 || left == 0 {
                continue;
            }
            let mut cand = failing.clone();
            cand[i] = 0;
            trim_zeros(&mut cand);
            left -= 1;
            if fails(&cand) {
                failing = cand;
                changed = true;
            }
        }
        for i in 0..failing.len() {
            if left == 0 {
                break;
            }
            // Try each smaller nonzero choice, lowest first.
            for c in 1..failing[i] {
                if left == 0 {
                    break;
                }
                let mut cand = failing.clone();
                cand[i] = c;
                left -= 1;
                if fails(&cand) {
                    failing = cand;
                    changed = true;
                    break;
                }
            }
        }
        if !changed || left == 0 {
            break;
        }
    }
    trim_zeros(&mut failing);
    failing
}

fn trim_zeros(p: &mut Vec<u32>) {
    while p.last() == Some(&0) {
        p.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure iff position 3 is >= 1: shrinks to [0,0,0,1].
    #[test]
    fn shrinks_to_single_relevant_decision() {
        let mut fails = |p: &[u32]| p.get(3).copied().unwrap_or(0) >= 1;
        let got = shrink(vec![2, 1, 0, 2, 1, 1], 200, &mut fails);
        assert_eq!(got, vec![0, 0, 0, 1]);
    }

    /// Already-minimal input survives unchanged.
    #[test]
    fn minimal_input_is_stable() {
        let mut fails = |p: &[u32]| p == [1];
        let got = shrink(vec![1], 200, &mut fails);
        assert_eq!(got, vec![1]);
    }

    /// Trailing zeros cost nothing and always go.
    #[test]
    fn trailing_zeros_are_trimmed() {
        let mut fails = |p: &[u32]| p.first().copied().unwrap_or(0) == 1;
        let got = shrink(vec![1, 0, 0, 0], 200, &mut fails);
        assert_eq!(got, vec![1]);
    }

    /// Two jointly-necessary decisions both survive.
    #[test]
    fn keeps_jointly_necessary_pair() {
        let mut fails =
            |p: &[u32]| p.first() == Some(&1) && p.get(2) == Some(&2);
        let got = shrink(vec![1, 1, 2, 1], 200, &mut fails);
        assert_eq!(got, vec![1, 0, 2]);
    }

    /// A zero budget still returns a (zero-trimmed) failing prefix.
    #[test]
    fn zero_budget_is_safe() {
        let mut fails = |_: &[u32]| true;
        let got = shrink(vec![1, 2, 0], 0, &mut fails);
        assert_eq!(got, vec![1, 2]);
    }
}
