//! Replayable schedule artifacts: the on-disk form of a minimal failing
//! schedule, committed under `crates/check/corpus/` as a regression test.
//!
//! The format is a deliberately boring line-based text file — diffable,
//! greppable, hand-editable:
//!
//! ```text
//! # hupc-check minimal failing schedule
//! version: 1
//! scenario: missed_notify
//! fault: 0 none
//! fast_path: on
//! decisions: 1
//! violation: deadlock
//! detail: simulation deadlock at t=10ns: ...\n...
//! log_hash: 0x9c33a1b2c4d5e6f7
//! ```
//!
//! `decisions` is the minimal forced prefix (comma-separated choices; `-`
//! for the empty prefix). `log_hash` fingerprints the decision log of the
//! replay; replay fails loudly if either the violation kind or the log
//! fingerprint drifts — a corpus entry that stops reproducing *must* be
//! regenerated consciously, never silently skipped.

use crate::explore::ScheduleFailure;
use crate::policy::{log_hash, PolicyHandle};
use crate::scenario::{find_scenario, Violation, ViolationKind};

pub const ARTIFACT_VERSION: u32 = 1;
pub const ARTIFACT_EXT: &str = "schedule";

/// A parsed (or to-be-written) schedule artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    pub scenario: String,
    pub fault: usize,
    pub fault_label: String,
    pub fast_path: bool,
    pub prefix: Vec<u32>,
    pub kind: ViolationKind,
    pub detail: String,
    pub log_hash: u64,
}

impl Artifact {
    /// Build an artifact from an explorer failure (must be replay-verified).
    pub fn from_failure(f: &ScheduleFailure, fast_path: bool) -> Artifact {
        Artifact {
            scenario: f.scenario.clone(),
            fault: f.fault,
            fault_label: f.fault_label.clone(),
            fast_path,
            prefix: f.minimal.clone(),
            kind: f.violation.kind,
            detail: f.violation.detail.clone(),
            log_hash: f.log_hash,
        }
    }

    pub fn serialize(&self) -> String {
        let decisions = if self.prefix.is_empty() {
            "-".to_string()
        } else {
            self.prefix
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "# hupc-check minimal failing schedule\n\
             version: {}\n\
             scenario: {}\n\
             fault: {} {}\n\
             fast_path: {}\n\
             decisions: {}\n\
             violation: {}\n\
             detail: {}\n\
             log_hash: {:#018x}\n",
            ARTIFACT_VERSION,
            self.scenario,
            self.fault,
            self.fault_label,
            if self.fast_path { "on" } else { "off" },
            decisions,
            self.kind.as_str(),
            escape(&self.detail),
            self.log_hash,
        )
    }

    pub fn parse(text: &str) -> Result<Artifact, String> {
        let mut scenario = None;
        let mut fault = None;
        let mut fault_label = String::new();
        let mut fast_path = None;
        let mut prefix = None;
        let mut kind = None;
        let mut detail = String::new();
        let mut hash = None;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed line: {line:?}"))?;
            let value = value.trim();
            match key.trim() {
                "version" => {
                    let v: u32 = value.parse().map_err(|_| "bad version".to_string())?;
                    if v != ARTIFACT_VERSION {
                        return Err(format!("unsupported artifact version {v}"));
                    }
                }
                "scenario" => scenario = Some(value.to_string()),
                "fault" => {
                    let mut it = value.splitn(2, ' ');
                    let idx: usize = it
                        .next()
                        .unwrap_or("")
                        .parse()
                        .map_err(|_| format!("bad fault index in {value:?}"))?;
                    fault = Some(idx);
                    fault_label = it.next().unwrap_or("").to_string();
                }
                "fast_path" => {
                    fast_path = Some(match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(format!("bad fast_path {value:?}")),
                    })
                }
                "decisions" => {
                    let p = if value == "-" {
                        Vec::new()
                    } else {
                        value
                            .split(',')
                            .map(|c| c.trim().parse::<u32>())
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(|_| format!("bad decisions {value:?}"))?
                    };
                    prefix = Some(p);
                }
                "violation" => {
                    kind = Some(
                        ViolationKind::parse(value)
                            .ok_or_else(|| format!("unknown violation kind {value:?}"))?,
                    )
                }
                "detail" => detail = unescape(value),
                "log_hash" => {
                    let v = value.trim_start_matches("0x");
                    hash = Some(
                        u64::from_str_radix(v, 16)
                            .map_err(|_| format!("bad log_hash {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(Artifact {
            scenario: scenario.ok_or("missing scenario")?,
            fault: fault.ok_or("missing fault")?,
            fault_label,
            fast_path: fast_path.ok_or("missing fast_path")?,
            prefix: prefix.ok_or("missing decisions")?,
            kind: kind.ok_or("missing violation")?,
            detail,
            log_hash: hash.ok_or("missing log_hash")?,
        })
    }

    /// Canonical file name for this artifact.
    pub fn file_name(&self) -> String {
        format!(
            "{}-f{}-{:016x}.{}",
            self.scenario, self.fault, self.log_hash, ARTIFACT_EXT
        )
    }

    /// Re-run the recorded minimal schedule and check it still reproduces:
    /// same violation kind *and* the same decision-log fingerprint. Returns
    /// the fresh violation on success.
    pub fn replay(&self) -> Result<Violation, String> {
        let s = find_scenario(&self.scenario)
            .ok_or_else(|| format!("unknown scenario {:?}", self.scenario))?;
        if self.fault >= s.fault_labels().len() {
            return Err(format!(
                "fault index {} out of range for {:?}",
                self.fault, self.scenario
            ));
        }
        let policy = PolicyHandle::prefix(&self.prefix);
        let out = s.run(&policy, self.fault, self.fast_path);
        let got_hash = log_hash(&out.decisions);
        let v = out.violation.ok_or_else(|| {
            format!(
                "schedule no longer fails: {:?} prefix {:?} ran clean \
                 (runtime change? regenerate the corpus entry)",
                self.scenario, self.prefix
            )
        })?;
        if v.kind != self.kind {
            return Err(format!(
                "violation kind drifted: recorded {}, replay produced {} ({})",
                self.kind.as_str(),
                v.kind.as_str(),
                v.detail
            ));
        }
        if got_hash != self.log_hash {
            return Err(format!(
                "decision log drifted: recorded {:#018x}, replay produced {got_hash:#018x} \
                 (the schedule space changed; regenerate the corpus entry)",
                self.log_hash
            ));
        }
        Ok(v)
    }
}

/// Escape a detail string onto one line.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            scenario: "missed_notify".into(),
            fault: 0,
            fault_label: "none".into(),
            fast_path: true,
            prefix: vec![1],
            kind: ViolationKind::Deadlock,
            detail: "deadlock at t=10ns:\n  waiter stuck".into(),
            log_hash: 0x9C33_A1B2_C4D5_E6F7,
        }
    }

    #[test]
    fn roundtrips_through_text() {
        let a = sample();
        let text = a.serialize();
        let b = Artifact::parse(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_prefix_roundtrips() {
        let mut a = sample();
        a.prefix = Vec::new();
        let b = Artifact::parse(&a.serialize()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detail_with_newlines_stays_one_record_per_line() {
        let a = sample();
        let text = a.serialize();
        // Exactly one `detail:` line despite the embedded newline.
        assert_eq!(text.lines().filter(|l| l.starts_with("detail:")).count(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Artifact::parse("version: 99\n").is_err());
        assert!(Artifact::parse("scenario: x\nnonsense\n").is_err());
        let mut a = sample();
        a.scenario = "no_such_scenario".into();
        assert!(a.replay().is_err());
    }
}
