//! `hupc-groups` — the thesis' first approach to hierarchical parallelism
//! (Chapter 3): **cooperative thread groups**.
//!
//! Threads are grouped by hardware locality (node, socket, or custom sets);
//! a group over a shared-memory domain carries a *pointer table* of pre-cast
//! local views into every member's partition, eliminating the per-access
//! pointer-to-shared translation (§3.3: "Local pointer tables are also
//! created at each thread … direct access to the collective thread group
//! shared memory without expensive shared pointer casting").
//!
//! Groups stay within UPC's single-level SPMD model — they organize the
//! existing `THREADS`, unlike the nested sub-threads of Chapter 4 — and may
//! overlap (a thread can hold a node group and a socket group at once).

mod group;
mod set;

pub use group::ThreadGroup;
pub use set::{GroupLevel, GroupSet};
