//! Group sets: topology-driven partitions of all UPC threads.
//!
//! §3.2.1: "applications select the most appropriate thread grouping for the
//! underlying system by querying the hardware attributes at runtime" —
//! `GroupSet::partition` is that query + construction in one step. Sets at
//! different levels may coexist (overlapping groups).

use std::collections::BTreeMap;
use std::sync::Arc;

use hupc_sim::Kernel;
use hupc_upc::UpcRuntime;

use crate::group::ThreadGroup;

/// Hardware level to partition by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupLevel {
    /// One group per cluster node (the SMP domain; the level UTS and the
    /// STREAM study use).
    Node,
    /// One group per CPU socket (ccNUMA domain).
    Socket,
}

/// A partition of all UPC threads into locality groups.
pub struct GroupSet {
    groups: Vec<Arc<ThreadGroup>>,
    of_thread: Vec<usize>,
    level: GroupLevel,
}

impl GroupSet {
    /// Partition every thread of the job by `level`.
    pub fn partition(kernel: &mut Kernel, rt: &Arc<UpcRuntime>, level: GroupLevel) -> Self {
        let gasnet = rt.gasnet();
        let machine = gasnet.machine();
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in 0..gasnet.n_threads() {
            let key = match level {
                GroupLevel::Node => gasnet.thread_node(t).0,
                GroupLevel::Socket => gasnet.placement().thread_socket(machine, t).0,
            };
            buckets.entry(key).or_default().push(t);
        }
        let mut groups = Vec::with_capacity(buckets.len());
        let mut of_thread = vec![0usize; gasnet.n_threads()];
        for (gi, (_, members)) in buckets.into_iter().enumerate() {
            for &m in &members {
                of_thread[m] = gi;
            }
            groups.push(Arc::new(ThreadGroup::new(kernel, rt, members)));
        }
        GroupSet {
            groups,
            of_thread,
            level,
        }
    }

    pub fn level(&self) -> GroupLevel {
        self.level
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group containing `thread`.
    pub fn group_of(&self, thread: usize) -> &Arc<ThreadGroup> {
        &self.groups[self.of_thread[thread]]
    }

    /// Index of the group containing `thread`.
    pub fn group_index_of(&self, thread: usize) -> usize {
        self.of_thread[thread]
    }

    /// All groups.
    pub fn groups(&self) -> &[Arc<ThreadGroup>] {
        &self.groups
    }

    /// Threads *outside* `thread`'s group, ascending (remote-victim
    /// candidates for hierarchical work stealing).
    pub fn outsiders_of(&self, thread: usize) -> Vec<usize> {
        let g = self.of_thread[thread];
        (0..self.of_thread.len())
            .filter(|&t| self.of_thread[t] != g)
            .collect()
    }
}

impl std::fmt::Debug for GroupSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSet")
            .field("level", &self.level)
            .field("groups", &self.groups.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_upc::{UpcConfig, UpcJob};

    #[test]
    fn node_partition_covers_all_threads_once() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let set = GroupSet::partition(&mut job.kernel(), job.runtime(), GroupLevel::Node);
        assert_eq!(set.len(), 2);
        let mut seen = vec![0; 8];
        for g in set.groups() {
            for &m in g.members() {
                seen[m] += 1;
            }
        }
        assert_eq!(seen, vec![1; 8]);
        assert_eq!(set.group_of(0).members(), &[0, 1, 2, 3]);
        assert_eq!(set.group_of(5).members(), &[4, 5, 6, 7]);
    }

    #[test]
    fn socket_partition_is_finer() {
        // testbox: 2 sockets × 2 cores per node; 4 threads on 1 node
        let job = UpcJob::new(UpcConfig::test_default(4, 1));
        let set = GroupSet::partition(&mut job.kernel(), job.runtime(), GroupLevel::Socket);
        assert_eq!(set.len(), 2);
        for g in set.groups() {
            assert_eq!(g.size(), 2);
            assert!(g.has_cast_table());
        }
    }

    #[test]
    fn outsiders_complement_the_group() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let set = GroupSet::partition(&mut job.kernel(), job.runtime(), GroupLevel::Node);
        assert_eq!(set.outsiders_of(1), vec![4, 5, 6, 7]);
        assert_eq!(set.outsiders_of(6), vec![0, 1, 2, 3]);
    }

    #[test]
    fn overlapping_levels_coexist() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let k = &mut job.kernel();
        let nodes = GroupSet::partition(k, job.runtime(), GroupLevel::Node);
        let sockets = GroupSet::partition(k, job.runtime(), GroupLevel::Socket);
        // thread 0's socket group is a subset of its node group
        let ng: Vec<usize> = nodes.group_of(0).members().to_vec();
        let sg: Vec<usize> = sockets.group_of(0).members().to_vec();
        assert!(sg.iter().all(|m| ng.contains(m)));
        assert!(sg.len() < ng.len());
    }

    #[test]
    fn group_barrier_in_spmd_program() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let set = Arc::new(GroupSet::partition(
            &mut job.kernel(),
            job.runtime(),
            GroupLevel::Node,
        ));
        job.run(move |upc| {
            let me = upc.mythread();
            upc.ctx().advance(hupc_sim::time::us(me as u64));
            let g = set.group_of(me);
            g.barrier(&upc);
            // group members released together: all at the max arrival of
            // their own group (+ release cost), groups independent
            let _ = g;
        });
    }
}
