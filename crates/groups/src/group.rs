//! A single thread group: membership, group barrier, pre-cast access.

use std::sync::Arc;

use hupc_gasnet::Team;
use hupc_sim::Kernel;
use hupc_upc::{PgasElem, SharedArray, Upc, UpcRuntime};

/// A subset of UPC threads cooperating as a unit.
pub struct ThreadGroup {
    team: Team,
    /// Whether every member pair is castable (the group spans one
    /// shared-memory domain) — computed once, like the §3.3 setup phase.
    shared_memory: bool,
}

impl ThreadGroup {
    /// Build a group over `members`. Pre-verifies castability so members can
    /// use the zero-overhead access paths without per-access checks.
    pub fn new(kernel: &mut Kernel, rt: &Arc<UpcRuntime>, members: Vec<usize>) -> Self {
        let team = Team::new(kernel, Arc::clone(rt.gasnet()), members);
        let shared_memory = team.is_shared_memory();
        ThreadGroup {
            team,
            shared_memory,
        }
    }

    /// Members, ascending.
    pub fn members(&self) -> &[usize] {
        self.team.members()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.team.size()
    }

    /// Rank of a UPC thread within the group, if a member.
    pub fn rank_of(&self, thread: usize) -> Option<usize> {
        self.team.rank_of(thread)
    }

    /// UPC thread at a group rank.
    pub fn thread_at(&self, rank: usize) -> usize {
        self.team.thread_at(rank)
    }

    /// Lowest-numbered member (the group leader by convention).
    pub fn leader(&self) -> usize {
        self.team.members()[0]
    }

    /// Whether the group's pointer table is usable (all members castable).
    pub fn has_cast_table(&self) -> bool {
        self.shared_memory
    }

    /// Group barrier.
    pub fn barrier(&self, upc: &Upc<'_>) {
        upc.flush_access_costs();
        self.team.barrier(upc.ctx(), upc.mythread());
    }

    /// Members other than `me`, in ring order starting after `me`.
    pub fn peers_of(&self, me: usize) -> Vec<usize> {
        let rank = self
            .rank_of(me)
            .unwrap_or_else(|| panic!("thread {me} not in group"));
        let n = self.size();
        (1..n).map(|d| self.thread_at((rank + d) % n)).collect()
    }

    /// Access `member`'s chunk of `array` through the pre-cast pointer
    /// table: zero software overhead (the caller charges memory traffic when
    /// timed). Panics if the group has no cast table.
    pub fn with_member_words<T: PgasElem, R>(
        &self,
        upc: &Upc<'_>,
        array: &SharedArray<T>,
        member: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        assert!(
            self.shared_memory,
            "group spans multiple shared-memory domains; no cast table"
        );
        debug_assert!(self.rank_of(member).is_some(), "{member} not in group");
        array.with_cast_words(upc, member, f)
    }
}

impl std::fmt::Debug for ThreadGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadGroup")
            .field("members", &self.members())
            .field("cast_table", &self.shared_memory)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_upc::{UpcConfig, UpcJob};

    #[test]
    fn ring_peers() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let g = ThreadGroup::new(&mut job.kernel(), job.runtime(), vec![0, 1, 2, 3]);
        assert_eq!(g.peers_of(1), vec![2, 3, 0]);
        assert_eq!(g.leader(), 0);
        assert_eq!(g.size(), 4);
    }

    #[test]
    fn cast_table_presence_follows_topology() {
        let job = UpcJob::new(UpcConfig::test_default(8, 2));
        let k = &mut job.kernel();
        let intra = ThreadGroup::new(k, job.runtime(), vec![0, 1, 2, 3]);
        let cross = ThreadGroup::new(k, job.runtime(), vec![0, 4]);
        assert!(intra.has_cast_table());
        assert!(!cross.has_cast_table());
    }

    #[test]
    fn member_access_through_cast_table() {
        let job = UpcJob::new(UpcConfig::test_default(4, 1));
        let a = job.alloc_shared::<u64>(16, 4);
        let g = Arc::new(ThreadGroup::new(
            &mut job.kernel(),
            job.runtime(),
            (0..4).collect(),
        ));
        job.run(move |upc| {
            let me = upc.mythread();
            // each thread writes into its ring-successor's chunk directly
            let succ = g.peers_of(me)[0];
            g.with_member_words(&upc, &a, succ, |w| w[0] = 1000 + me as u64);
            g.barrier(&upc);
            a.with_local_words(&upc, |w| {
                let pred = g.peers_of(me)[2]; // ring predecessor in a 4-group
                assert_eq!(w[0], 1000 + pred as u64);
            });
        });
    }

    #[test]
    #[should_panic(expected = "no cast table")]
    fn cross_node_member_access_panics() {
        let job = UpcJob::new(UpcConfig::test_default(4, 2));
        let a = job.alloc_shared::<u64>(8, 2);
        let g = Arc::new(ThreadGroup::new(
            &mut job.kernel(),
            job.runtime(),
            (0..4).collect(),
        ));
        job.run(move |upc| {
            if upc.mythread() == 0 {
                g.with_member_words(&upc, &a, 2, |_| {});
            }
        });
    }
}
