//! Hybrid UPC×sub-thread STREAM placement study (thesis §4.3.2, Table 4.1).
//!
//! The kernel is the plain triad; what varies is *who owns the arrays* and
//! *where the workers run*. UPC shared arrays are first-touched by their
//! owning UPC thread, so a 1×8 configuration funnels all eight workers
//! through the master's socket — the thesis' 13.9 GB/s row — while 2×4 and
//! 4×2 with socket binding stream from both controllers at full rate.

use std::sync::Arc;

use hupc_sim::{time, SimCell};
use hupc_subthreads::{SubPool, SubthreadModel};
use hupc_topo::{BindPolicy, MachineSpec, SocketId};
use hupc_upc::{
    Backend, Conduit, GasnetConfig, SharedArray, ThreadSafety, UpcConfig, UpcJob, UpcRuntime,
};

use crate::twisted::TriadResult;

/// A row of Table 4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HybridLayout {
    /// Pure UPC, one thread per core, socket-round-robin binding.
    PureUpc { threads: usize },
    /// Pure OpenMP analogue: one process, `threads` sub-threads, parallel
    /// first touch (pages spread over both sockets).
    PureOpenMp { threads: usize },
    /// `upc × subs` hybrid. `bound` pins each UPC thread (and its pool) to
    /// a socket; unbound reproduces the thesis' degraded 1×8 row.
    Hybrid {
        upc: usize,
        subs: usize,
        bound: bool,
    },
}

impl HybridLayout {
    pub fn name(&self) -> String {
        match self {
            HybridLayout::PureUpc { threads } => format!("UPC {threads}"),
            HybridLayout::PureOpenMp { threads } => format!("OpenMP {threads}"),
            HybridLayout::Hybrid { upc, subs, bound } => {
                if *bound {
                    format!("UPC*OpenMP {upc}*{subs}")
                } else {
                    format!("UPC*OpenMP {upc}*{subs} (no binding)")
                }
            }
        }
    }

    fn upc_threads(&self) -> usize {
        match self {
            HybridLayout::PureUpc { threads } => *threads,
            HybridLayout::PureOpenMp { .. } => 1,
            HybridLayout::Hybrid { upc, .. } => *upc,
        }
    }

    fn subs(&self) -> usize {
        match self {
            HybridLayout::PureUpc { .. } => 1,
            HybridLayout::PureOpenMp { threads } => *threads,
            HybridLayout::Hybrid { subs, .. } => *subs,
        }
    }

    fn bind(&self) -> BindPolicy {
        match self {
            HybridLayout::PureUpc { .. } => BindPolicy::RoundRobinSockets,
            HybridLayout::PureOpenMp { .. } => BindPolicy::Unbound,
            HybridLayout::Hybrid { bound, .. } => {
                if *bound {
                    BindPolicy::RoundRobinSockets
                } else {
                    BindPolicy::Unbound
                }
            }
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    pub machine: MachineSpec,
    pub layout: HybridLayout,
    /// Total elements per array (split over UPC threads).
    pub elems_total: usize,
    pub iters: usize,
}

impl HybridConfig {
    /// The Table 4.1 setup: one Lehman node.
    pub fn table_4_1(layout: HybridLayout) -> Self {
        HybridConfig {
            machine: MachineSpec::lehman().with_nodes(1),
            layout,
            elems_total: 1 << 22,
            iters: 10,
        }
    }

    /// Scaled-down setup for tests.
    pub fn small(layout: HybridLayout) -> Self {
        HybridConfig {
            machine: MachineSpec::small_test(1),
            layout,
            elems_total: 1 << 14,
            iters: 2,
        }
    }
}

const SCALAR: f64 = 3.0;

/// Run the hybrid triad; bandwidth is the STREAM-convention 24 B/element.
pub fn run_hybrid_triad(cfg: HybridConfig) -> TriadResult {
    let u = cfg.layout.upc_threads();
    let subs = cfg.layout.subs();
    let n_per = cfg.elems_total / u;
    assert!(n_per > 0 && cfg.elems_total % u == 0);
    let job = UpcJob::new(UpcConfig {
        gasnet: GasnetConfig {
            machine: cfg.machine.clone(),
            n_threads: u,
            nodes_used: 1,
            bind: cfg.layout.bind(),
            backend: Backend::processes_pshm(),
            conduit: Conduit::ib_qdr(),
            segment_words: 1 << 10,
            overheads: None,
            fault: None,
            retry: Default::default(),
            barrier_timeout: None,
        },
        safety: ThreadSafety::Multiple,
    });
    let a = job.alloc_shared::<f64>(cfg.elems_total, n_per);
    let b = job.alloc_shared::<f64>(cfg.elems_total, n_per);
    let c = job.alloc_shared::<f64>(cfg.elems_total, n_per);
    let rt = Arc::clone(job.runtime());

    let out: Arc<SimCell<TriadResult>> = Arc::new(SimCell::default());
    let out2 = Arc::clone(&out);
    let layout = cfg.layout;
    let iters = cfg.iters;

    job.run(move |upc| {
        let me = upc.mythread();
        // Untimed init of this thread's chunks.
        for (arr, scale) in [(b, 1.0f64), (c, 0.5)] {
            arr.with_local_words(&upc, |w| {
                for (k, x) in w.iter_mut().enumerate() {
                    *x = (scale * (me * n_per + k) as f64).to_bits();
                }
            });
        }
        let pool = SubPool::spawn(&upc, subs, SubthreadModel::OpenMp);
        upc.barrier();
        let t0 = upc.now();
        for _ in 0..iters {
            triad_region(&upc, &rt, &pool, layout, a, b, c, me, n_per);
            upc.barrier();
        }
        let dt = upc.now() - t0;
        pool.shutdown(upc.ctx());
        // Untimed verification.
        let mut max_err = 0.0f64;
        a.with_local_words(&upc, |w| {
            for (k, x) in w.iter().enumerate() {
                let idx = (me * n_per + k) as f64;
                let err = (f64::from_bits(*x) - (idx + SCALAR * 0.5 * idx)).abs();
                max_err = max_err.max(err);
            }
        });
        let max_err = f64::from_bits(upc.allreduce_words(max_err.to_bits(), |x, y| {
            if f64::from_bits(x) >= f64::from_bits(y) {
                x
            } else {
                y
            }
        }));
        if me == 0 {
            let secs = time::as_secs_f64(dt);
            let bytes = 24.0 * n_per as f64 * upc.threads() as f64 * iters as f64;
            out2.with_mut(|r| {
                *r = TriadResult {
                    variant: layout.name(),
                    gbps: bytes / secs / 1e9,
                    seconds: secs,
                    max_error: max_err,
                }
            });
        }
    });
    Arc::try_unwrap(out).expect("result still shared").into_inner()
}

/// One timed parallel triad over this UPC thread's chunk.
#[allow(clippy::too_many_arguments)]
fn triad_region(
    upc: &hupc_upc::Upc<'_>,
    rt: &Arc<UpcRuntime>,
    pool: &SubPool,
    layout: HybridLayout,
    a: SharedArray<f64>,
    b: SharedArray<f64>,
    c: SharedArray<f64>,
    me: usize,
    n_per: usize,
) {
    let master_home = upc.segment_home(me);
    let rt2 = Arc::clone(rt);
    let machine_sockets_first_touch = matches!(layout, HybridLayout::PureOpenMp { .. });
    pool.parallel_for(upc.ctx(), n_per, move |w, range| {
        if range.is_empty() {
            return;
        }
        let view = rt2.view(w.ctx(), me);
        let (lo, len) = (range.start, range.len());
        // Real arithmetic on the real data.
        let mut bw = vec![0u64; len];
        let mut cw = vec![0u64; len];
        b.with_local_words(&view, |words| bw.copy_from_slice(&words[lo..lo + len]));
        c.with_local_words(&view, |words| cw.copy_from_slice(&words[lo..lo + len]));
        a.with_local_words(&view, |words| {
            for k in 0..len {
                let v = f64::from_bits(bw[k]) + SCALAR * f64::from_bits(cw[k]);
                words[lo + k] = v.to_bits();
            }
        });
        // Charge 24 B/element on the page-home socket: the master's socket
        // for UPC-owned arrays, the worker's own socket when the pages were
        // first-touched in parallel (pure OpenMP).
        let home = if machine_sockets_first_touch {
            let g = view.gasnet();
            let m = g.machine();
            SocketId(m.pu_socket(w.pu()).0)
        } else {
            master_home
        };
        w.mem_stream(home, 24 * len);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layouts_verify() {
        for layout in [
            HybridLayout::PureUpc { threads: 4 },
            HybridLayout::PureOpenMp { threads: 4 },
            HybridLayout::Hybrid {
                upc: 2,
                subs: 2,
                bound: true,
            },
            HybridLayout::Hybrid {
                upc: 1,
                subs: 4,
                bound: false,
            },
        ] {
            let r = run_hybrid_triad(HybridConfig::small(layout));
            assert_eq!(r.max_error, 0.0, "{}", r.variant);
            assert!(r.gbps > 0.0);
        }
    }

    #[test]
    fn unbound_1xn_runs_at_roughly_half_bandwidth() {
        let good = run_hybrid_triad(HybridConfig::small(HybridLayout::Hybrid {
            upc: 2,
            subs: 2,
            bound: true,
        }));
        let bad = run_hybrid_triad(HybridConfig::small(HybridLayout::Hybrid {
            upc: 1,
            subs: 4,
            bound: false,
        }));
        let ratio = good.gbps / bad.gbps;
        assert!(
            (1.5..2.6).contains(&ratio),
            "good {:.2} / bad {:.2} = {ratio:.2}",
            good.gbps,
            bad.gbps
        );
    }

    #[test]
    fn bound_hybrid_matches_pure_upc() {
        let pure = run_hybrid_triad(HybridConfig::small(HybridLayout::PureUpc { threads: 4 }));
        let hybrid = run_hybrid_triad(HybridConfig::small(HybridLayout::Hybrid {
            upc: 2,
            subs: 2,
            bound: true,
        }));
        let ratio = hybrid.gbps / pure.gbps;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio:.2}");
    }
}
