//! `hupc-stream` — the STREAM triad studies of the thesis.
//!
//! Two experiments use the triad kernel `a[i] = b[i] + s·c[i]`:
//!
//! * **Twisted triad** (§3.3.1, Table 3.1): odd/even neighbour threads read
//!   each other's `b`/`c`, so every access goes through a pointer-to-shared.
//!   Four variants — fine-grained baseline, bulk re-localization,
//!   `bupc_cast` privatization, and an OpenMP-style pure-shared-memory
//!   analogue — separate the *pointer translation* cost from the *memory
//!   bandwidth* cost.
//! * **Hybrid placement** (§4.3.2, Table 4.1): the arrays belong to 1, 2 or
//!   4 UPC threads and are touched by OpenMP-style sub-threads; first-touch
//!   NUMA homing makes the 1×8 unbound configuration run at roughly half
//!   the node's bandwidth.
//!
//! All variants execute the real floating-point kernel on the real array
//! data (results are verified) and charge the modeled costs of the access
//! path each variant takes.

mod hybrid;
mod twisted;

pub use hybrid::{run_hybrid_triad, HybridConfig, HybridLayout};
pub use twisted::{run_twisted_triad, TriadResult, TriadVariant, TwistedConfig};
