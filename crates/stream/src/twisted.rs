//! The twisted STREAM triad (thesis §3.3.1, Table 3.1).

use std::sync::Arc;

use hupc_sim::{time, SimCell};
use hupc_topo::MachineSpec;
use hupc_upc::{Conduit, FaultPlan, SharedArray, Upc, UpcConfig, UpcJob};

/// Which implementation of the twisted triad to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriadVariant {
    /// Every access through a pointer-to-shared: one translation per
    /// element access (the untuned UPC program).
    UpcBaseline,
    /// Bulk `upc_memget` of the neighbour's `b`/`c` into private buffers,
    /// then a private triad (re-localization).
    UpcRelocalize,
    /// `bupc_cast` pointer table: direct loads/stores, no translation.
    UpcCast,
    /// Pure shared-memory analogue (the OpenMP row of Table 3.1).
    OpenMpAnalog,
}

impl TriadVariant {
    pub fn name(&self) -> &'static str {
        match self {
            TriadVariant::UpcBaseline => "UPC baseline",
            TriadVariant::UpcRelocalize => "UPC with re-localization",
            TriadVariant::UpcCast => "UPC with cast",
            TriadVariant::OpenMpAnalog => "OpenMP baseline",
        }
    }

    pub fn all() -> [TriadVariant; 4] {
        [
            TriadVariant::UpcBaseline,
            TriadVariant::UpcRelocalize,
            TriadVariant::UpcCast,
            TriadVariant::OpenMpAnalog,
        ]
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct TwistedConfig {
    pub machine: MachineSpec,
    pub threads: usize,
    pub variant: TriadVariant,
    /// Elements of each array with affinity to each thread.
    pub elems_per_thread: usize,
    pub iters: usize,
    /// Optional deterministic fault plan applied to the network.
    pub fault: Option<FaultPlan>,
}

impl TwistedConfig {
    /// The Table 3.1 setup: 8 threads on one dual-socket Nehalem node with
    /// thread binding.
    pub fn table_3_1(variant: TriadVariant) -> Self {
        TwistedConfig {
            machine: MachineSpec::lehman().with_nodes(1),
            threads: 8,
            variant,
            elems_per_thread: 1 << 19,
            iters: 10,
            fault: None,
        }
    }

    /// Scaled-down setup for tests.
    pub fn small(variant: TriadVariant) -> Self {
        TwistedConfig {
            machine: MachineSpec::small_test(1),
            threads: 4,
            variant,
            elems_per_thread: 1 << 12,
            iters: 2,
            fault: None,
        }
    }
}

/// Result of one triad run.
#[derive(Clone, Debug, Default)]
pub struct TriadResult {
    pub variant: String,
    /// STREAM-convention bandwidth: 24 bytes per element per iteration.
    pub gbps: f64,
    pub seconds: f64,
    /// Max absolute error of the computed triad vs. the reference (must be
    /// 0.0 — the kernel really runs).
    pub max_error: f64,
}

const SCALAR: f64 = 3.0;

/// Run the twisted triad and report bandwidth + verification.
pub fn run_twisted_triad(cfg: TwistedConfig) -> TriadResult {
    assert!(cfg.threads % 2 == 0, "twisting pairs threads odd/even");
    let n_per = cfg.elems_per_thread;
    // PackedCores (the `standard` bind) keeps odd/even pairs on one socket,
    // as the thesis' bound runs do.
    let job = UpcJob::new(UpcConfig::standard(
        cfg.machine.clone(),
        cfg.threads,
        1,
        Conduit::ib_qdr(),
        1 << 10,
        cfg.fault.clone(),
    ));
    let n_total = n_per * cfg.threads;
    let a = job.alloc_shared::<f64>(n_total, n_per);
    let b = job.alloc_shared::<f64>(n_total, n_per);
    let c = job.alloc_shared::<f64>(n_total, n_per);

    let out: Arc<SimCell<TriadResult>> = Arc::new(SimCell::default());
    let out2 = Arc::clone(&out);
    let variant = cfg.variant;
    let iters = cfg.iters;

    job.run(move |upc| {
        let me = upc.mythread();
        // --- init (untimed, like STREAM's setup) ---
        init_arrays(&upc, &b, &c, me, n_per);
        upc.barrier();
        let t0 = upc.now();
        for _ in 0..iters {
            triad_once(&upc, variant, &a, &b, &c, me, n_per);
            upc.barrier();
        }
        let dt = upc.now() - t0;
        // --- verification (untimed) ---
        let err = verify(&upc, &a, me, n_per);
        let max_err = f64::from_bits(upc.allreduce_words(err.to_bits(), |x, y| {
            if f64::from_bits(x) >= f64::from_bits(y) {
                x
            } else {
                y
            }
        }));
        if me == 0 {
            let secs = time::as_secs_f64(dt);
            let bytes = 24.0 * n_per as f64 * upc.threads() as f64 * iters as f64;
            out2.with_mut(|r| {
                *r = TriadResult {
                    variant: variant.name().to_string(),
                    gbps: bytes / secs / 1e9,
                    seconds: secs,
                    max_error: max_err,
                }
            });
        }
    });
    Arc::try_unwrap(out).expect("result still shared").into_inner()
}

/// Fill this thread's chunks of `b` and `c` (untimed setup).
fn init_arrays(
    upc: &Upc<'_>,
    b: &SharedArray<f64>,
    c: &SharedArray<f64>,
    me: usize,
    n_per: usize,
) {
    b.with_local_words(upc, |w| {
        for (k, x) in w.iter_mut().enumerate().take(n_per) {
            *x = ((me * n_per + k) as f64).to_bits();
        }
    });
    c.with_local_words(upc, |w| {
        for (k, x) in w.iter_mut().enumerate().take(n_per) {
            *x = (0.5 * (me * n_per + k) as f64).to_bits();
        }
    });
}

/// One timed triad iteration: `a[me] = b[twin] + s·c[twin]`.
#[allow(clippy::needless_range_loop)]
fn triad_once(
    upc: &Upc<'_>,
    variant: TriadVariant,
    a: &SharedArray<f64>,
    b: &SharedArray<f64>,
    c: &SharedArray<f64>,
    me: usize,
    n_per: usize,
) {
    let twin = me ^ 1; // odd/even neighbour
    let my_home = upc.segment_home(me);
    let twin_home = upc.segment_home(twin);
    match variant {
        TriadVariant::UpcBaseline | TriadVariant::UpcCast => {
            // Data movement identical; what differs is the software cost.
            read_neighbor_triad(upc, a, b, c, twin, n_per, false);
            if variant == TriadVariant::UpcBaseline {
                // 3 shared accesses per element through pointers-to-shared.
                upc.note_translation(3 * n_per as u64);
            }
            upc.note_socket_traffic(twin_home, 16 * n_per as u64); // read b,c
            upc.note_socket_traffic(my_home, 8 * n_per as u64); // write a
        }
        TriadVariant::UpcRelocalize => {
            // Bulk upc_memget into private buffers (charged by the runtime
            // along the PSHM path), then a fully private triad.
            read_neighbor_triad(upc, a, b, c, twin, n_per, true);
            // The modeled program allocates its bounce buffers per iteration:
            // the private triad streams 24 B/element locally and the
            // first-touch-cold buffers add another 16 B/element of write
            // traffic — together placing re-localization between the
            // baseline and the cast variant, as in Table 3.1. (The host-side
            // scratch reuse above is a simulator optimization; the charge
            // models the thesis program, unchanged.)
            upc.note_socket_traffic(my_home, (24 + 16) * n_per as u64);
        }
        TriadVariant::OpenMpAnalog => {
            // Pure shared-memory program: plain loads/stores, no PGAS
            // machinery at all; small per-iteration fork-join cost.
            read_neighbor_triad(upc, a, b, c, twin, n_per, false);
            upc.note_socket_traffic(twin_home, 16 * n_per as u64);
            upc.note_socket_traffic(my_home, 8 * n_per as u64);
            upc.ctx().advance(time::us(2)); // omp parallel region overhead
        }
    }
}

/// Copy the neighbour's `b`/`c` words into the thread's reusable scratch —
/// via timed `upc_memget`s when `through_memget` (the re-localization
/// variant) or through the shared-memory window (cost accounting is the
/// caller's) — then run the private triad into `a`.
#[allow(clippy::needless_range_loop)]
fn read_neighbor_triad(
    upc: &Upc<'_>,
    a: &SharedArray<f64>,
    b: &SharedArray<f64>,
    c: &SharedArray<f64>,
    twin: usize,
    n_per: usize,
    through_memget: bool,
) {
    upc.with_scratch(2 * n_per, |buf| {
        let (bw, cw) = buf.split_at_mut(n_per);
        if through_memget {
            upc.memget(twin, b.word_offset(), bw);
            upc.memget(twin, c.word_offset(), cw);
        } else {
            b.with_cast_words(upc, twin, |w| bw.copy_from_slice(&w[..n_per]));
            c.with_cast_words(upc, twin, |w| cw.copy_from_slice(&w[..n_per]));
        }
        a.with_local_words(upc, |aw| {
            for k in 0..n_per {
                let v = f64::from_bits(bw[k]) + SCALAR * f64::from_bits(cw[k]);
                aw[k] = v.to_bits();
            }
        });
    });
}

/// Check `a[me] == b[twin] + s·c[twin]` elementwise; returns max |error|.
fn verify(upc: &Upc<'_>, a: &SharedArray<f64>, me: usize, n_per: usize) -> f64 {
    let twin = me ^ 1;
    let mut max_err = 0.0f64;
    a.with_local_words(upc, |aw| {
        for (k, &word) in aw.iter().enumerate().take(n_per) {
            let idx = (twin * n_per + k) as f64;
            let expect = idx + SCALAR * 0.5 * idx;
            let err = (f64::from_bits(word) - expect).abs();
            if err > max_err {
                max_err = err;
            }
        }
    });
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_the_right_answer() {
        for v in TriadVariant::all() {
            let r = run_twisted_triad(TwistedConfig::small(v));
            assert_eq!(r.max_error, 0.0, "{}", r.variant);
            assert!(r.gbps > 0.0);
        }
    }

    #[test]
    fn cast_removes_the_translation_gap() {
        let base = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcBaseline));
        let cast = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcCast));
        // Table 3.1 shape: cast ≫ baseline (7.25× in the thesis).
        assert!(
            cast.gbps > base.gbps * 3.0,
            "cast {:.2} vs baseline {:.2}",
            cast.gbps,
            base.gbps
        );
    }

    #[test]
    fn relocalization_sits_between() {
        let base = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcBaseline));
        let relo = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcRelocalize));
        let cast = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcCast));
        assert!(base.gbps < relo.gbps, "{} !< {}", base.gbps, relo.gbps);
        assert!(relo.gbps < cast.gbps, "{} !< {}", relo.gbps, cast.gbps);
    }

    #[test]
    fn openmp_matches_cast() {
        let omp = run_twisted_triad(TwistedConfig::small(TriadVariant::OpenMpAnalog));
        let cast = run_twisted_triad(TwistedConfig::small(TriadVariant::UpcCast));
        let ratio = omp.gbps / cast.gbps;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }
}
