//! `hupc-gups` — the Random Access (GUPS) benchmark with hierarchical
//! update aggregation.
//!
//! Thesis §4.4 lists *Random Access* next to UTS as an application "written
//! using simple data/task parallel abstractions" where "the thread group
//! approach would fit better". This crate builds it: a distributed table of
//! 64-bit words receives a stream of XOR updates at pseudorandom global
//! indices, and the routing strategy is the experiment:
//!
//! * [`Routing::Direct`] — each update is a fine-grained remote
//!   read-modify-write (the naive UPC program; GUPS-style unsynchronized,
//!   so concurrent updates may race and the error rate is reported);
//! * [`Routing::PerThread`] — updates are bucketed by owner thread and
//!   shipped in bulk, each owner applying its own bucket locally
//!   (conflict-free, software routing);
//! * [`Routing::Hierarchical`] — the thread-group optimization: updates are
//!   bucketed per destination *node*, only group leaders exchange buckets
//!   over the network, and delivery inside the node goes through the
//!   pre-cast group pointer tables — fewer, larger network messages.
//!
//! XOR updates commute, so the conflict-free variants must reproduce the
//! serial reference table exactly; the direct variant reports the fraction
//! of lost updates (the HPCC rules allow up to 1%).

mod bench;

pub use bench::{run_gups, GupsConfig, GupsResult, Routing};
