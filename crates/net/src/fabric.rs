//! The fabric: per-node NIC queues and per-endpoint connections.
//!
//! A [`Connection`] is the software endpoint a message is injected through.
//! The process backend creates one connection per UPC thread; the pthread
//! backend one per node shared by all its threads — the single modeling
//! decision behind the process-vs-pthread contrast of thesis §4.3.1.
//!
//! An optional [`FaultInjector`] makes the wire lossy: each traversal may be
//! dropped or jittered according to the installed `FaultPlan`, and per-node
//! degraded-NIC windows scale the NIC service time. The fabric only *models*
//! the loss — recovery (retransmission, backoff, retry budgets) lives a
//! layer up in `hupc-gasnet`.

use std::sync::Arc;

use hupc_fault::FaultInjector;
use hupc_sim::{Kernel, ResourceId, Time};
use hupc_topo::NodeId;

use crate::conduit::Conduit;
use crate::error::NetError;

/// A message-injection endpoint bound to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Connection {
    pub node: NodeId,
    res: ResourceId,
}

/// Outcome of one fabric transaction.
///
/// `local` is always meaningful: the source-side resources were held until
/// then and the source buffer is reusable. `remote` exists only if the data
/// actually arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "a Delivery may be Dropped; ignoring it loses the completion times"]
pub enum Delivery {
    /// The message arrived: source free at `local`, visible at `remote`.
    Delivered { local: Time, remote: Time },
    /// The message was lost on the wire after the source finished
    /// transmitting at `local`. The destination never sees it.
    Dropped { local: Time },
}

impl Delivery {
    /// When the source-side buffer is reusable (drop or not).
    pub fn local(&self) -> Time {
        match *self {
            Delivery::Delivered { local, .. } | Delivery::Dropped { local } => local,
        }
    }

    /// `Some((local, remote))` if the message arrived.
    pub fn delivered(&self) -> Option<(Time, Time)> {
        match *self {
            Delivery::Delivered { local, remote } => Some((local, remote)),
            Delivery::Dropped { .. } => None,
        }
    }

    /// Unwrap a delivery that cannot have been dropped (no fault plan
    /// installed). Panics on `Dropped`.
    pub fn expect_delivered(&self) -> (Time, Time) {
        self.delivered()
            .expect("message dropped by fault injection; caller must retransmit")
    }
}

/// The inter-node network: conduit parameters plus NIC resources.
#[derive(Clone, Debug)]
pub struct Fabric {
    conduit: Conduit,
    tx: Vec<ResourceId>,
    rx: Vec<ResourceId>,
    /// Effective-NIC slowdown from network-progress oversubscription
    /// (≥ 1.0): when more polling endpoints than physical cores share a
    /// node (SMT-density process runs), progress threads time-slice and the
    /// adapter is driven below line rate. 1.0 = no penalty.
    nic_factor: f64,
    /// Optional fault injection (shared with the runtime layer so straggler
    /// CPU scaling and wire faults come from one plan + one PRNG stream).
    fault: Option<Arc<FaultInjector>>,
}

impl Fabric {
    /// Register NIC resources for `nodes` nodes on the kernel.
    pub fn build(kernel: &mut Kernel, conduit: Conduit, nodes: usize) -> Self {
        let tx = (0..nodes)
            .map(|n| kernel.new_resource(format!("nic-tx[{n}]")))
            .collect();
        let rx = (0..nodes)
            .map(|n| kernel.new_resource(format!("nic-rx[{n}]")))
            .collect();
        Fabric {
            conduit,
            tx,
            rx,
            nic_factor: 1.0,
            fault: None,
        }
    }

    /// Set the progress-oversubscription factor (call before sharing).
    pub fn set_nic_factor(&mut self, f: f64) {
        assert!(f >= 1.0, "nic factor must be >= 1");
        self.nic_factor = f;
    }

    /// Install a fault injector (call before sharing). All subsequent
    /// transactions consult it for drops, jitter and degraded-NIC windows.
    pub fn set_fault(&mut self, inj: Arc<FaultInjector>) {
        self.fault = Some(inj);
    }

    /// The installed injector, if any.
    pub fn fault(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Scaled NIC service time for `bytes` on `node` at virtual time `now`:
    /// oversubscription factor × any open degraded-NIC fault window.
    fn nic_service(&self, node: NodeId, now: Time, bytes: usize) -> Time {
        let mut f = self.nic_factor;
        if let Some(inj) = &self.fault {
            f *= inj.plan().nic_factor(node.0, now);
        }
        hupc_sim::time::from_secs_f64(
            hupc_sim::time::as_secs_f64(self.conduit.nic_service(bytes)) * f,
        )
    }

    /// Consult the injector for one wire traversal; identity when no plan.
    fn xmit(&self, src: NodeId, dst: NodeId) -> hupc_fault::Xmit {
        match &self.fault {
            Some(inj) => inj.xmit(src.0, dst.0),
            None => hupc_fault::Xmit {
                dropped: false,
                jitter: 0,
            },
        }
    }

    pub fn conduit(&self) -> &Conduit {
        &self.conduit
    }

    /// Minimum inter-node delivery latency (see [`Conduit::lookahead`]):
    /// the static floor a conservative parallel simulation may use as its
    /// cross-partition lookahead. Holds under fault injection — jitter is
    /// non-negative and drops never deliver.
    pub fn lookahead(&self) -> Time {
        self.conduit.lookahead()
    }

    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetError> {
        if node.0 < self.tx.len() {
            Ok(())
        } else {
            Err(NetError::NodeOutOfRange {
                node,
                nodes: self.tx.len(),
            })
        }
    }

    fn check_pair(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(NetError::SelfMessage { node: src });
        }
        Ok(())
    }

    /// Open a new connection on `node` (one per process endpoint, or one per
    /// node shared by a pthread backend).
    pub fn open_connection(&self, kernel: &mut Kernel, node: NodeId) -> Result<Connection, NetError> {
        self.check_node(node)?;
        let res = kernel.new_resource(format!("conn[n{}]", node.0));
        Ok(Connection { node, res })
    }

    /// Sender-side CPU overhead per message (charge on the initiating actor
    /// before calling [`Fabric::inject`]).
    pub fn send_overhead(&self) -> Time {
        self.conduit.send_overhead
    }

    /// Compute the delivery time of a `bytes`-long message injected now
    /// through `conn` towards `dst`. Advances the fabric's resource queues;
    /// does not block the caller (callers decide whether to wait on local or
    /// remote completion).
    ///
    /// With a fault plan installed the message may be [`Delivery::Dropped`]:
    /// the source still pays connection + tx-NIC occupancy (the packet *was*
    /// transmitted — it died on the wire), but the destination rx NIC is
    /// never touched and there is no remote completion.
    pub fn inject(
        &self,
        kernel: &mut Kernel,
        conn: Connection,
        dst: NodeId,
        bytes: usize,
    ) -> Result<Delivery, NetError> {
        self.check_pair(conn.node, dst)?;
        let now = kernel.now();
        let injected = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let on_wire = kernel.acquire_after(
            self.tx[conn.node.0],
            injected,
            self.nic_service(conn.node, now, bytes),
        );
        let fate = self.xmit(conn.node, dst);
        if fate.dropped {
            return Ok(Delivery::Dropped { local: injected });
        }
        let arrived = on_wire + self.conduit.wire_latency + fate.jitter;
        let delivered = kernel.acquire_after(
            self.rx[dst.0],
            arrived,
            self.nic_service(dst, now, bytes),
        );
        Ok(Delivery::Delivered {
            local: injected,
            remote: delivered,
        })
    }

    /// Intra-node message that loops back through the network API (the
    /// no-PSHM process backend): it occupies the connection and both NIC
    /// directions of the node — competing with genuine remote traffic —
    /// but skips the wire, so it cannot be dropped or jittered. Degraded-NIC
    /// windows still apply (the adapter itself is slow, not the wire).
    pub fn inject_loopback(&self, kernel: &mut Kernel, conn: Connection, bytes: usize) -> Time {
        let now = kernel.now();
        let injected = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let through = kernel.acquire_after(
            self.tx[conn.node.0],
            injected,
            self.nic_service(conn.node, now, bytes),
        );
        kernel.acquire_after(
            self.rx[conn.node.0],
            through,
            self.nic_service(conn.node, now, bytes),
        )
    }

    /// One-sided RDMA read: a small request travels to `remote`, then
    /// `bytes` flow back. The requester's connection accounts the injection
    /// gap (its endpoint drives the transaction); `remote`'s tx NIC and the
    /// requester's rx NIC carry the payload.
    ///
    /// Either leg can be dropped by the fault plan. A lost request costs
    /// only the connection occupancy; a lost response additionally ties up
    /// the remote tx NIC (the payload was sent — it died on the way back).
    pub fn rdma_get(
        &self,
        kernel: &mut Kernel,
        conn: Connection,
        remote: NodeId,
        bytes: usize,
    ) -> Result<Delivery, NetError> {
        self.check_pair(conn.node, remote)?;
        let now = kernel.now();
        let req_sent = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let req = self.xmit(conn.node, remote);
        if req.dropped {
            return Ok(Delivery::Dropped { local: req_sent });
        }
        let req_arrived = req_sent + self.conduit.wire_latency + req.jitter;
        let on_wire = kernel.acquire_after(
            self.tx[remote.0],
            req_arrived,
            self.nic_service(remote, now, bytes),
        );
        let resp = self.xmit(remote, conn.node);
        if resp.dropped {
            return Ok(Delivery::Dropped { local: req_sent });
        }
        let back = on_wire + self.conduit.wire_latency + resp.jitter;
        let delivered = kernel.acquire_after(
            self.rx[conn.node.0],
            back,
            self.nic_service(conn.node, now, bytes),
        );
        Ok(Delivery::Delivered {
            local: req_sent,
            remote: delivered,
        })
    }

    /// Total bytes×time the tx NIC of `node` has been busy (utilization
    /// reporting in the bench harness).
    pub fn tx_busy(&self, kernel: &Kernel, node: NodeId) -> Time {
        kernel.resource_busy_total(self.tx[node.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_fault::{FaultPlan, Jitter};
    use hupc_sim::{time, Simulation};

    fn delivered(d: Result<Delivery, NetError>) -> (Time, Time) {
        d.unwrap().expect_delivered()
    }

    #[test]
    fn single_message_delivery_time() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let (_local, remote) = delivered(fab.inject(&mut k, conn, NodeId(1), 8));
        let expected = fab.conduit().conn_service(8)
            + fab.conduit().nic_service(8) // tx NIC
            + fab.conduit().wire_latency
            + fab.conduit().nic_service(8); // rx NIC
        assert_eq!(remote, expected);
    }

    #[test]
    fn shared_connection_serializes_injection() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let (l1, _) = delivered(fab.inject(&mut k, conn, NodeId(1), 1 << 20));
        let (l2, _) = delivered(fab.inject(&mut k, conn, NodeId(1), 1 << 20));
        // Second message queues behind the first on the connection.
        assert!(l2 >= l1 * 2 - time::ns(1));
    }

    #[test]
    fn separate_connections_share_only_the_nic() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let c1 = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let c2 = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let bytes = 1 << 20;
        let (i1, _) = delivered(fab.inject(&mut k, c1, NodeId(1), bytes));
        let (i2, _) = delivered(fab.inject(&mut k, c2, NodeId(1), bytes));
        // Both inject concurrently: i2 ≈ i1, not 2×i1.
        assert_eq!(i1, i2);
        // But the NIC serializes the wire transfer of the second message.
        let (_, r2) = (i2, fab.tx_busy(&k, NodeId(0)));
        assert_eq!(r2, fab.conduit().nic_service(bytes) * 2);
    }

    #[test]
    fn aggregate_two_connections_beats_one() {
        // Flood 8 mid-size messages through 1 vs 2 connections.
        let bytes = 16 << 10;
        let run = |nconn: usize| -> Time {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
            let conns: Vec<_> = (0..nconn)
                .map(|_| fab.open_connection(&mut k, NodeId(0)).unwrap())
                .collect();
            let mut last = 0;
            for i in 0..8 {
                let (_, r) = delivered(fab.inject(&mut k, conns[i % nconn], NodeId(1), bytes));
                last = last.max(r);
            }
            last
        };
        assert!(run(2) < run(1));
    }

    #[test]
    fn same_node_injection_is_typed_error() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let err = fab.inject(&mut k, conn, NodeId(0), 8).unwrap_err();
        assert_eq!(err, NetError::SelfMessage { node: NodeId(0) });
        assert!(err.to_string().contains("inter-node"));
    }

    #[test]
    fn out_of_range_destination_is_typed_error() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let err = fab.inject(&mut k, conn, NodeId(9), 8).unwrap_err();
        assert_eq!(err, NetError::NodeOutOfRange { node: NodeId(9), nodes: 2 });
        assert!(fab.open_connection(&mut k, NodeId(7)).is_err());
        let err = fab.rdma_get(&mut k, conn, NodeId(3), 8).unwrap_err();
        assert_eq!(err, NetError::NodeOutOfRange { node: NodeId(3), nodes: 2 });
    }

    #[test]
    fn identity_fault_plan_changes_nothing() {
        let run = |plan: Option<FaultPlan>| -> (Time, Time) {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            if let Some(p) = plan {
                fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(p)));
            }
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            let mut acc = (0, 0);
            for i in 0..16 {
                let (l, r) = delivered(fab.inject(&mut k, conn, NodeId(1), 64 << i.min(10)));
                acc = (l, r);
            }
            let (_, g) = delivered(fab.rdma_get(&mut k, conn, NodeId(1), 4096));
            (acc.1, g)
        };
        assert_eq!(run(None), run(Some(FaultPlan::new(123))));
    }

    #[test]
    fn lossy_link_drops_and_charges_tx_only() {
        let sim = Simulation::new();
        let mut k = sim.kernel();
        let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
        fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(
            FaultPlan::new(7).loss(1.0),
        )));
        let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
        let d = fab.inject(&mut k, conn, NodeId(1), 1024).unwrap();
        match d {
            Delivery::Dropped { local } => assert!(local > 0),
            Delivery::Delivered { .. } => panic!("p=1 must drop"),
        }
        // tx NIC transmitted the doomed packet; rx NIC never saw it.
        assert_eq!(fab.tx_busy(&k, NodeId(0)), fab.conduit().nic_service(1024));
    }

    #[test]
    fn jitter_delays_delivery() {
        let base = {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let fab = Fabric::build(&mut k, Conduit::gige(), 2);
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            delivered(fab.inject(&mut k, conn, NodeId(1), 512)).1
        };
        let mut saw_delay = false;
        for seed in 0..8 {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(
                FaultPlan::new(seed).jitter(Jitter::Uniform { max: time::ms(2) }),
            )));
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            let (_, r) = delivered(fab.inject(&mut k, conn, NodeId(1), 512));
            assert!(r >= base, "jitter can only delay");
            if r > base {
                saw_delay = true;
            }
        }
        assert!(saw_delay, "uniform 2ms jitter never delayed any of 8 seeds");
    }

    #[test]
    fn degraded_window_slows_nic_service() {
        let service = |plan: Option<FaultPlan>| -> Time {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            if let Some(p) = plan {
                fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(p)));
            }
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            delivered(fab.inject(&mut k, conn, NodeId(1), 4096)).1
        };
        let healthy = service(None);
        let degraded = service(Some(FaultPlan::new(0).degraded_nic(
            0,
            0,
            time::secs(1),
            4.0,
        )));
        assert!(degraded > healthy, "{degraded} <= {healthy}");
    }

    /// The degraded-NIC bandwidth math, exactly: a factor-`f` window on one
    /// endpoint scales only that endpoint's NIC leg of the delivery by `f`;
    /// connection service and wire latency are untouched.
    #[test]
    fn degraded_window_scales_exactly_one_nic_leg() {
        let remote_time = |plan: Option<FaultPlan>| -> Time {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            if let Some(p) = plan {
                fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(p)));
            }
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            delivered(fab.inject(&mut k, conn, NodeId(1), 4096)).1
        };
        let c = Conduit::gige();
        let scaled =
            |f: f64| time::from_secs_f64(time::as_secs_f64(c.nic_service(4096)) * f);
        let base = c.conn_service(4096) + c.wire_latency;
        // Window on the sender: tx leg × 3, rx leg untouched.
        let tx = remote_time(Some(FaultPlan::new(0).degraded_nic(0, 0, time::secs(1), 3.0)));
        assert_eq!(tx, base + scaled(3.0) + c.nic_service(4096));
        // Window on the receiver: rx leg × 3, tx leg untouched.
        let rx = remote_time(Some(FaultPlan::new(0).degraded_nic(1, 0, time::secs(1), 3.0)));
        assert_eq!(rx, base + c.nic_service(4096) + scaled(3.0));
        // Both endpoints degraded: both legs scale.
        let both = remote_time(Some(
            FaultPlan::new(0)
                .degraded_nic(0, 0, time::secs(1), 2.0)
                .degraded_nic(1, 0, time::secs(1), 5.0),
        ));
        assert_eq!(both, base + scaled(2.0) + scaled(5.0));
        // Window that opens after the injection instant: free.
        let later = remote_time(Some(FaultPlan::new(0).degraded_nic(
            0,
            time::secs(1),
            time::secs(2),
            9.0,
        )));
        assert_eq!(later, remote_time(None));
    }

    /// Fault-window degradation compounds multiplicatively with the static
    /// progress-oversubscription factor.
    #[test]
    fn fault_window_compounds_with_oversubscription_factor() {
        let remote_time = |static_f: f64, window: Option<f64>| -> Time {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            fab.set_nic_factor(static_f);
            if let Some(w) = window {
                fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(
                    FaultPlan::new(0).degraded_nic(0, 0, time::secs(1), w),
                )));
            }
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            delivered(fab.inject(&mut k, conn, NodeId(1), 8192)).1
        };
        let c = Conduit::gige();
        let scaled =
            |f: f64| time::from_secs_f64(time::as_secs_f64(c.nic_service(8192)) * f);
        // 2× oversubscription × 3× window = 6× on the tx leg; the static
        // factor also applies to the healthy rx leg.
        assert_eq!(
            remote_time(2.0, Some(3.0)),
            c.conn_service(8192) + scaled(6.0) + c.wire_latency + scaled(2.0),
        );
    }

    /// Loopback messages skip the wire but not the adapter: a degraded
    /// window scales both NIC passes of the loopback.
    #[test]
    fn loopback_applies_degraded_window_to_both_passes() {
        let through = |window: Option<f64>| -> Time {
            let sim = Simulation::new();
            let mut k = sim.kernel();
            let mut fab = Fabric::build(&mut k, Conduit::gige(), 2);
            if let Some(w) = window {
                fab.set_fault(std::sync::Arc::new(hupc_fault::FaultInjector::new(
                    FaultPlan::new(0).degraded_nic(0, 0, time::secs(1), w),
                )));
            }
            let conn = fab.open_connection(&mut k, NodeId(0)).unwrap();
            fab.inject_loopback(&mut k, conn, 2048)
        };
        let c = Conduit::gige();
        let scaled =
            |f: f64| time::from_secs_f64(time::as_secs_f64(c.nic_service(2048)) * f);
        assert_eq!(through(None), c.conn_service(2048) + scaled(1.0) * 2);
        assert_eq!(
            through(Some(4.0)),
            c.conn_service(2048) + scaled(4.0) * 2,
            "both adapter passes must scale"
        );
    }
}
