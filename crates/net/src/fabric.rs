//! The fabric: per-node NIC queues and per-endpoint connections.
//!
//! A [`Connection`] is the software endpoint a message is injected through.
//! The process backend creates one connection per UPC thread; the pthread
//! backend one per node shared by all its threads — the single modeling
//! decision behind the process-vs-pthread contrast of thesis §4.3.1.

use hupc_sim::{Kernel, ResourceId, Time};
use hupc_topo::NodeId;

use crate::conduit::Conduit;

/// A message-injection endpoint bound to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Connection {
    pub node: NodeId,
    res: ResourceId,
}

/// The inter-node network: conduit parameters plus NIC resources.
#[derive(Clone, Debug)]
pub struct Fabric {
    conduit: Conduit,
    tx: Vec<ResourceId>,
    rx: Vec<ResourceId>,
    /// Effective-NIC slowdown from network-progress oversubscription
    /// (≥ 1.0): when more polling endpoints than physical cores share a
    /// node (SMT-density process runs), progress threads time-slice and the
    /// adapter is driven below line rate. 1.0 = no penalty.
    nic_factor: f64,
}

impl Fabric {
    /// Register NIC resources for `nodes` nodes on the kernel.
    pub fn build(kernel: &mut Kernel, conduit: Conduit, nodes: usize) -> Self {
        let tx = (0..nodes)
            .map(|n| kernel.new_resource(format!("nic-tx[{n}]")))
            .collect();
        let rx = (0..nodes)
            .map(|n| kernel.new_resource(format!("nic-rx[{n}]")))
            .collect();
        Fabric {
            conduit,
            tx,
            rx,
            nic_factor: 1.0,
        }
    }

    /// Set the progress-oversubscription factor (call before sharing).
    pub fn set_nic_factor(&mut self, f: f64) {
        assert!(f >= 1.0, "nic factor must be >= 1");
        self.nic_factor = f;
    }

    /// Scaled NIC service time for `bytes`.
    fn nic_service(&self, bytes: usize) -> hupc_sim::Time {
        hupc_sim::time::from_secs_f64(
            hupc_sim::time::as_secs_f64(self.conduit.nic_service(bytes)) * self.nic_factor,
        )
    }

    pub fn conduit(&self) -> &Conduit {
        &self.conduit
    }

    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Open a new connection on `node` (one per process endpoint, or one per
    /// node shared by a pthread backend).
    pub fn open_connection(&self, kernel: &mut Kernel, node: NodeId) -> Connection {
        assert!(node.0 < self.tx.len(), "node {} out of fabric", node.0);
        let res = kernel.new_resource(format!("conn[n{}]", node.0));
        Connection { node, res }
    }

    /// Sender-side CPU overhead per message (charge on the initiating actor
    /// before calling [`Fabric::inject`]).
    pub fn send_overhead(&self) -> Time {
        self.conduit.send_overhead
    }

    /// Compute the delivery time of a `bytes`-long message injected now
    /// through `conn` towards `dst`. Advances the fabric's resource queues;
    /// does not block the caller (callers decide whether to wait on local or
    /// remote completion).
    ///
    /// Returns `(local_complete, remote_complete)`: the source buffer is
    /// reusable at `local_complete` (injection done); the data is visible at
    /// the destination at `remote_complete`.
    pub fn inject(
        &self,
        kernel: &mut Kernel,
        conn: Connection,
        dst: NodeId,
        bytes: usize,
    ) -> (Time, Time) {
        assert_ne!(conn.node, dst, "fabric is for inter-node messages only");
        let injected = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let on_wire = kernel.acquire_after(
            self.tx[conn.node.0],
            injected,
            self.nic_service(bytes),
        );
        let arrived = on_wire + self.conduit.wire_latency;
        let delivered =
            kernel.acquire_after(self.rx[dst.0], arrived, self.nic_service(bytes));
        (injected, delivered)
    }

    /// Intra-node message that loops back through the network API (the
    /// no-PSHM process backend): it occupies the connection and both NIC
    /// directions of the node — competing with genuine remote traffic —
    /// but skips the wire.
    pub fn inject_loopback(&self, kernel: &mut Kernel, conn: Connection, bytes: usize) -> Time {
        let injected = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let through = kernel.acquire_after(
            self.tx[conn.node.0],
            injected,
            self.nic_service(bytes),
        );
        kernel.acquire_after(self.rx[conn.node.0], through, self.nic_service(bytes))
    }

    /// One-sided RDMA read: a small request travels to `remote`, then
    /// `bytes` flow back. The requester's connection accounts the injection
    /// gap (its endpoint drives the transaction); `remote`'s tx NIC and the
    /// requester's rx NIC carry the payload.
    ///
    /// Returns `(request_sent, data_delivered)`.
    pub fn rdma_get(
        &self,
        kernel: &mut Kernel,
        conn: Connection,
        remote: NodeId,
        bytes: usize,
    ) -> (Time, Time) {
        assert_ne!(conn.node, remote, "fabric is for inter-node messages only");
        let req_sent = kernel.acquire(conn.res, self.conduit.conn_service(bytes));
        let req_arrived = req_sent + self.conduit.wire_latency;
        let on_wire =
            kernel.acquire_after(self.tx[remote.0], req_arrived, self.nic_service(bytes));
        let back = on_wire + self.conduit.wire_latency;
        let delivered =
            kernel.acquire_after(self.rx[conn.node.0], back, self.nic_service(bytes));
        (req_sent, delivered)
    }

    /// Total bytes×time the tx NIC of `node` has been busy (utilization
    /// reporting in the bench harness).
    pub fn tx_busy(&self, kernel: &Kernel, node: NodeId) -> Time {
        kernel.resource_busy_total(self.tx[node.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_sim::{time, Simulation};

    #[test]
    fn single_message_delivery_time() {
        let mut sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0));
        let (_local, remote) = fab.inject(&mut k, conn, NodeId(1), 8);
        let expected = fab.conduit().conn_service(8)
            + fab.conduit().nic_service(8) // tx NIC
            + fab.conduit().wire_latency
            + fab.conduit().nic_service(8); // rx NIC
        assert_eq!(remote, expected);
    }

    #[test]
    fn shared_connection_serializes_injection() {
        let mut sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0));
        let (l1, _) = fab.inject(&mut k, conn, NodeId(1), 1 << 20);
        let (l2, _) = fab.inject(&mut k, conn, NodeId(1), 1 << 20);
        // Second message queues behind the first on the connection.
        assert!(l2 >= l1 * 2 - time::ns(1));
    }

    #[test]
    fn separate_connections_share_only_the_nic() {
        let mut sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let c1 = fab.open_connection(&mut k, NodeId(0));
        let c2 = fab.open_connection(&mut k, NodeId(0));
        let bytes = 1 << 20;
        let (i1, _) = fab.inject(&mut k, c1, NodeId(1), bytes);
        let (i2, _) = fab.inject(&mut k, c2, NodeId(1), bytes);
        // Both inject concurrently: i2 ≈ i1, not 2×i1.
        assert_eq!(i1, i2);
        // But the NIC serializes the wire transfer of the second message.
        let (_, r2) = (i2, fab.tx_busy(&k, NodeId(0)));
        assert_eq!(r2, fab.conduit().nic_service(bytes) * 2);
    }

    #[test]
    fn aggregate_two_connections_beats_one() {
        // Flood 8 mid-size messages through 1 vs 2 connections.
        let bytes = 16 << 10;
        let run = |nconn: usize| -> Time {
            let mut sim = Simulation::new();
            let mut k = sim.kernel();
            let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
            let conns: Vec<_> = (0..nconn)
                .map(|_| fab.open_connection(&mut k, NodeId(0)))
                .collect();
            let mut last = 0;
            for i in 0..8 {
                let (_, r) = fab.inject(&mut k, conns[i % nconn], NodeId(1), bytes);
                last = last.max(r);
            }
            last
        };
        assert!(run(2) < run(1));
    }

    #[test]
    #[should_panic(expected = "inter-node")]
    fn same_node_injection_rejected() {
        let mut sim = Simulation::new();
        let mut k = sim.kernel();
        let fab = Fabric::build(&mut k, Conduit::ib_qdr(), 2);
        let conn = fab.open_connection(&mut k, NodeId(0));
        fab.inject(&mut k, conn, NodeId(0), 8);
    }
}
