//! Typed errors for fabric misuse.
//!
//! These replace the `assert!`/`assert_ne!` panics the fabric used to throw
//! on malformed addressing, so runtime layers can surface a real error (and
//! tests can assert on its shape) instead of dying mid-simulation.

use hupc_topo::NodeId;

/// Addressing errors raised by [`crate::Fabric`] entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The destination (or connection) node does not exist on this fabric.
    NodeOutOfRange { node: NodeId, nodes: usize },
    /// Source and destination are the same node: the fabric only carries
    /// inter-node messages (intra-node traffic uses
    /// [`crate::Fabric::inject_loopback`] or the memory system).
    SelfMessage { node: NodeId },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {} out of fabric (fabric has {} nodes)", node.0, nodes)
            }
            NetError::SelfMessage { node } => write!(
                f,
                "fabric is for inter-node messages only (src = dst = node {})",
                node.0
            ),
        }
    }
}

impl std::error::Error for NetError {}
