//! Network conduit parameter sets (the GASNet term for a network backend).
//!
//! The cost model is LogGP-flavoured: a message of `S` bytes pays
//!
//! * `send_overhead` of CPU time on the initiating thread (software stack);
//! * a *connection* service time `conn_gap + S / conn_bandwidth` serialized
//!   per connection (injection);
//! * NIC service `S / nic_bandwidth` serialized per node and direction;
//! * `wire_latency` of pure delay.
//!
//! Per-connection bandwidth is deliberately below NIC bandwidth: one
//! endpoint cannot saturate the adapter, so multiple process endpoints gain
//! aggregate throughput until the NIC cap — exactly the behaviour of thesis
//! Fig 4.2(b).

use hupc_sim::{time, Time};

/// Which physical network a conduit models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConduitKind {
    /// Mellanox ConnectX QDR InfiniBand (Lehman).
    IbQdr,
    /// Mellanox DDR InfiniBand (Pyramid).
    IbDdr,
    /// Gigabit Ethernet (Pyramid's second fabric, used in the UTS study).
    GigE,
}

/// Message cost parameters for one network fabric.
#[derive(Clone, Debug, PartialEq)]
pub struct Conduit {
    pub kind: ConduitKind,
    /// One-way wire + switch latency (pure delay).
    pub wire_latency: Time,
    /// Sender-side software overhead per message (charged on the CPU).
    pub send_overhead: Time,
    /// Per-message injection gap on a connection.
    pub conn_gap: Time,
    /// Sustainable bandwidth of a single connection/endpoint, bytes/s.
    pub conn_bandwidth: f64,
    /// Aggregate NIC bandwidth per node per direction, bytes/s.
    pub nic_bandwidth: f64,
}

impl Conduit {
    /// QDR InfiniBand: ~1.7 µs one-way, NIC ≈ 2.6 GB/s usable (the thesis
    /// quotes 5 GB/s signalling = ~2.5–3 GB/s usable per direction).
    pub fn ib_qdr() -> Self {
        Conduit {
            kind: ConduitKind::IbQdr,
            wire_latency: time::ns(1_700),
            send_overhead: time::ns(400),
            conn_gap: time::ns(650),
            conn_bandwidth: 1.55e9,
            nic_bandwidth: 2.6e9,
        }
    }

    /// DDR InfiniBand: ~2.6 µs one-way, NIC ≈ 1.5 GB/s usable.
    pub fn ib_ddr() -> Self {
        Conduit {
            kind: ConduitKind::IbDdr,
            wire_latency: time::ns(2_600),
            send_overhead: time::ns(500),
            conn_gap: time::ns(800),
            conn_bandwidth: 0.95e9,
            nic_bandwidth: 1.5e9,
        }
    }

    /// Gigabit Ethernet over sockets: ~45 µs one-way, ~112 MB/s.
    pub fn gige() -> Self {
        Conduit {
            kind: ConduitKind::GigE,
            wire_latency: time::us(45),
            send_overhead: time::us(6),
            conn_gap: time::us(10),
            conn_bandwidth: 0.105e9,
            nic_bandwidth: 0.112e9,
        }
    }

    /// Service time a message of `bytes` occupies its connection (injection).
    pub fn conn_service(&self, bytes: usize) -> Time {
        self.conn_gap + time::from_secs_f64(bytes as f64 / self.conn_bandwidth)
    }

    /// Service time a message of `bytes` occupies a NIC direction.
    pub fn nic_service(&self, bytes: usize) -> Time {
        time::from_secs_f64(bytes as f64 / self.nic_bandwidth)
    }

    /// Uncontended one-way delivery time for `bytes` (for reference and
    /// tests; the fabric computes the contended version).
    pub fn uncontended_delivery(&self, bytes: usize) -> Time {
        self.send_overhead + self.conn_service(bytes) + self.nic_service(bytes) + self.wire_latency
    }

    /// Conservative-synchronization lookahead this link class guarantees:
    /// no message delivered over this conduit can arrive earlier than
    /// `send time + lookahead`. The wire latency is a static floor — every
    /// delivery adds it unconditionally, contention and send overheads only
    /// increase the total, fault injection jitter only delays, and dropped
    /// messages never deliver at all — so a parallel simulation partitioned
    /// at node boundaries may dispatch events up to a neighbor's clock plus
    /// this bound (see `hupc_sim::Simulation::set_lookahead`).
    pub fn lookahead(&self) -> Time {
        self.wire_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_is_the_static_delivery_floor() {
        for c in [Conduit::ib_qdr(), Conduit::ib_ddr(), Conduit::gige()] {
            assert_eq!(c.lookahead(), c.wire_latency);
            // Every component of a delivery is additive on top of the wire,
            // so no payload can undercut the floor.
            assert!(c.uncontended_delivery(1) >= c.lookahead());
        }
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let qdr = Conduit::ib_qdr();
        let ddr = Conduit::ib_ddr();
        let eth = Conduit::gige();
        assert!(qdr.nic_bandwidth > ddr.nic_bandwidth);
        assert!(ddr.nic_bandwidth > eth.nic_bandwidth);
        assert!(qdr.wire_latency < ddr.wire_latency);
        assert!(ddr.wire_latency < eth.wire_latency);
    }

    #[test]
    fn service_grows_linearly_in_size() {
        let c = Conduit::ib_qdr();
        let s1 = c.conn_service(1 << 10);
        let s2 = c.conn_service(2 << 10);
        let s4 = c.conn_service(4 << 10);
        assert!(s2 > s1 && s4 > s2);
        // beyond the gap, doubling size roughly doubles the byte term
        // (±2ns for per-call rounding)
        assert!((s4 - s2).abs_diff((s2 - s1) * 2) <= 2);
    }

    #[test]
    fn small_message_latency_is_microseconds() {
        let c = Conduit::ib_qdr();
        let t = c.uncontended_delivery(8);
        // Thesis Fig 4.2(a): small-message round trip ≈ 4–6 µs, one way 2–3.
        assert!(t > time::us(2) && t < time::us(4), "one-way {}", time::format(t));
    }

    #[test]
    fn large_message_is_bandwidth_bound() {
        let c = Conduit::ib_qdr();
        let t = c.uncontended_delivery(1 << 20);
        let ideal = time::from_secs_f64((1 << 20) as f64 / c.conn_bandwidth);
        assert!(t >= ideal);
        assert!(t < ideal * 2);
    }

    #[test]
    fn connection_cannot_saturate_nic() {
        for c in [Conduit::ib_qdr(), Conduit::ib_ddr(), Conduit::gige()] {
            assert!(c.conn_bandwidth < c.nic_bandwidth, "{:?}", c.kind);
        }
    }
}
