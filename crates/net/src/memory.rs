//! The NUMA memory system: one FIFO memory-controller resource per socket.
//!
//! Traffic is charged against the *home* socket of the data (first-touch
//! placement decides homes, in the UPC layer) in fixed-size chunks, so
//! concurrent streams through one controller share its bandwidth fairly —
//! the mechanism behind STREAM's socket-placement results (thesis
//! Tables 3.1 / 4.1). Accesses from a PU on a different socket pay the
//! ccNUMA remote factor (the thesis quotes 15–40% slower; we model ~28%).

use hupc_sim::{time, Ctx, Kernel, ResourceId, Time};
use hupc_topo::{Machine, PuId, SocketId};

/// Default fair-sharing granularity for long streams.
const DEFAULT_CHUNK: usize = 4 << 20;

/// Per-socket memory-controller model.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    socket_res: Vec<ResourceId>,
    bw_per_socket: f64,
    numa_remote_factor: f64,
    chunk: usize,
}

impl MemoryModel {
    pub fn build(kernel: &mut Kernel, machine: &Machine) -> Self {
        let spec = machine.spec();
        let sockets = spec.nodes * spec.sockets_per_node;
        let socket_res = (0..sockets)
            .map(|s| kernel.new_resource(format!("mem[{s}]")))
            .collect();
        MemoryModel {
            socket_res,
            bw_per_socket: spec.mem_bw_per_socket,
            numa_remote_factor: spec.numa_remote_factor,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sustained bandwidth of one controller, bytes/s.
    pub fn bandwidth_per_socket(&self) -> f64 {
        self.bw_per_socket
    }

    /// Override the fair-share chunk (tests use small chunks).
    pub fn set_chunk(&mut self, chunk: usize) {
        assert!(chunk > 0);
        self.chunk = chunk;
    }

    /// Cost factor for a PU touching memory homed on `home`.
    pub fn numa_factor(&self, machine: &Machine, pu: PuId, home: SocketId) -> f64 {
        if machine.pu_socket(pu) == home {
            1.0
        } else {
            self.numa_remote_factor
        }
    }

    fn service(&self, bytes: usize, factor: f64) -> Time {
        time::from_secs_f64(bytes as f64 * factor / self.bw_per_socket)
    }

    /// Non-blocking: queue `bytes` of traffic on `home`'s controller
    /// starting no earlier than `earliest`; returns the drain time.
    pub fn traffic_after(
        &self,
        kernel: &mut Kernel,
        machine: &Machine,
        pu: PuId,
        home: SocketId,
        bytes: usize,
        earliest: Time,
    ) -> Time {
        let factor = self.numa_factor(machine, pu, home);
        kernel.acquire_after(self.socket_res[home.0], earliest, self.service(bytes, factor))
    }

    /// Blocking: stream `bytes` through `home`'s controller from `pu`,
    /// chunked for fair sharing with concurrent streams.
    pub fn stream(&self, ctx: &Ctx, machine: &Machine, pu: PuId, home: SocketId, bytes: usize) {
        let factor = self.numa_factor(machine, pu, home);
        let mut left = bytes;
        while left > 0 {
            let b = left.min(self.chunk);
            left -= b;
            ctx.acquire(self.socket_res[home.0], self.service(b, factor));
        }
    }

    /// Blocking memcpy-style charge: read `bytes` homed on `src`, write
    /// `bytes` homed on `dst`, from `pu`, chunk-interleaved.
    pub fn copy(
        &self,
        ctx: &Ctx,
        machine: &Machine,
        pu: PuId,
        src: SocketId,
        dst: SocketId,
        bytes: usize,
    ) {
        let fr = self.numa_factor(machine, pu, src);
        let fw = self.numa_factor(machine, pu, dst);
        let mut left = bytes;
        while left > 0 {
            let b = left.min(self.chunk);
            left -= b;
            ctx.acquire(self.socket_res[src.0], self.service(b, fr));
            ctx.acquire(self.socket_res[dst.0], self.service(b, fw));
        }
    }

    /// Non-blocking memcpy completion time (async intra-node transfers).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_after(
        &self,
        kernel: &mut Kernel,
        machine: &Machine,
        pu: PuId,
        src: SocketId,
        dst: SocketId,
        bytes: usize,
        earliest: Time,
    ) -> Time {
        let t = self.traffic_after(kernel, machine, pu, src, bytes, earliest);
        self.traffic_after(kernel, machine, pu, dst, bytes, t)
    }

    /// The controller resource of a socket (composition hooks).
    pub fn socket_resource(&self, s: SocketId) -> ResourceId {
        self.socket_res[s.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_sim::Simulation;
    use hupc_topo::MachineSpec;
    use std::sync::{Arc, Mutex};

    fn setup() -> (Arc<Machine>, Simulation, Arc<MemoryModel>) {
        let machine = Arc::new(Machine::new(MachineSpec::lehman()));
        let sim = Simulation::new();
        let mem = Arc::new(MemoryModel::build(&mut sim.kernel(), &machine));
        (machine, sim, mem)
    }

    #[test]
    fn local_stream_runs_at_socket_bandwidth() {
        let (machine, mut sim, mem) = setup();
        let bytes = 123 << 20;
        let (m2, mm) = (Arc::clone(&machine), Arc::clone(&mem));
        sim.spawn("t", move |ctx| {
            mm.stream(ctx, &m2, PuId(0), SocketId(0), bytes);
            let secs = time::as_secs_f64(ctx.now());
            let ideal = bytes as f64 / mm.bandwidth_per_socket();
            assert!((secs - ideal).abs() / ideal < 1e-6);
        });
        sim.run();
    }

    #[test]
    fn remote_stream_pays_numa_factor() {
        let (machine, mut sim, mem) = setup();
        let bytes = 64 << 20;
        let (m2, mm) = (Arc::clone(&machine), Arc::clone(&mem));
        sim.spawn("t", move |ctx| {
            // PU 0 is socket 0; home socket 1 → remote
            mm.stream(ctx, &m2, PuId(0), SocketId(1), bytes);
            let secs = time::as_secs_f64(ctx.now());
            let ideal = bytes as f64 * 1.28 / mm.bandwidth_per_socket();
            assert!((secs - ideal).abs() / ideal < 1e-6, "{secs} vs {ideal}");
        });
        sim.run();
    }

    #[test]
    fn two_streams_share_one_controller() {
        let (machine, mut sim, mem) = setup();
        let bytes = 64 << 20;
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2usize {
            let (m2, mm, e2) = (Arc::clone(&machine), Arc::clone(&mem), Arc::clone(&ends));
            sim.spawn(format!("t{i}"), move |ctx| {
                // PUs 0 and 2: two cores of socket 0, same home socket.
                mm.stream(ctx, &m2, PuId(i * 2), SocketId(0), bytes);
                e2.lock().unwrap().push(ctx.now());
            });
        }
        sim.run();
        let ends = ends.lock().unwrap();
        let ideal = time::from_secs_f64(2.0 * bytes as f64 / mem.bandwidth_per_socket());
        let max = *ends.iter().max().unwrap();
        assert!((max as f64 - ideal as f64).abs() / (ideal as f64) < 0.01);
        // Chunked fair sharing: both finish within one chunk of each other.
        let min = *ends.iter().min().unwrap();
        assert!(max - min <= time::from_secs_f64((4 << 20) as f64 / mem.bandwidth_per_socket()) + 1);
    }

    #[test]
    fn streams_on_distinct_sockets_do_not_interfere() {
        let (machine, mut sim, mem) = setup();
        let bytes = 64 << 20;
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2usize {
            let (m2, mm, e2) = (Arc::clone(&machine), Arc::clone(&mem), Arc::clone(&ends));
            sim.spawn(format!("t{i}"), move |ctx| {
                let pu = PuId(i * 8); // sockets 0 and 1
                mm.stream(ctx, &m2, pu, SocketId(i), bytes);
                e2.lock().unwrap().push(ctx.now());
            });
        }
        sim.run();
        let ends = ends.lock().unwrap();
        let ideal = time::from_secs_f64(bytes as f64 / mem.bandwidth_per_socket());
        for &e in ends.iter() {
            assert!((e as f64 - ideal as f64).abs() / (ideal as f64) < 1e-6);
        }
    }

    #[test]
    fn copy_charges_both_controllers() {
        let (machine, mut sim, mem) = setup();
        let bytes = 32 << 20;
        let (m2, mm) = (Arc::clone(&machine), Arc::clone(&mem));
        sim.spawn("t", move |ctx| {
            mm.copy(ctx, &m2, PuId(0), SocketId(0), SocketId(1), bytes);
            let secs = time::as_secs_f64(ctx.now());
            // read local (1.0) + write remote (1.28), serialized chunks
            let ideal = bytes as f64 * (1.0 + 1.28) / mm.bandwidth_per_socket();
            assert!((secs - ideal).abs() / ideal < 1e-6);
        });
        sim.run();
    }

    #[test]
    fn copy_after_is_consistent_with_copy() {
        let (machine, mut sim, mem) = setup();
        let bytes = 8 << 20;
        let (m2, mm) = (Arc::clone(&machine), Arc::clone(&mem));
        sim.spawn("t", move |ctx| {
            let t = ctx.with_kernel(|k| {
                mm.copy_after(k, &m2, PuId(0), SocketId(0), SocketId(0), bytes, 0)
            });
            let ideal = time::from_secs_f64(2.0 * bytes as f64 / mm.bandwidth_per_socket());
            assert!(t.abs_diff(ideal) <= 2, "{t} vs {ideal}"); // per-leg rounding
        });
        sim.run();
    }
}
