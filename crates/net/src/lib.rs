//! `hupc-net` — the platform performance model: network conduits, NIC and
//! link resources, CPU cores and the NUMA memory system.
//!
//! This crate turns a [`hupc_topo::MachineSpec`] plus a [`Conduit`] into the
//! set of FIFO queueing resources that `hupc-sim` charges virtual time
//! against. It is the stand-in for the physical InfiniBand/GigE fabrics and
//! Nehalem/Barcelona silicon of the thesis' two clusters:
//!
//! * [`Conduit`] — LogGP-style message cost parameters with presets for QDR
//!   InfiniBand (*Lehman*), DDR InfiniBand and Gigabit Ethernet (*Pyramid*);
//! * [`Fabric`] — per-node NIC injection/delivery queues and per-endpoint
//!   *connections*. Processes own one connection per UPC thread; pthread
//!   backends share one connection per node — the distinction behind the
//!   multi-link microbenchmark (thesis Fig 4.2);
//! * [`CpuModel`] — per-PU compute charging with a static SMT throughput
//!   factor (two hardware threads share a core at ~1.15× aggregate);
//! * [`MemoryModel`] — per-socket memory controllers with first-touch NUMA
//!   homing and a remote-socket penalty factor.

mod conduit;
mod cpu;
mod error;
mod fabric;
mod memory;

pub use conduit::{Conduit, ConduitKind};
pub use cpu::CpuModel;
pub use error::NetError;
pub use fabric::{Connection, Delivery, Fabric};
pub use memory::MemoryModel;
