//! CPU compute-time charging: per-PU FIFO resources with a static SMT
//! throughput factor.
//!
//! Work is expressed either in seconds-at-full-core-speed or in flops. When
//! two software threads occupy the two hardware threads of a core, each runs
//! at `smt_aggregate_speedup / 2` of full speed (≈57.5% on Nehalem), which
//! yields the thesis' observed 5–30% SMT kernel speedups and the 128-thread
//! kink of Fig 4.4.

use hupc_sim::{time, Ctx, Kernel, ResourceId, Time};
use hupc_topo::{Machine, PuId};

/// Per-PU compute resources for one machine.
#[derive(Clone, Debug)]
pub struct CpuModel {
    pu_res: Vec<ResourceId>,
    /// Occupied software threads per core (set by the launcher; drives the
    /// SMT slowdown factor).
    core_occupancy: Vec<u32>,
    smt_aggregate_speedup: f64,
    smt_per_core: usize,
    peak_flops_per_core: f64,
}

impl CpuModel {
    pub fn build(kernel: &mut Kernel, machine: &Machine) -> Self {
        let spec = machine.spec();
        let pu_res = (0..spec.pus_total())
            .map(|p| kernel.new_resource(format!("pu[{p}]")))
            .collect();
        CpuModel {
            pu_res,
            core_occupancy: vec![0; spec.cores_total()],
            smt_aggregate_speedup: spec.smt_aggregate_speedup,
            smt_per_core: spec.smt_per_core,
            peak_flops_per_core: spec.peak_flops_per_core(),
        }
    }

    /// Record that a software thread is bound to `pu` (increments its core's
    /// occupancy). Call once per launched thread / sub-thread.
    pub fn occupy(&mut self, machine: &Machine, pu: PuId) {
        self.core_occupancy[machine.pu_core(pu).0] += 1;
    }

    /// Release a previously recorded occupancy (sub-thread pools that tear
    /// down between phases).
    pub fn release(&mut self, machine: &Machine, pu: PuId) {
        let c = machine.pu_core(pu).0;
        assert!(self.core_occupancy[c] > 0, "release without occupy");
        self.core_occupancy[c] -= 1;
    }

    /// The factor a thread on `pu` is slowed by relative to an otherwise
    /// idle core: 1.0 for a lone thread, `n / aggregate_speedup` when `n`
    /// threads share the core's hardware threads.
    pub fn slowdown(&self, machine: &Machine, pu: PuId) -> f64 {
        let occ = self.core_occupancy[machine.pu_core(pu).0].max(1) as f64;
        let occ = occ.min(self.smt_per_core as f64);
        if occ <= 1.0 {
            1.0
        } else {
            // n threads share `aggregate_speedup` worth of core throughput
            occ / (1.0 + (self.smt_aggregate_speedup - 1.0) * (occ - 1.0)
                / (self.smt_per_core as f64 - 1.0).max(1.0))
        }
    }

    /// Charge `work` (time at full single-thread core speed) on `pu`,
    /// blocking the actor until the service completes.
    pub fn compute(&self, ctx: &Ctx, machine: &Machine, pu: PuId, work: Time) {
        if work == 0 {
            return;
        }
        let service = time::from_secs_f64(time::as_secs_f64(work) * self.slowdown(machine, pu));
        ctx.acquire(self.pu_res[pu.0], service);
    }

    /// Charge `flops` floating-point operations at `efficiency`
    /// (0 < e ≤ 1) of peak on `pu`.
    pub fn compute_flops(
        &self,
        ctx: &Ctx,
        machine: &Machine,
        pu: PuId,
        flops: f64,
        efficiency: f64,
    ) {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        let secs = flops / (self.peak_flops_per_core * efficiency);
        self.compute(ctx, machine, pu, time::from_secs_f64(secs));
    }

    /// The raw resource for a PU (for layers composing custom charges).
    pub fn pu_resource(&self, pu: PuId) -> ResourceId {
        self.pu_res[pu.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hupc_sim::Simulation;
    use hupc_topo::MachineSpec;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lone_thread_runs_at_full_speed() {
        let machine = Machine::new(MachineSpec::lehman());
        let sim = Simulation::new();
        let mut cpu = CpuModel::build(&mut sim.kernel(), &machine);
        cpu.occupy(&machine, PuId(0));
        assert_eq!(cpu.slowdown(&machine, PuId(0)), 1.0);
    }

    #[test]
    fn smt_pair_shares_core_at_aggregate_speedup() {
        let machine = Machine::new(MachineSpec::lehman());
        let sim = Simulation::new();
        let mut cpu = CpuModel::build(&mut sim.kernel(), &machine);
        cpu.occupy(&machine, PuId(0));
        cpu.occupy(&machine, PuId(1));
        let s = cpu.slowdown(&machine, PuId(0));
        // 2 threads / 1.15 aggregate → each ~1.74× slower
        assert!((s - 2.0 / 1.15).abs() < 1e-9, "slowdown {s}");
        // Aggregate throughput = 2 / slowdown = 1.15× a single thread.
        assert!((2.0 / s - 1.15).abs() < 1e-9);
    }

    #[test]
    fn no_smt_machine_never_slows() {
        let machine = Machine::new(MachineSpec::pyramid());
        let sim = Simulation::new();
        let mut cpu = CpuModel::build(&mut sim.kernel(), &machine);
        cpu.occupy(&machine, PuId(0));
        // A second occupy on the same single-PU core is clamped: the model
        // treats true oversubscription via FIFO serialization instead.
        cpu.occupy(&machine, PuId(0));
        assert_eq!(cpu.slowdown(&machine, PuId(0)), 1.0);
    }

    #[test]
    fn compute_charges_virtual_time() {
        let machine = Arc::new(Machine::new(MachineSpec::pyramid()));
        let mut sim = Simulation::new();
        let cpu = Arc::new(CpuModel::build(&mut sim.kernel(), &machine));
        let end = Arc::new(Mutex::new(0));
        let (m2, c2, e2) = (Arc::clone(&machine), Arc::clone(&cpu), Arc::clone(&end));
        sim.spawn("t0", move |ctx| {
            c2.compute(ctx, &m2, PuId(0), time::us(100));
            *e2.lock().unwrap() = ctx.now();
        });
        sim.run();
        assert_eq!(*end.lock().unwrap(), time::us(100));
    }

    #[test]
    fn flops_map_to_peak_rate() {
        let machine = Arc::new(Machine::new(MachineSpec::lehman()));
        let mut sim = Simulation::new();
        let cpu = Arc::new(CpuModel::build(&mut sim.kernel(), &machine));
        let (m2, c2) = (Arc::clone(&machine), Arc::clone(&cpu));
        sim.spawn("t0", move |ctx| {
            // 9.08 Gflop at 100% of a 9.08 Gflop/s core = 1 s
            let peak = m2.spec().peak_flops_per_core();
            c2.compute_flops(ctx, &m2, PuId(0), peak, 1.0);
            assert_eq!(ctx.now(), time::secs(1));
        });
        sim.run();
    }

    #[test]
    fn oversubscribed_pu_serializes_via_fifo() {
        let machine = Arc::new(Machine::new(MachineSpec::pyramid()));
        let mut sim = Simulation::new();
        let cpu = Arc::new(CpuModel::build(&mut sim.kernel(), &machine));
        let ends = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let (m2, c2, e2) = (Arc::clone(&machine), Arc::clone(&cpu), Arc::clone(&ends));
            sim.spawn(format!("t{i}"), move |ctx| {
                c2.compute(ctx, &m2, PuId(0), time::us(50));
                e2.lock().unwrap().push(ctx.now());
            });
        }
        sim.run();
        assert_eq!(*ends.lock().unwrap(), vec![time::us(50), time::us(100)]);
    }
}
