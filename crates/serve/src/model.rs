//! Multi-LP serving model: the same open-loop workload on the parallel DES
//! backend, one logical process per node.
//!
//! The PGAS mode ([`crate::service`]) runs the full `Upc` runtime, whose
//! kernel-level barriers and segment state make the job structurally
//! single-LP (it stays bit-identical *under* the parallel backend, on one
//! LP). This model is the complement: it strips the service to its queueing
//! skeleton — frontends pacing open-loop arrivals, shard servers with a
//! FIFO service resource, a lookahead-bounded network in between — and
//! partitions it one-LP-per-node, so a serving simulation actually spreads
//! across host cores. Cross-node requests are fire-and-forget spawns onto
//! the owner's LP at `now + net_delay` (the cross-LP event contract);
//! completions hop back the same way. Shared aggregates cross LPs only
//! through commutative sinks (atomics + the metrics registry), so results
//! are identical on `SimBackend::Sequential` and any `Parallel(n)` — the
//! tier-1 pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hupc_sim::{time, SimBackend, SimCell, Simulation, Time};
use hupc_trace::{Hist, Loc, MetricsRegistry};

use crate::shard::ShardMap;
use crate::traffic::{OpKind, TrafficConfig};

/// Model-mode configuration.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Nodes = logical processes.
    pub nodes: usize,
    pub frontends_per_node: usize,
    /// Shard servers per node, each a FIFO service resource.
    pub shards_per_node: usize,
    pub traffic: TrafficConfig,
    pub partitions_per_shard: usize,
    pub keys_per_partition: usize,
    /// Service time per applied update / served read, ns.
    pub service_ns: u64,
    /// One-way network delay between nodes; also the engine lookahead.
    pub net_delay: Time,
    /// Shed at the owner if the request is already this late on arrival.
    pub shed_after: Option<Time>,
    /// Simulation backend to run under.
    pub backend: SimBackend,
}

impl ModelConfig {
    pub fn small(seed: u64, backend: SimBackend) -> ModelConfig {
        ModelConfig {
            nodes: 4,
            frontends_per_node: 2,
            shards_per_node: 2,
            traffic: TrafficConfig {
                process: crate::traffic::ArrivalProcess::Poisson {
                    mean_gap: time::us(10),
                },
                mix: crate::traffic::OpMix::read_heavy(),
                requests_per_frontend: 80,
                batch_len: 4,
                keys: crate::traffic::KeyDist::Uniform,
                seed,
            },
            partitions_per_shard: 2,
            keys_per_partition: 16,
            service_ns: 500,
            net_delay: time::us(2),
            shed_after: None,
            backend,
        }
    }
}

/// One frontend's completion log: `(arrival, complete, key)` per request.
type CompletionLog = Vec<(Time, Time, u64)>;

/// What a model run produces. Everything here is a deterministic function
/// of the config — identical across backends.
#[derive(Clone, Debug, Default)]
pub struct ModelResult {
    pub hist: Hist,
    pub generated: u64,
    pub completed: u64,
    pub shed: u64,
    pub end_time: Time,
    /// `(arrival, complete, key)` for every completed request, sorted — the
    /// canonical request log for cross-backend comparison.
    pub log: Vec<(Time, Time, u64)>,
}

impl ModelResult {
    pub fn throughput_rps(&self) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.completed as f64 / time::as_secs_f64(self.end_time)
    }
}

/// Run the multi-LP serving model.
pub fn run_model(cfg: ModelConfig) -> ModelResult {
    let n_shards = cfg.nodes * cfg.shards_per_node;
    let shard_map = Arc::new(ShardMap::flat(
        n_shards,
        cfg.partitions_per_shard,
        cfg.keys_per_partition,
    ));
    let mut sim = Simulation::new();
    sim.set_sim_backend(cfg.backend);
    sim.set_lp_count(cfg.nodes);
    sim.set_lookahead(cfg.net_delay.max(1));

    // One FIFO service resource per shard server, homed on its node's LP.
    let resources: Arc<Vec<_>> = {
        let mut k = sim.kernel();
        Arc::new(
            (0..n_shards)
                .map(|s| k.new_resource(format!("shard{s}")))
                .collect(),
        )
    };

    // Per-shard predicted queue horizon, for the admission decision. Only
    // handlers on the shard's own LP touch it (same safety argument as the
    // per-frontend logs below).
    let busy: Arc<Vec<SimCell<Time>>> =
        Arc::new((0..n_shards).map(|_| SimCell::new(0)).collect());
    let metrics = Arc::new(MetricsRegistry::new());
    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let generated = Arc::new(AtomicU64::new(0));
    // Per-frontend completion logs: only actors homed on the frontend's own
    // LP touch its cell, so the parallel backend never races it.
    let n_frontends = cfg.nodes * cfg.frontends_per_node;
    let logs: Arc<Vec<SimCell<CompletionLog>>> =
        Arc::new((0..n_frontends).map(|_| SimCell::new(Vec::new())).collect());

    let cfg = Arc::new(cfg);
    for node in 0..cfg.nodes {
        for i in 0..cfg.frontends_per_node {
            let f = node * cfg.frontends_per_node + i;
            let cfg = Arc::clone(&cfg);
            let shard_map = Arc::clone(&shard_map);
            let resources = Arc::clone(&resources);
            let busy = Arc::clone(&busy);
            let metrics = Arc::clone(&metrics);
            let completed = Arc::clone(&completed);
            let shed = Arc::clone(&shed);
            let generated = Arc::clone(&generated);
            let logs = Arc::clone(&logs);
            sim.spawn_on(node, format!("frontend{f}"), move |ctx| {
                let sched = cfg.traffic.schedule_for(f, &shard_map);
                generated.fetch_add(sched.len() as u64, Ordering::Relaxed);
                for req in sched {
                    // Open loop: pace to the arrival clock, never to
                    // completions.
                    let now = ctx.now();
                    if req.arrival > now {
                        ctx.advance(req.arrival - now);
                    }
                    let owner = shard_map.owner_of(req.key);
                    let owner_lp = owner / cfg.shards_per_node;
                    let updates = match req.op {
                        OpKind::Get | OpKind::Put => 1,
                        OpKind::Batch => cfg.traffic.batch_len as u64,
                    };
                    let res = resources[owner];
                    let busy2 = Arc::clone(&busy);
                    let cfg2 = Arc::clone(&cfg);
                    let metrics2 = Arc::clone(&metrics);
                    let completed2 = Arc::clone(&completed);
                    let shed2 = Arc::clone(&shed);
                    let logs2 = Arc::clone(&logs);
                    let arrival = req.arrival;
                    let key = req.key;
                    let my_lp = node;
                    ctx.spawn_on(owner_lp, format!("rq{f}k{key}"), move |hc| {
                        let svc = time::ns(cfg2.service_ns * updates);
                        // Owner-side admission control: predicted sojourn
                        // (queue horizon + service − arrival) beyond the
                        // bound ⇒ shed instead of deepening the queue.
                        let admitted = busy2[owner].with_mut(|b| {
                            let start = (*b).max(hc.now());
                            if let Some(bound) = cfg2.shed_after {
                                if (start + svc).saturating_sub(arrival) > bound {
                                    return false;
                                }
                            }
                            *b = start + svc;
                            true
                        });
                        if !admitted {
                            shed2.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        hc.acquire(res, svc);
                        let logs3 = Arc::clone(&logs2);
                        hc.spawn_on(my_lp, format!("done{f}k{key}"), move |dc| {
                            let lat = dc.now() - arrival;
                            metrics2.observe(
                                "serve.latency",
                                Loc::new(my_lp as u32, f as u32),
                                lat,
                            );
                            completed2.fetch_add(1, Ordering::Relaxed);
                            logs3[f].with_mut(|l| l.push((arrival, dc.now(), key)));
                        });
                    });
                }
            });
        }
    }
    let stats = sim.run();

    let mut log: Vec<(Time, Time, u64)> = Vec::new();
    for cell in logs.iter() {
        cell.with(|l| log.extend_from_slice(l));
    }
    log.sort_unstable();
    ModelResult {
        hist: metrics.histogram_total("serve.latency"),
        generated: generated.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        end_time: stats.end_time,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_serves_everything_without_shedding() {
        let r = run_model(ModelConfig::small(11, SimBackend::Sequential));
        assert_eq!(r.generated, 4 * 2 * 80);
        assert_eq!(r.completed, r.generated);
        assert_eq!(r.shed, 0);
        assert_eq!(r.log.len() as u64, r.completed);
        assert!(r.hist.p50() > 0);
        assert!(r.hist.p999() >= r.hist.p99() && r.hist.p99() >= r.hist.p50());
    }

    #[test]
    fn overload_sheds_and_bounds_the_served_tail() {
        let mut hot = ModelConfig::small(12, SimBackend::Sequential);
        // Offered load far beyond capacity…
        hot.traffic.process = crate::traffic::ArrivalProcess::Poisson {
            mean_gap: time::ns(200),
        };
        hot.service_ns = 4_000;
        let unbounded = run_model(hot.clone());
        // …queues unboundedly without admission control…
        assert_eq!(unbounded.shed, 0);
        // …and sheds with it, with a visibly smaller served tail.
        let mut guarded = hot;
        guarded.shed_after = Some(time::us(50));
        let shedding = run_model(guarded);
        assert!(shedding.shed > 0, "overload must trigger shedding");
        assert!(
            shedding.hist.p999() < unbounded.hist.p999(),
            "shedding {} vs unbounded {}",
            shedding.hist.p999(),
            unbounded.hist.p999()
        );
    }
}
