//! # hupc-serve — a sharded PGAS key-value service under open-loop load
//!
//! The serving-scenario layer of the stack: where UTS/FT/GUPS answer "how
//! fast does a fixed computation finish", this crate answers the
//! million-user question — "what latency does the p99.9 request see when
//! demand arrives on its own clock". It composes the existing layers
//! rather than adding new ones:
//!
//! - keys shard to owner threads through the machine topology
//!   (node→socket→core) — [`shard::ShardMap`];
//! - GET/PUT/BATCH flow through gasnet one-sided ops; epoch snapshots fan
//!   in through the hierarchical collectives — [`service`];
//! - demand comes from a seeded, deterministic open-loop generator
//!   (Poisson and bursty ON/OFF) — [`traffic`];
//! - latency percentiles come from the `hupc-trace` pow2-bucket
//!   histograms; faults (loss, jitter, stragglers, degraded NICs) from
//!   `hupc-fault` turn into tail-latency experiments;
//! - the queueing skeleton also runs one-LP-per-node on the parallel DES
//!   backend — [`model`].
//!
//! Two invariant families are exported for the test wave: byte-level
//! schedule determinism ([`traffic::encode_schedule`]) and the
//! linearizability-lite oracle ([`service::verify_linearizable_lite`]).

pub mod model;
pub mod service;
pub mod shard;
pub mod traffic;

pub use model::{run_model, ModelConfig, ModelResult};
pub use service::{
    run_serve, run_serve_prepared, verify_linearizable_lite, Outcome, ReqRecord, ServeConfig,
    ServeResult,
};
pub use shard::ShardMap;
pub use traffic::{
    encode_schedule, ArrivalProcess, KeyDist, OpKind, OpMix, Request, TrafficConfig,
};
