//! Topology-aware shard placement: key → partition → owner thread.
//!
//! The keyspace is split into `partitions_per_thread × THREADS` equal
//! partitions of `keys_per_partition` consecutive keys. A partition is
//! scattered to an owner by an affine permutation (so adjacent partitions
//! land on different owners — no hot range maps to one thread) composed
//! with a topology-sorted thread table: threads ordered by
//! (node, processing unit), i.e. the node→socket→core hierarchy under the
//! runtime's packed binding. Both sides of the wire can evaluate the map
//! locally — routing a request costs arithmetic, not metadata traffic —
//! and every thread owns exactly `partitions_per_thread` partitions, so
//! placement is balanced by construction.

use hupc_gasnet::Gasnet;

/// Immutable key→owner map shared by all frontends and owners.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Thread ids sorted by (node, pu): the hierarchy order.
    order: Vec<usize>,
    /// Owner slot of thread `t` in `order` (inverse of `order`).
    slot_of: Vec<usize>,
    /// Affine multiplier, coprime with `partitions`.
    a: u64,
    /// Affine offset.
    c: u64,
    pub partitions: u64,
    pub keys_per_partition: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl ShardMap {
    fn build(order: Vec<usize>, partitions_per_thread: usize, keys_per_partition: usize) -> Self {
        let n = order.len();
        assert!(n > 0 && partitions_per_thread > 0 && keys_per_partition > 0);
        let partitions = (partitions_per_thread * n) as u64;
        // Smallest odd multiplier ≥ golden-ratio-ish constant mod partitions
        // that is coprime with the partition count: a fixed, deterministic
        // choice with no runtime randomness.
        let mut a = 0x9E37u64 % partitions;
        if a == 0 {
            a = 1;
        }
        while gcd(a, partitions) != 1 {
            a += 1;
        }
        let mut slot_of = vec![0usize; n];
        for (slot, &t) in order.iter().enumerate() {
            slot_of[t] = slot;
        }
        ShardMap {
            order,
            slot_of,
            a,
            c: 0x5bd1,
            partitions,
            keys_per_partition: keys_per_partition as u64,
        }
    }

    /// Placement from a live runtime: thread table sorted by
    /// (node, processing unit, thread id) — the machine hierarchy.
    pub fn from_gasnet(g: &Gasnet, partitions_per_thread: usize, keys_per_partition: usize) -> Self {
        let mut order: Vec<usize> = (0..g.n_threads()).collect();
        order.sort_by_key(|&t| (g.thread_node(t), g.thread_pu(t), t));
        Self::build(order, partitions_per_thread, keys_per_partition)
    }

    /// Placement with the identity thread order (model mode and unit tests,
    /// where there is no gasnet instance).
    pub fn flat(n_threads: usize, partitions_per_thread: usize, keys_per_partition: usize) -> Self {
        Self::build((0..n_threads).collect(), partitions_per_thread, keys_per_partition)
    }

    pub fn n_threads(&self) -> usize {
        self.order.len()
    }

    pub fn n_keys(&self) -> u64 {
        self.partitions * self.keys_per_partition
    }

    pub fn partition_of(&self, key: u64) -> u64 {
        debug_assert!(key < self.n_keys());
        key / self.keys_per_partition
    }

    /// Permuted slot of a partition: `(a·p + c) mod partitions`, a bijection
    /// because `gcd(a, partitions) == 1`.
    fn slot(&self, p: u64) -> u64 {
        (self.a.wrapping_mul(p).wrapping_add(self.c)) % self.partitions
    }

    /// Owner thread of a partition.
    pub fn owner_of_partition(&self, p: u64) -> usize {
        self.order[(self.slot(p) as usize) % self.order.len()]
    }

    /// Owner thread of a key.
    pub fn owner_of(&self, key: u64) -> usize {
        self.owner_of_partition(self.partition_of(key))
    }

    /// Index of `key` within its owner's local store, in
    /// `0..partitions_per_thread × keys_per_partition`. Both the frontend
    /// (to compute the remote segment offset for a one-sided GET) and the
    /// owner (to apply a PUT) evaluate this identically.
    pub fn local_index(&self, key: u64) -> usize {
        let p = self.partition_of(key);
        let local_partition = (self.slot(p) as usize) / self.order.len();
        local_partition * self.keys_per_partition as usize
            + (key % self.keys_per_partition) as usize
    }

    /// Keys owned per thread (store size).
    pub fn keys_per_thread(&self) -> usize {
        (self.partitions as usize / self.order.len()) * self.keys_per_partition as usize
    }

    /// Owner slot (hierarchy rank) of a thread — used to index per-owner
    /// state tables deterministically.
    pub fn slot_of_thread(&self, t: usize) -> usize {
        self.slot_of[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_balanced_and_local_indices_are_a_bijection() {
        for threads in [1, 3, 4, 8] {
            let s = ShardMap::flat(threads, 3, 8);
            let mut per_owner = vec![0usize; threads];
            let mut seen = vec![vec![false; s.keys_per_thread()]; threads];
            for p in 0..s.partitions {
                per_owner[s.owner_of_partition(p)] += 1;
            }
            assert!(per_owner.iter().all(|&c| c == 3), "{per_owner:?}");
            for key in 0..s.n_keys() {
                let o = s.owner_of(key);
                let li = s.local_index(key);
                assert!(!seen[o][li], "key {key} collides at owner {o} slot {li}");
                seen[o][li] = true;
            }
            // Every local slot of every owner is hit exactly once.
            assert!(seen.iter().all(|v| v.iter().all(|&b| b)));
        }
    }

    #[test]
    fn adjacent_partitions_scatter() {
        let s = ShardMap::flat(8, 4, 16);
        let mut same = 0;
        for p in 0..s.partitions - 1 {
            if s.owner_of_partition(p) == s.owner_of_partition(p + 1) {
                same += 1;
            }
        }
        // An affine scatter with a ≢ 0 mod THREADS keeps neighbors apart
        // almost always; identity placement would make this partitions-1.
        assert!(same < s.partitions / 4, "{same} adjacent collisions");
    }
}
