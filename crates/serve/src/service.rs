//! The sharded key-value service on the full `Upc` runtime (PGAS mode).
//!
//! Every UPC thread plays two roles at once:
//!
//! - **owner** of `partitions_per_thread` partitions, whose `[version,
//!   value]` pairs live in its shared segment — readable by anyone with a
//!   one-sided GET, writable only through its inbox;
//! - **frontend** admitting its own open-loop request stream on schedule.
//!
//! The wire protocol is pure PGAS: no request/reply actor pairs, just
//! one-sided puts and gets against symmetric segment offsets.
//!
//! * GET — a one-sided `memget` of the key's 2-word slot in the owner's
//!   segment. Owners apply a whole `[version, value]` pair in one local
//!   write, so a concurrent GET never observes a torn pair.
//! * PUT / BATCH — the frontend deposits `[seq, n, (key, delta)×n]` in its
//!   private inbox slot inside the owner's segment (one put), the owner's
//!   serve loop drains the inbox, bumps each key's version, adds the delta,
//!   appends to its committed log, and acks by writing `seq` into the
//!   frontend's ack slot. One outstanding update per frontend keeps slot
//!   reuse trivially safe; requests behind it queue — visibly, because
//!   arrivals are open-loop.
//!
//! Each thread runs a single event loop: admit due requests, drain the
//! inbox (serve), poll acks — and *always* drains while waiting, so two
//! threads updating each other's shards can never deadlock. Epoch
//! boundaries fan in through the hierarchical collectives (`hupc-coll`):
//! flag-sync, barrier, then group-staged `allreduce` snapshots of committed
//! counts and value sums — the "multi-key read" of the whole store.
//!
//! Overload control: `shed_after` bounds the queueing delay a request may
//! already have accumulated when the frontend gets to it; beyond the bound
//! it is shed (counted, never transmitted) instead of deepening the queue.

use std::sync::Arc;

use hupc_coll::CollDomain;
use hupc_gasnet::GasnetConfig;
use hupc_sim::{time, Kernel, SimCell, SimError, Time};
use hupc_trace::{Hist, Loc, MetricsRegistry};
use hupc_upc::{Upc, UpcConfig, UpcJob};

use crate::shard::ShardMap;
use crate::traffic::{OpKind, Request, TrafficConfig};

/// App-level retry bound on top of the transport's own retry budget.
/// Exhausting it marks the request `Failed` instead of panicking, so
/// adversarial schedule exploration keeps running.
const RETRY_CAP: u32 = 300;

/// Full serving-run configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub upc: UpcConfig,
    pub traffic: TrafficConfig,
    pub partitions_per_thread: usize,
    pub keys_per_partition: usize,
    /// Epoch snapshots: the schedule is split into this many chunks; each
    /// boundary runs a hierarchical fan-in snapshot. Use 1 for pure-latency
    /// experiments (no collective coupling between threads mid-run).
    pub epochs: usize,
    /// Admission control: shed a request whose queueing delay already
    /// exceeds this when the frontend dispatches it. `None` = queue without
    /// bound (saturation grows the tail unboundedly).
    pub shed_after: Option<Time>,
    /// Owner-side CPU cost per applied update, ns.
    pub apply_ns: u64,
    /// Frontend-side CPU cost to post-process a GET, ns.
    pub get_compute_ns: u64,
    /// Idle poll quantum for the event loop.
    pub poll_gap: Time,
}

impl ServeConfig {
    /// Test-sized run: 8 threads over 2 nodes, 512 keys, a few hundred
    /// requests.
    pub fn small(seed: u64) -> ServeConfig {
        ServeConfig {
            upc: UpcConfig::test_default(8, 2),
            traffic: TrafficConfig {
                process: crate::traffic::ArrivalProcess::Poisson {
                    mean_gap: time::us(20),
                },
                mix: crate::traffic::OpMix::read_heavy(),
                requests_per_frontend: 60,
                batch_len: 4,
                keys: crate::traffic::KeyDist::Uniform,
                seed,
            },
            partitions_per_thread: 2,
            keys_per_partition: 32,
            epochs: 2,
            shed_after: None,
            apply_ns: 200,
            get_compute_ns: 100,
            poll_gap: time::us(2),
        }
    }
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Completed; latency recorded.
    Done,
    /// Shed by admission control; never transmitted.
    Shed,
    /// Transport retry budget exhausted (only reachable under extreme fault
    /// plans or adversarial schedules).
    Failed,
}

/// Per-request record, in dispatch order per frontend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqRecord {
    pub arrival: Time,
    pub complete: Time,
    pub op: OpKind,
    pub key: u64,
    /// Version observed (GET) or committed (PUT/BATCH: version of the first
    /// key after the update).
    pub version: u64,
    pub outcome: Outcome,
    /// Loss/jitter perturbations drawn anywhere in the run while this
    /// request was in flight (global counter delta — a tagging heuristic,
    /// exact on single-tenant fault plans).
    pub faulted: bool,
    pub retries: u32,
}

/// Everything a serving run produces.
#[derive(Clone, Debug, Default)]
pub struct ServeResult {
    /// Per-frontend request records in dispatch order.
    pub records: Vec<Vec<ReqRecord>>,
    /// Per-owner committed log: `(key, version)` in apply order.
    pub committed: Vec<Vec<(u64, u64)>>,
    /// Per-epoch `(committed updates, value sum)` from the hierarchical
    /// fan-in snapshot.
    pub epoch_sums: Vec<(u64, u64)>,
    /// Latency histogram over all completed requests (ns).
    pub hist: Hist,
    /// Latency histogram over completed requests tagged as fault-affected.
    pub hist_faulted: Hist,
    pub generated: u64,
    pub completed: u64,
    pub shed: u64,
    pub failed: u64,
    pub retries: u64,
    /// FNV hash over every owner's final store contents, in thread order.
    pub end_state: u64,
    pub end_time: Time,
}

impl ServeResult {
    /// Completed requests per second of virtual time.
    pub fn throughput_rps(&self) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.completed as f64 / hupc_sim::time::as_secs_f64(self.end_time)
    }
}

fn fnv(h: u64, w: u64) -> u64 {
    let mut h = h ^ w;
    h = h.wrapping_mul(0x100000001B3);
    h
}

/// Segment layout (word offsets are symmetric across threads).
#[derive(Clone, Copy, Debug)]
struct Layout {
    store_off: usize,
    inbox_off: usize,
    slot_words: usize,
    ack_off: usize,
    flag_off: usize,
}

struct Pending {
    seq: u64,
    owner: usize,
    arrival: Time,
    key: u64,
    op: OpKind,
    fault_snap: u64,
    retries: u32,
}

/// Per-thread mutable serving state.
struct ThreadState {
    sched: Vec<Request>,
    records: Vec<ReqRecord>,
    committed: Vec<(u64, u64)>,
    /// Last inbox seq applied, per source frontend.
    applied: Vec<u64>,
    pending: Option<Pending>,
    put_seq: u64,
    retries_total: u64,
}

fn fault_perturbations(upc: &Upc<'_>) -> u64 {
    upc.gasnet().fault().map(|f| f.perturbations()).unwrap_or(0)
}

/// Bounded-retry one-sided put; `false` = budget exhausted.
fn put_retry(upc: &Upc<'_>, dst: usize, off: usize, data: &[u64], retries: &mut u32) -> bool {
    let mut tries = 0u32;
    loop {
        match upc.try_memput(dst, off, data) {
            Ok(()) => return true,
            Err(_) => {
                tries += 1;
                *retries += 1;
                if tries > RETRY_CAP {
                    return false;
                }
                upc.ctx().advance(time::ns(300 * (1 + tries as u64 / 8)));
            }
        }
    }
}

fn get_retry(upc: &Upc<'_>, src: usize, off: usize, out: &mut [u64], retries: &mut u32) -> bool {
    let mut tries = 0u32;
    loop {
        match upc.try_memget(src, off, out) {
            Ok(()) => return true,
            Err(_) => {
                tries += 1;
                *retries += 1;
                if tries > RETRY_CAP {
                    return false;
                }
                upc.ctx().advance(time::ns(300 * (1 + tries as u64 / 8)));
            }
        }
    }
}

/// Serve everything currently in the inbox: apply updates to the local
/// store, append to the committed log, ack each source.
fn drain_inbox(upc: &Upc<'_>, shard: &ShardMap, lay: Layout, st: &mut ThreadState, cfg: &ServeConfig) {
    let me = upc.mythread();
    let n = upc.threads();
    for src in 0..n {
        let slot = lay.inbox_off + src * lay.slot_words;
        let seg = upc.gasnet().segment(me);
        let seq = seg.read_word(slot);
        // Frontend seqs increase monotonically across ALL its owners (one
        // outstanding update per frontend), so any seq above the last one
        // applied from this source is exactly one new message.
        if seq <= st.applied[src] {
            continue;
        }
        let count = seg.read_word(slot + 1) as usize;
        let mut pairs = vec![0u64; 2 * count];
        seg.read(slot + 2, &mut pairs);
        for c in pairs.chunks_exact(2) {
            let (key, delta) = (c[0], c[1]);
            let off = lay.store_off + 2 * shard.local_index(key);
            let ver = seg.read_word(off);
            let val = seg.read_word(off + 1);
            // One 2-word write: a concurrent one-sided GET sees either the
            // old pair or the new pair, never a torn mix.
            seg.write(off, &[ver + 1, val.wrapping_add(delta)]);
            st.committed.push((key, ver + 1));
        }
        upc.compute(time::ns(cfg.apply_ns * count as u64));
        st.applied[src] = seq;
        let mut r = 0u32;
        // Ack into the source's segment; on (astronomically unlikely)
        // failure the source's own retry/shed path owns recovery.
        let _ = put_retry(upc, src, lay.ack_off + me, &[seq], &mut r);
        st.retries_total += r as u64;
    }
}

/// If the outstanding update has been acked, record its completion.
fn poll_ack(upc: &Upc<'_>, lay: Layout, st: &mut ThreadState, metrics: &MetricsRegistry, loc: Loc) {
    let me = upc.mythread();
    let Some(p) = &st.pending else { return };
    let acked = upc.gasnet().segment(me).read_word(lay.ack_off + p.owner);
    if acked < p.seq {
        return;
    }
    let p = st.pending.take().unwrap();
    let now = upc.now();
    let lat = now - p.arrival;
    let faulted = fault_perturbations(upc) != p.fault_snap;
    metrics.observe("serve.latency", loc, lat);
    if faulted {
        metrics.observe("serve.latency_faulted", loc, lat);
    }
    metrics.count("serve.completed", loc, 1);
    st.retries_total += p.retries as u64;
    st.records.push(ReqRecord {
        arrival: p.arrival,
        complete: now,
        op: p.op,
        key: p.key,
        version: 0,
        outcome: Outcome::Done,
        faulted,
        retries: p.retries,
    });
}

/// Admit one due request (the caller guarantees no update is outstanding).
#[allow(clippy::too_many_arguments)]
fn dispatch(
    upc: &Upc<'_>,
    shard: &ShardMap,
    lay: Layout,
    st: &mut ThreadState,
    cfg: &ServeConfig,
    req: Request,
    metrics: &MetricsRegistry,
    loc: Loc,
) {
    let me = upc.mythread();
    let now = upc.now();
    // Admission control: queueing delay already accumulated before the
    // frontend could even transmit. Shedding here keeps the served tail
    // bounded when offered load exceeds capacity.
    if let Some(bound) = cfg.shed_after {
        if now.saturating_sub(req.arrival) > bound {
            metrics.count("serve.shed", loc, 1);
            st.records.push(ReqRecord {
                arrival: req.arrival,
                complete: now,
                op: req.op,
                key: req.key,
                version: 0,
                outcome: Outcome::Shed,
                faulted: false,
                retries: 0,
            });
            return;
        }
    }
    let owner = shard.owner_of(req.key);
    match req.op {
        OpKind::Get => {
            let snap = fault_perturbations(upc);
            let mut buf = [0u64; 2];
            let off = lay.store_off + 2 * shard.local_index(req.key);
            let mut retries = 0u32;
            let ok = get_retry(upc, owner, off, &mut buf, &mut retries);
            st.retries_total += retries as u64;
            if cfg.get_compute_ns > 0 {
                upc.compute(time::ns(cfg.get_compute_ns));
            }
            let now = upc.now();
            let faulted = fault_perturbations(upc) != snap;
            let outcome = if ok { Outcome::Done } else { Outcome::Failed };
            if ok {
                let lat = now - req.arrival;
                metrics.observe("serve.latency", loc, lat);
                if faulted {
                    metrics.observe("serve.latency_faulted", loc, lat);
                }
                metrics.count("serve.completed", loc, 1);
            } else {
                metrics.count("serve.failed", loc, 1);
            }
            st.records.push(ReqRecord {
                arrival: req.arrival,
                complete: now,
                op: req.op,
                key: req.key,
                version: buf[0],
                outcome,
                faulted,
                retries,
            });
        }
        OpKind::Put | OpKind::Batch => {
            debug_assert!(st.pending.is_none(), "dispatch past an unacked update");
            let n_keys = if req.op == OpKind::Batch {
                cfg.traffic.batch_len as u64
            } else {
                1
            };
            let seq = st.put_seq + 1;
            let mut msg = Vec::with_capacity(2 + 2 * n_keys as usize);
            msg.push(seq);
            msg.push(n_keys);
            for i in 0..n_keys {
                let key = req.key + i;
                // Deterministic update payload; the oracle checks versions,
                // the epoch snapshot checks these sums.
                let delta = (seq.wrapping_mul(0x9E3779B9) ^ key) % 1000 + 1;
                msg.push(key);
                msg.push(delta);
            }
            let snap = fault_perturbations(upc);
            let mut retries = 0u32;
            let slot = lay.inbox_off + me * lay.slot_words;
            if !put_retry(upc, owner, slot, &msg, &mut retries) {
                metrics.count("serve.failed", loc, 1);
                st.retries_total += retries as u64;
                st.records.push(ReqRecord {
                    arrival: req.arrival,
                    complete: upc.now(),
                    op: req.op,
                    key: req.key,
                    version: 0,
                    outcome: Outcome::Failed,
                    faulted: true,
                    retries,
                });
                return;
            }
            st.put_seq = seq;
            st.pending = Some(Pending {
                seq,
                owner,
                arrival: req.arrival,
                key: req.key,
                op: req.op,
                fault_snap: snap,
                retries,
            });
        }
    }
}

/// Run the service (panics on simulation failure).
pub fn run_serve(cfg: ServeConfig) -> ServeResult {
    run_serve_prepared(cfg, |_| {}).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_serve`] but calls `prepare` on the kernel first (schedule
/// exploration hooks) and returns simulation failures as values — the
/// `hupc-check` seam.
pub fn run_serve_prepared(
    cfg: ServeConfig,
    prepare: impl FnOnce(&mut Kernel),
) -> Result<ServeResult, SimError> {
    let n = cfg.upc.gasnet.n_threads;
    assert!(n > 0 && cfg.epochs > 0);
    let slot_words = 2 + 2 * cfg.traffic.batch_len.max(1);
    // Make sure the symmetric segment can hold store + inbox + acks + flags.
    let mut gas: GasnetConfig = cfg.upc.gasnet.clone();
    let shard_probe =
        ShardMap::flat(n, cfg.partitions_per_thread, cfg.keys_per_partition);
    let need =
        shard_probe.keys_per_thread() * 2 + n * slot_words + 2 * n + 64;
    if gas.segment_words < need {
        gas.segment_words = need.next_power_of_two();
    }
    let job = UpcJob::new(UpcConfig {
        gasnet: gas,
        safety: cfg.upc.safety,
    });
    let shard = Arc::new(ShardMap::from_gasnet(
        job.gasnet(),
        cfg.partitions_per_thread,
        cfg.keys_per_partition,
    ));
    let lay = Layout {
        store_off: job.runtime().alloc_words(shard.keys_per_thread() * 2),
        inbox_off: job.runtime().alloc_words(n * slot_words),
        slot_words,
        ack_off: job.runtime().alloc_words(n),
        flag_off: job.runtime().alloc_words(n),
    };
    // Epoch fan-in goes through the topology-aware collective tree.
    CollDomain::install_auto(&job);
    prepare(&mut job.kernel());

    let metrics = Arc::new(MetricsRegistry::new());
    #[derive(Default)]
    struct PerThread {
        records: Vec<ReqRecord>,
        committed: Vec<(u64, u64)>,
        store_hash: u64,
        end_time: Time,
        epoch_sums: Vec<(u64, u64)>,
        retries: u64,
    }
    let out: Arc<Vec<SimCell<PerThread>>> =
        Arc::new((0..n).map(|_| SimCell::new(PerThread::default())).collect());

    let cfg2 = cfg.clone();
    let shard2 = Arc::clone(&shard);
    let metrics2 = Arc::clone(&metrics);
    let out2 = Arc::clone(&out);
    let stats = job.run_result(move |upc| {
        let me = upc.mythread();
        let loc = Loc::new(upc.gasnet().thread_node(me).0 as u32, me as u32);
        let mut st = ThreadState {
            sched: cfg2.traffic.schedule_for(me, &shard2),
            records: Vec::new(),
            committed: Vec::new(),
            applied: vec![0; upc.threads()],
            pending: None,
            put_seq: 0,
            retries_total: 0,
        };
        let total = st.sched.len();
        let mut epoch_sums = Vec::new();
        upc.barrier();
        for e in 0..cfg2.epochs {
            let lo = total * e / cfg2.epochs;
            let hi = total * (e + 1) / cfg2.epochs;
            let mut next = lo;
            let mut published = false;
            loop {
                drain_inbox(&upc, &shard2, lay, &mut st, &cfg2);
                poll_ack(&upc, lay, &mut st, &metrics2, loc);
                let now = upc.now();
                // Strict FIFO per frontend: nothing dispatches past an
                // unacked update, so records stay in dispatch order and a
                // queued GET's latency honestly includes head-of-line wait.
                if next < hi && st.pending.is_none() {
                    let req = st.sched[next];
                    if req.arrival <= now {
                        dispatch(&upc, &shard2, lay, &mut st, &cfg2, req, &metrics2, loc);
                        next += 1;
                        continue;
                    }
                }
                if next >= hi && st.pending.is_none() {
                    if !published {
                        // Zero outstanding updates: publish epoch-done to
                        // everyone (so seeing `flags[t] ≥ e+1` for all t
                        // really means no update of epoch ≤ e is in flight).
                        let mut r = 0u32;
                        for t in 0..upc.threads() {
                            let _ =
                                put_retry(&upc, t, lay.flag_off + me, &[(e + 1) as u64], &mut r);
                        }
                        st.retries_total += r as u64;
                        published = true;
                    }
                    let seg = upc.gasnet().segment(me);
                    let all = (0..upc.threads())
                        .all(|t| seg.read_word(lay.flag_off + t) >= (e + 1) as u64);
                    if all {
                        break;
                    }
                }
                // Sleep to the next interesting instant: the next arrival
                // if we're idle, else one poll quantum.
                let mut wake = now + cfg2.poll_gap;
                if next < hi && st.pending.is_none() {
                    wake = wake.min(st.sched[next].arrival.max(now + 1));
                }
                upc.ctx().advance(wake - now);
            }
            upc.barrier();
            // Hierarchical fan-in snapshot: committed count + value sum over
            // the whole store (the epoch's "multi-key read").
            let seg = upc.gasnet().segment(me);
            let mut vsum = 0u64;
            for i in 0..shard2.keys_per_thread() {
                vsum = vsum.wrapping_add(seg.read_word(lay.store_off + 2 * i + 1));
            }
            let tot_comm = upc.allreduce_sum_u64(st.committed.len() as u64);
            let tot_sum = upc.allreduce_sum_u64(vsum);
            epoch_sums.push((tot_comm, tot_sum));
        }
        upc.staged_barrier();
        let seg = upc.gasnet().segment(me);
        let mut h = 0xcbf29ce484222325u64;
        for i in 0..shard2.keys_per_thread() * 2 {
            h = fnv(h, seg.read_word(lay.store_off + i));
        }
        let end = upc.now();
        out2[me].with_mut(|o| {
            o.records = std::mem::take(&mut st.records);
            o.committed = std::mem::take(&mut st.committed);
            o.store_hash = h;
            o.end_time = end;
            o.epoch_sums = epoch_sums.clone();
            o.retries = st.retries_total;
        });
    });
    stats?;

    let mut res = ServeResult {
        hist: metrics.histogram_total("serve.latency"),
        hist_faulted: metrics.histogram_total("serve.latency_faulted"),
        ..Default::default()
    };
    let mut h = 0xcbf29ce484222325u64;
    for cell in out.iter() {
        cell.with(|o| {
            res.generated += o.records.len() as u64;
            res.completed += o
                .records
                .iter()
                .filter(|r| r.outcome == Outcome::Done)
                .count() as u64;
            res.shed += o.records.iter().filter(|r| r.outcome == Outcome::Shed).count() as u64;
            res.failed += o
                .records
                .iter()
                .filter(|r| r.outcome == Outcome::Failed)
                .count() as u64;
            res.retries += o.retries;
            res.records.push(o.records.clone());
            res.committed.push(o.committed.clone());
            h = fnv(h, o.store_hash);
            res.end_time = res.end_time.max(o.end_time);
            if res.epoch_sums.is_empty() {
                res.epoch_sums = o.epoch_sums.clone();
            }
        });
    }
    res.end_state = h;
    Ok(res)
}

/// Linearizability-lite oracle over a run's logs.
///
/// Invariants checked (per the serving protocol's contract):
/// 1. Per-key committed versions are dense and monotone: the k-th update an
///    owner applies to a key carries version exactly `k` (owners serialize
///    their shards).
/// 2. No GET observes a version newer than the key's final committed count
///    (reads cannot come from the future).
/// 3. Per (frontend, key), observed GET versions are non-decreasing in
///    dispatch order (monotonic reads: one-sided gets from one frontend to
///    one owner slot serialize).
/// 4. Outcome accounting: every generated request is exactly one of
///    completed / shed / failed, and every completed update was committed.
pub fn verify_linearizable_lite(r: &ServeResult, batch_len: usize) -> Result<(), String> {
    use std::collections::HashMap;
    let mut final_ver: HashMap<u64, u64> = HashMap::new();
    for (owner, log) in r.committed.iter().enumerate() {
        for &(key, ver) in log {
            let v = final_ver.entry(key).or_insert(0);
            if ver != *v + 1 {
                return Err(format!(
                    "owner {owner}: key {key} committed version {ver}, expected {}",
                    *v + 1
                ));
            }
            *v = ver;
        }
    }
    let mut applied_updates = 0u64;
    for (f, recs) in r.records.iter().enumerate() {
        let mut last_read: HashMap<u64, u64> = HashMap::new();
        for rec in recs {
            match (rec.op, rec.outcome) {
                (OpKind::Get, Outcome::Done) => {
                    let fin = final_ver.get(&rec.key).copied().unwrap_or(0);
                    if rec.version > fin {
                        return Err(format!(
                            "frontend {f}: GET key {} saw version {} > final {}",
                            rec.key, rec.version, fin
                        ));
                    }
                    let prev = last_read.entry(rec.key).or_insert(0);
                    if rec.version < *prev {
                        return Err(format!(
                            "frontend {f}: GET key {} went backwards {} -> {}",
                            rec.key, *prev, rec.version
                        ));
                    }
                    *prev = rec.version;
                }
                (OpKind::Put, Outcome::Done) => applied_updates += 1,
                (OpKind::Batch, Outcome::Done) => applied_updates += batch_len as u64,
                _ => {}
            }
        }
    }
    let committed_total: u64 = r.committed.iter().map(|l| l.len() as u64).sum();
    if committed_total != applied_updates {
        return Err(format!(
            "committed log has {committed_total} updates, acked requests imply {applied_updates}"
        ));
    }
    if r.completed + r.shed + r.failed != r.generated {
        return Err(format!(
            "outcome accounting: {} + {} + {} != {}",
            r.completed, r.shed, r.failed, r.generated
        ));
    }
    Ok(())
}
