//! Serving-path determinism and safety pins.
//!
//! Open-loop serving is only a measurement instrument if it is repeatable:
//! the same seed must reproduce the same arrival schedule byte-for-byte,
//! the same request log, the same end state, and the same latency
//! histogram — fault-free and under fault plans. The multi-LP model must
//! additionally agree across simulation backends (the cross-backend pin
//! also lives in crates/check/tests/parallel_equivalence.rs alongside the
//! other scenarios).

use hupc_fault::FaultPlan;
use hupc_serve::{
    encode_schedule, run_model, run_serve, verify_linearizable_lite, ModelConfig, Outcome,
    ServeConfig, ShardMap,
};
use hupc_sim::{time, SimBackend};

#[test]
fn schedules_are_byte_identical_across_generations() {
    let cfg = ServeConfig::small(1234);
    let shard = ShardMap::flat(8, cfg.partitions_per_thread, cfg.keys_per_partition);
    for f in 0..8 {
        let a = encode_schedule(&cfg.traffic.schedule_for(f, &shard));
        let b = encode_schedule(&cfg.traffic.schedule_for(f, &shard));
        assert_eq!(a, b, "frontend {f} schedule not reproducible");
    }
}

#[test]
fn pgas_serve_completes_and_satisfies_the_oracle() {
    let cfg = ServeConfig::small(42);
    let r = run_serve(cfg.clone());
    assert_eq!(r.generated, 8 * 60);
    assert_eq!(r.completed, r.generated, "fault-free run must complete all");
    assert_eq!(r.shed + r.failed, 0);
    assert_eq!(r.hist.count, r.completed);
    assert_eq!(r.epoch_sums.len(), cfg.epochs);
    // Epoch snapshots are cumulative: committed counts never decrease.
    for w in r.epoch_sums.windows(2) {
        assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
    }
    // The final snapshot equals the committed logs it aggregated.
    let committed_total: u64 = r.committed.iter().map(|l| l.len() as u64).sum();
    assert_eq!(r.epoch_sums.last().unwrap().0, committed_total);
    verify_linearizable_lite(&r, cfg.traffic.batch_len).unwrap();
    // Some GETs must actually observe updated versions for the monotone
    // check to be exercising anything.
    let observed: u64 = r
        .records
        .iter()
        .flatten()
        .filter(|rec| rec.op == hupc_serve::OpKind::Get && rec.version > 0)
        .count() as u64;
    assert!(observed > 0, "no GET ever saw a committed version");
}

#[test]
fn pgas_serve_is_deterministic_and_seed_sensitive() {
    let a = run_serve(ServeConfig::small(7));
    let b = run_serve(ServeConfig::small(7));
    assert_eq!(a.end_state, b.end_state);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.records, b.records);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.hist, b.hist);
    assert_eq!(a.epoch_sums, b.epoch_sums);
    let c = run_serve(ServeConfig::small(8));
    assert_ne!(a.end_state, c.end_state, "seed must actually steer the run");
}

#[test]
fn pgas_serve_under_loss_and_straggler_stays_linearizable() {
    let mut cfg = ServeConfig::small(21);
    cfg.epochs = 1;
    cfg.upc.gasnet.fault = Some(FaultPlan::new(0xFEED).loss(0.10).straggler(1, 3.0));
    let r = run_serve(cfg.clone());
    assert_eq!(r.generated, 8 * 60);
    assert!(r.completed > 0);
    assert_eq!(r.failed, 0, "retry budget must absorb 10% loss");
    verify_linearizable_lite(&r, cfg.traffic.batch_len).unwrap();
    // Loss/jitter retransmissions mark at least one request as
    // fault-affected, and the tagged subset is slower at the median.
    assert!(r.hist_faulted.count > 0, "no request tagged fault-affected");
    assert!(r.hist_faulted.p50() >= r.hist.p50());
    // Determinism holds under the fault plan too.
    let r2 = run_serve(cfg);
    assert_eq!(r.end_state, r2.end_state);
    assert_eq!(r.records, r2.records);
    assert_eq!(r.hist, r2.hist);
}

#[test]
fn pgas_shedding_bounds_queueing_delay() {
    let mut cfg = ServeConfig::small(33);
    // Saturate: arrivals far faster than the service path.
    cfg.traffic.process = hupc_serve::ArrivalProcess::Poisson {
        mean_gap: time::ns(300),
    };
    cfg.traffic.mix = hupc_serve::OpMix {
        get_pct: 0,
        put_pct: 100,
        batch_pct: 0,
    };
    cfg.apply_ns = 20_000;
    cfg.epochs = 1;
    let unbounded = run_serve(cfg.clone());
    assert_eq!(unbounded.shed, 0);
    cfg.shed_after = Some(time::us(100));
    let shedding = run_serve(cfg.clone());
    assert!(shedding.shed > 0, "saturation must trigger the shed knob");
    assert!(
        shedding.hist.p999() < unbounded.hist.p999(),
        "shed {} vs unbounded {}",
        shedding.hist.p999(),
        unbounded.hist.p999()
    );
    verify_linearizable_lite(&shedding, cfg.traffic.batch_len).unwrap();
}

#[test]
fn model_agrees_across_sequential_and_parallel_backends() {
    let base = run_model(ModelConfig::small(77, SimBackend::Sequential));
    assert_eq!(base.completed, base.generated);
    for workers in [1usize, 2, 4] {
        let par = run_model(ModelConfig::small(77, SimBackend::Parallel(workers)));
        assert_eq!(par.log, base.log, "request log diverged at {workers} workers");
        assert_eq!(par.hist, base.hist);
        assert_eq!(par.end_time, base.end_time);
        assert_eq!(
            (par.generated, par.completed, par.shed),
            (base.generated, base.completed, base.shed)
        );
    }
}

#[test]
fn bursty_arrivals_fatten_the_tail_at_equal_mean_load() {
    // Same mean gap (≈10µs/request): Poisson vs ON/OFF bursts of 10, at a
    // utilization high enough (service 6µs vs mean gap 10µs per frontend)
    // that burst coincidence actually queues.
    let mut poisson = ModelConfig::small(55, SimBackend::Sequential);
    poisson.traffic.requests_per_frontend = 400;
    poisson.service_ns = 6_000;
    let mut bursty = poisson.clone();
    bursty.traffic.process = hupc_serve::ArrivalProcess::OnOff {
        on_gap: time::us(1),
        off_gap: time::us(91),
        burst_len: 10,
    };
    let p = run_model(poisson);
    let b = run_model(bursty);
    assert!(
        b.hist.p999() > p.hist.p999(),
        "bursty p999 {} must exceed poisson p999 {}",
        b.hist.p999(),
        p.hist.p999()
    );
}

#[test]
fn records_and_outcomes_are_consistent() {
    let r = run_serve(ServeConfig::small(64));
    for (f, recs) in r.records.iter().enumerate() {
        // Dispatch order ⇒ non-decreasing completion per frontend is NOT
        // guaranteed (GETs overtake queued PUT acks is impossible here
        // because dispatch is FIFO), but arrivals must be non-decreasing
        // and completions never precede arrivals.
        for w in recs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival, "frontend {f} arrivals out of order");
        }
        for rec in recs {
            assert!(rec.complete >= rec.arrival);
            if rec.outcome == Outcome::Done {
                assert!(rec.retries <= 1000);
            }
        }
    }
}
