//! Backend layout: how UPC threads map onto processes and pthreads, and
//! which access path a (source, destination) thread pair takes.
//!
//! Thesis §3.1: Berkeley UPC offers two shared-memory mechanisms — running
//! several UPC threads as pthreads of one process, and PSHM (cross-mapped
//! segments between processes of a supernode). They are orthogonal and
//! composable; both turn intra-node communication into plain memory copies,
//! but only processes get a network connection each.

/// How the UPC threads of each node are grouped into OS processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backend {
    /// UPC threads per process (1 ⇒ pure process backend; `threads_per_node`
    /// ⇒ pure pthread backend).
    pub pthreads_per_proc: usize,
    /// Whether PSHM cross-maps segments between co-located processes.
    pub pshm: bool,
}

impl Backend {
    /// Pure process backend, one UPC thread per process.
    pub fn processes() -> Self {
        Backend {
            pthreads_per_proc: 1,
            pshm: false,
        }
    }

    /// Process backend with PSHM (the Berkeley UPC default the thesis uses).
    pub fn processes_pshm() -> Self {
        Backend {
            pthreads_per_proc: 1,
            pshm: true,
        }
    }

    /// Pure pthread backend: every thread of a node in one process.
    /// `per_node` is the node's thread count.
    pub fn pthreads(per_node: usize) -> Self {
        Backend {
            pthreads_per_proc: per_node,
            pshm: false,
        }
    }

    /// Mixed layout: `pthreads_per_proc` threads per process, with PSHM
    /// between the processes (thesis Fig 3.4's `pthr+PSHM` columns).
    pub fn mixed(pthreads_per_proc: usize, pshm: bool) -> Self {
        assert!(pthreads_per_proc >= 1);
        Backend {
            pthreads_per_proc,
            pshm,
        }
    }

    /// Process index (within its node) of the thread with node-local index
    /// `local_rank`.
    pub fn proc_of(&self, local_rank: usize) -> usize {
        local_rank / self.pthreads_per_proc
    }

    /// Number of processes on a node running `per_node` threads.
    pub fn procs_per_node(&self, per_node: usize) -> usize {
        per_node.div_ceil(self.pthreads_per_proc)
    }
}

/// The path an access from one UPC thread to another's segment takes.
/// Ordered cheapest-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessPath {
    /// Destination is the caller's own segment.
    Local,
    /// Same process (pthread siblings): direct load/store.
    SameProcess,
    /// Same supernode, different process, PSHM-mapped: direct copy through
    /// the cross-mapped segment (small per-call overhead).
    Pshm,
    /// Same node but no shared memory: loop back through the network API
    /// (bounce-buffered copy, full software overhead).
    Loopback,
    /// Different node: through the fabric.
    Network,
}

impl Backend {
    /// Classify the access path between two threads given their node-local
    /// ranks and whether they share a node.
    pub fn path(
        &self,
        same_node: bool,
        src_local: usize,
        dst_local: usize,
        same_thread: bool,
    ) -> AccessPath {
        if same_thread {
            return AccessPath::Local;
        }
        if !same_node {
            return AccessPath::Network;
        }
        if self.proc_of(src_local) == self.proc_of(dst_local) {
            AccessPath::SameProcess
        } else if self.pshm {
            AccessPath::Pshm
        } else {
            AccessPath::Loopback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_backend_paths() {
        let b = Backend::processes();
        assert_eq!(b.path(true, 0, 0, true), AccessPath::Local);
        assert_eq!(b.path(true, 0, 1, false), AccessPath::Loopback);
        assert_eq!(b.path(false, 0, 1, false), AccessPath::Network);
    }

    #[test]
    fn pshm_upgrades_intranode() {
        let b = Backend::processes_pshm();
        assert_eq!(b.path(true, 0, 1, false), AccessPath::Pshm);
        assert_eq!(b.path(false, 0, 1, false), AccessPath::Network);
    }

    #[test]
    fn pthread_backend_shares_process() {
        let b = Backend::pthreads(8);
        assert_eq!(b.path(true, 0, 7, false), AccessPath::SameProcess);
        assert_eq!(b.proc_of(0), 0);
        assert_eq!(b.proc_of(7), 0);
        assert_eq!(b.procs_per_node(8), 1);
    }

    #[test]
    fn mixed_layout_4x2() {
        // 8 threads/node as 4 processes × 2 pthreads, with PSHM
        let b = Backend::mixed(2, true);
        assert_eq!(b.procs_per_node(8), 4);
        assert_eq!(b.path(true, 0, 1, false), AccessPath::SameProcess);
        assert_eq!(b.path(true, 0, 2, false), AccessPath::Pshm);
        assert_eq!(b.proc_of(5), 2);
    }

    #[test]
    fn paths_are_ordered_cheapest_first() {
        assert!(AccessPath::Local < AccessPath::SameProcess);
        assert!(AccessPath::SameProcess < AccessPath::Pshm);
        assert!(AccessPath::Pshm < AccessPath::Loopback);
        assert!(AccessPath::Loopback < AccessPath::Network);
    }
}
