//! Typed communication errors and the retransmission policy.
//!
//! When a [`crate::GasnetConfig`] installs a `FaultPlan`, wire traversals
//! can be dropped; the runtime's put/get paths retransmit with exponential
//! backoff until the [`RetryPolicy`] budget runs out, at which point the
//! fallible (`try_*`) entry points surface a [`CommError`] instead of
//! silently hanging. The infallible entry points panic with the same
//! message, preserving the historical API.

use hupc_sim::{time, Time};
use hupc_topo::NodeId;

/// How the runtime retransmits dropped messages.
///
/// After attempt `n` fails (no ack before the timeout), the sender waits
/// `min(base_timeout × backoff^(n-1), max_backoff)` of virtual time and
/// retransmits; after `max_attempts` total attempts it gives up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Ack timeout after the first attempt.
    pub base_timeout: Time,
    /// Multiplicative backoff factor between attempts.
    pub backoff: u32,
    /// Ceiling on the per-attempt timeout.
    pub max_backoff: Time,
}

impl Default for RetryPolicy {
    /// Generous defaults tuned for the simulated GigE conduit: 8 attempts
    /// starting at 120 µs doubling to a 20 ms cap. At a few percent packet
    /// loss the chance of 8 consecutive drops is negligible (~1e-13 at 2%),
    /// so well-formed runs complete; a partitioned link still fails fast
    /// enough to produce a useful error.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_timeout: time::us(120),
            backoff: 2,
            max_backoff: time::ms(20),
        }
    }
}

impl RetryPolicy {
    /// Virtual time to wait after failed attempt number `attempt` (1-based).
    pub fn backoff_after(&self, attempt: u32) -> Time {
        let exp = attempt.saturating_sub(1).min(20);
        let t = self
            .base_timeout
            .saturating_mul(u64::from(self.backoff).saturating_pow(exp));
        t.min(self.max_backoff)
    }
}

/// A communication operation failed in a way the fault model allows the
/// application to observe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// Every transmission attempt of one message was dropped.
    RetriesExhausted {
        /// What kind of transfer this was ("put", "get", "memcpy", …).
        op: &'static str,
        /// Initiating UPC thread.
        src: usize,
        /// Peer UPC thread.
        dst: usize,
        src_node: NodeId,
        dst_node: NodeId,
        bytes: usize,
        attempts: u32,
    },
    /// A barrier did not release within the configured timeout — some
    /// thread never arrived (crashed, deadlocked, or partitioned away).
    BarrierTimeout { thread: usize, timeout: Time },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RetriesExhausted {
                op,
                src,
                dst,
                src_node,
                dst_node,
                bytes,
                attempts,
            } => write!(
                f,
                "{op} of {bytes} bytes from thread {src} (node {}) to thread {dst} \
                 (node {}) lost on all {attempts} attempts: retry budget exhausted",
                src_node.0, dst_node.0
            ),
            CommError::BarrierTimeout { thread, timeout } => write!(
                f,
                "barrier timeout: thread {thread} gave up after {} of virtual time \
                 (a peer never arrived)",
                time::format(*timeout)
            ),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(1), time::us(120));
        assert_eq!(p.backoff_after(2), time::us(240));
        assert_eq!(p.backoff_after(3), time::us(480));
        // eventually pinned at the cap
        assert_eq!(p.backoff_after(12), time::ms(20));
        assert_eq!(p.backoff_after(u32::MAX), time::ms(20));
    }

    #[test]
    fn display_mentions_the_essentials() {
        let e = CommError::RetriesExhausted {
            op: "put",
            src: 1,
            dst: 5,
            src_node: NodeId(0),
            dst_node: NodeId(2),
            bytes: 4096,
            attempts: 8,
        };
        let s = e.to_string();
        for needle in ["put", "4096", "thread 1", "thread 5", "8 attempts"] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
    }
}
