//! Teams: named subsets of UPC threads with their own barrier, modeled
//! after the (then-unreleased) GASNet team extension the thesis discusses in
//! §3.2.1. `hupc-groups` builds its topology-driven thread groups on top.

use std::sync::Arc;

use hupc_sim::{BarrierId, Ctx, Time};

use crate::runtime::Gasnet;

/// A subset of UPC threads acting as a collective unit.
pub struct Team {
    gasnet: Arc<Gasnet>,
    members: Vec<usize>,
    barrier: BarrierId,
}

impl Team {
    /// Create a team over `members` (UPC thread ids, distinct). Must be
    /// called before the simulation runs or from a context with kernel
    /// access; takes the simulation kernel through the `Gasnet`'s machinery.
    pub fn new(
        kernel: &mut hupc_sim::Kernel,
        gasnet: Arc<Gasnet>,
        mut members: Vec<usize>,
    ) -> Team {
        assert!(!members.is_empty(), "team needs at least one member");
        members.sort_unstable();
        members.dedup();
        for &m in &members {
            assert!(m < gasnet.n_threads(), "member {m} out of range");
        }
        let barrier = kernel.new_barrier(members.len());
        Team {
            gasnet,
            members,
            barrier,
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Members in rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Team rank of a UPC thread, if it belongs.
    pub fn rank_of(&self, thread: usize) -> Option<usize> {
        self.members.binary_search(&thread).ok()
    }

    /// UPC thread id of a team rank.
    pub fn thread_at(&self, rank: usize) -> usize {
        self.members[rank]
    }

    /// Whether every member pair shares memory (castable): the team spans a
    /// single supernode.
    pub fn is_shared_memory(&self) -> bool {
        let first = self.members[0];
        self.members.iter().all(|&m| self.gasnet.castable(first, m))
    }

    /// Barrier release cost: cheap for intra-node teams, dissemination over
    /// nodes otherwise.
    fn barrier_cost(&self) -> Time {
        let nodes: std::collections::HashSet<_> = self
            .members
            .iter()
            .map(|&m| self.gasnet.thread_node(m))
            .collect();
        let oh = self.gasnet.overheads().barrier_stage;
        if nodes.len() <= 1 {
            oh
        } else {
            let stages = (nodes.len() as f64).log2().ceil() as u64;
            oh + stages * (self.gasnet.fabric().conduit().wire_latency + oh)
        }
    }

    /// Team barrier; caller must be a member.
    pub fn barrier(&self, ctx: &Ctx, me: usize) {
        assert!(
            self.rank_of(me).is_some(),
            "thread {me} is not a member of this team"
        );
        self.gasnet.quiesce(ctx, me);
        ctx.barrier_wait_cost(self.barrier, self.barrier_cost());
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("members", &self.members)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::GasnetConfig;
    use hupc_sim::Simulation;

    #[test]
    fn ranks_and_membership() {
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, GasnetConfig::test_default(8, 2));
        let team = Team::new(&mut sim.kernel(), Arc::clone(&gn), vec![6, 2, 4, 2]);
        assert_eq!(team.size(), 3);
        assert_eq!(team.members(), &[2, 4, 6]);
        assert_eq!(team.rank_of(4), Some(1));
        assert_eq!(team.rank_of(3), None);
        assert_eq!(team.thread_at(2), 6);
    }

    #[test]
    fn shared_memory_detection() {
        let mut sim = Simulation::new();
        // 8 threads over 2 nodes → threads 0..4 on node 0
        let gn = Gasnet::new(&mut sim, GasnetConfig::test_default(8, 2));
        let k = &mut sim.kernel();
        let intra = Team::new(k, Arc::clone(&gn), vec![0, 1, 2, 3]);
        let cross = Team::new(k, Arc::clone(&gn), vec![3, 4]);
        assert!(intra.is_shared_memory());
        assert!(!cross.is_shared_memory());
    }

    #[test]
    fn team_barrier_only_synchronizes_members() {
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, GasnetConfig::test_default(4, 1));
        let team = Arc::new(Team::new(
            &mut sim.kernel(),
            Arc::clone(&gn),
            vec![0, 1],
        ));
        let done = Arc::new(hupc_sim::SimCell::new([0u64; 4]));
        for t in 0..4 {
            let team = Arc::clone(&team);
            let gn = Arc::clone(&gn);
            let done = Arc::clone(&done);
            sim.spawn(format!("upc{t}"), move |ctx| {
                if t < 2 {
                    ctx.advance(hupc_sim::time::us(t as u64 * 3 + 1));
                    team.barrier(ctx, t);
                    done.with_mut(|d| d[t] = ctx.now());
                } else {
                    // non-members never touch the team barrier
                    done.with_mut(|d| d[t] = 1);
                }
                let _ = gn; // keep alive
            });
        }
        sim.run();
        let d = done.get();
        assert_eq!(d[0], d[1]); // members released together
        assert_eq!(d[2], 1);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_barrier_panics() {
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, GasnetConfig::test_default(4, 1));
        let team = Arc::new(Team::new(&mut sim.kernel(), Arc::clone(&gn), vec![0, 1]));
        sim.spawn("upc3", move |ctx| {
            team.barrier(ctx, 3);
        });
        sim.run();
    }
}
