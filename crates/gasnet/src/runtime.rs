//! The GASNet-like runtime: segments + one-sided communication with
//! backend-aware cost paths.

use std::sync::Arc;

use hupc_fault::{FaultInjector, FaultPlan};
use hupc_net::{Conduit, Connection, CpuModel, Delivery, Fabric, MemoryModel};
use hupc_sim::{time, BarrierId, CompletionId, Ctx, Simulation, SimCell, Time};
use hupc_topo::{BindPolicy, Machine, MachineSpec, NodeId, Placement, PuId, SocketId};

use crate::backend::{AccessPath, Backend};
use crate::error::{CommError, RetryPolicy};
use crate::segment::{Segment, WORD_BYTES};

/// Stable payload code for an access path in trace events.
#[cfg(feature = "trace")]
fn path_code(p: AccessPath) -> u64 {
    match p {
        AccessPath::Local => 0,
        AccessPath::SameProcess => 1,
        AccessPath::Pshm => 2,
        AccessPath::Loopback => 3,
        AccessPath::Network => 4,
    }
}

/// Software overhead constants of the runtime (ns-scale knobs the thesis'
/// Chapter 3 results turn on).
#[derive(Clone, Copy, Debug)]
pub struct Overheads {
    /// Function-call + address-check cost of a shared access that resolves
    /// to the same process (pthread sibling).
    pub same_process_call: Time,
    /// Per-call cost of a PSHM cross-mapped copy.
    pub pshm_call: Time,
    /// Extra software cost of an intra-node message that loops back through
    /// the network API (no shared memory): send+receive bounce.
    pub loopback_per_message: Time,
    /// Cost of translating a pointer-to-shared to an address on every
    /// element access (the overhead `bupc_cast` privatization removes;
    /// drives Table 3.1).
    pub ptr_translation: Time,
    /// Base latency of an all-threads barrier round (per dissemination
    /// stage).
    pub barrier_stage: Time,
}

impl Default for Overheads {
    fn default() -> Self {
        Overheads {
            same_process_call: time::ns(60),
            pshm_call: time::ns(180),
            loopback_per_message: time::ns(1_400),
            ptr_translation: time::ns(17),
            barrier_stage: time::ns(500),
        }
    }
}

/// Everything needed to bring up a runtime instance.
#[derive(Clone, Debug)]
pub struct GasnetConfig {
    pub machine: MachineSpec,
    /// Total UPC threads.
    pub n_threads: usize,
    /// Nodes the threads are spread over.
    pub nodes_used: usize,
    pub bind: BindPolicy,
    pub backend: Backend,
    pub conduit: Conduit,
    /// Initial segment size per thread, in words.
    pub segment_words: usize,
    /// Override the runtime software-overhead constants (None = defaults).
    /// The bench harness uses this for the "+cast" manual-optimization
    /// variants of thesis Fig 3.4, which zero the intra-node per-call costs.
    pub overheads: Option<Overheads>,
    /// Optional fault-injection plan (packet loss, jitter, degraded NICs,
    /// stragglers). `None` — and any identity plan — leaves every modeled
    /// time bit-identical to the fault-free runtime.
    pub fault: Option<FaultPlan>,
    /// Retransmission policy for dropped messages (only consulted when a
    /// fault plan can actually drop something).
    pub retry: RetryPolicy,
    /// Optional watchdog on blocking barriers: a thread stuck longer than
    /// this fails with [`CommError::BarrierTimeout`] instead of deadlocking
    /// the simulation. `None` (the default) keeps barriers untimed.
    pub barrier_timeout: Option<Time>,
}

impl GasnetConfig {
    /// A reasonable default for tests: small machine, processes+PSHM, QDR.
    pub fn test_default(n_threads: usize, nodes_used: usize) -> Self {
        GasnetConfig {
            machine: MachineSpec::small_test(nodes_used.max(1)),
            n_threads,
            nodes_used,
            bind: BindPolicy::PackedCores,
            backend: Backend::processes_pshm(),
            conduit: Conduit::ib_qdr(),
            segment_words: 1 << 16,
            overheads: None,
            fault: None,
            retry: RetryPolicy::default(),
            barrier_timeout: None,
        }
    }
}

/// Non-blocking operation handle.
#[derive(Clone, Copy, Debug)]
#[must_use = "dropping a Handle without syncing loses the only way to observe completion"]
pub struct Handle {
    /// Source buffer reusable (injection finished).
    pub local: CompletionId,
    /// Data visible at the destination.
    pub remote: CompletionId,
}

/// The runtime. One instance per simulated job; shared by all actors via
/// `Arc`.
pub struct Gasnet {
    machine: Machine,
    placement: Placement,
    backend: Backend,
    conduit_kind: &'static str,
    fabric: Fabric,
    mem: MemoryModel,
    cpu: SimCell<CpuModel>,
    overheads: Overheads,
    conns: Vec<Connection>,
    segments: Vec<Segment>,
    barrier_all: BarrierId,
    outstanding: Vec<SimCell<Vec<CompletionId>>>,
    n_threads: usize,
    nodes_used: usize,
    // Fault model + recovery knobs.
    fault: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
    barrier_timeout: Option<Time>,
    // Split-phase (notify/wait) barrier state.
    split_arrived: SimCell<usize>,
    split_gen: SimCell<u64>,
    split_cond: hupc_sim::CondId,
    split_target: Vec<SimCell<u64>>,
    /// Per-thread "notified but not yet waited" flag: catches double-notify
    /// and wait-without-notify misuse.
    split_notified: Vec<SimCell<bool>>,
}

impl Gasnet {
    /// Build the runtime on a simulation (call before spawning actors).
    pub fn new(sim: &mut Simulation, cfg: GasnetConfig) -> Arc<Gasnet> {
        let machine = Machine::new(cfg.machine.clone());
        let placement = Placement::build(&machine, cfg.n_threads, cfg.nodes_used, cfg.bind);
        let mut k = sim.kernel();
        let mut fabric = Fabric::build(&mut k, cfg.conduit.clone(), cfg.machine.nodes);
        // One injector (one plan, one PRNG stream) shared by the fabric
        // (drops/jitter/NIC windows) and the runtime (straggler CPUs).
        let fault = cfg.fault.clone().map(|p| Arc::new(FaultInjector::new(p)));
        if let Some(inj) = &fault {
            fabric.set_fault(Arc::clone(inj));
        }
        // Network-progress oversubscription: when a node hosts more polling
        // endpoints (processes) than physical cores — the SMT-density
        // configurations of thesis Figs 4.4–4.6 — the adapter is driven
        // below line rate (§4.3.3.3: processes "swamp the runtime and
        // communication system").
        {
            let per_node = placement.threads_per_node();
            let procs = cfg.backend.procs_per_node(per_node);
            let cores = machine.spec().cores_per_node();
            let oversub = procs.saturating_sub(cores) as f64 / cores as f64;
            fabric.set_nic_factor(1.0 + 0.5 * oversub);
        }
        // Declare the link-latency floor as the kernel's cross-LP lookahead:
        // if this simulation is partitioned into LPs at node boundaries, the
        // conservative parallel backend can use the conduit's wire latency
        // as its null-message bound (jitter only delays, drops never
        // deliver, so the floor survives fault injection).
        k.set_lookahead(fabric.lookahead());
        let mem = MemoryModel::build(&mut k, &machine);
        let mut cpu = CpuModel::build(&mut k, &machine);
        for t in 0..cfg.n_threads {
            cpu.occupy(&machine, placement.thread_pu(t));
        }
        // One connection per process; pthread siblings share.
        let per_node = placement.threads_per_node();
        let mut proc_conns: std::collections::HashMap<(usize, usize), Connection> =
            std::collections::HashMap::new();
        let mut conns = Vec::with_capacity(cfg.n_threads);
        for t in 0..cfg.n_threads {
            let node = placement.thread_node(&machine, t);
            let local = t % per_node;
            let proc = cfg.backend.proc_of(local);
            let conn = *proc_conns.entry((node.0, proc)).or_insert_with(|| {
                fabric
                    .open_connection(&mut k, node)
                    .expect("placement only assigns threads to nodes inside the machine")
            });
            conns.push(conn);
        }
        let barrier_all = k.new_barrier(cfg.n_threads);
        let split_cond = k.new_cond();
        drop(k);
        let segments = (0..cfg.n_threads)
            .map(|_| Segment::new(cfg.segment_words))
            .collect();
        let outstanding = (0..cfg.n_threads).map(|_| SimCell::default()).collect();
        let kind = match cfg.conduit.kind {
            hupc_net::ConduitKind::IbQdr => "ibv-qdr",
            hupc_net::ConduitKind::IbDdr => "ibv-ddr",
            hupc_net::ConduitKind::GigE => "udp-gige",
        };
        Arc::new(Gasnet {
            machine,
            placement,
            backend: cfg.backend,
            conduit_kind: kind,
            fabric,
            mem,
            cpu: SimCell::new(cpu),
            overheads: cfg.overheads.unwrap_or_default(),
            conns,
            segments,
            barrier_all,
            outstanding,
            n_threads: cfg.n_threads,
            nodes_used: cfg.nodes_used,
            fault,
            retry: cfg.retry,
            barrier_timeout: cfg.barrier_timeout,
            split_arrived: SimCell::new(0),
            split_gen: SimCell::new(0),
            split_cond,
            split_target: (0..cfg.n_threads).map(|_| SimCell::new(0)).collect(),
            split_notified: (0..cfg.n_threads).map(|_| SimCell::new(false)).collect(),
        })
    }

    // ----- introspection ----------------------------------------------------

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    pub fn nodes_used(&self) -> usize {
        self.nodes_used
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn conduit_name(&self) -> &'static str {
        self.conduit_kind
    }

    pub fn overheads(&self) -> &Overheads {
        &self.overheads
    }

    pub fn mem(&self) -> &MemoryModel {
        &self.mem
    }

    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The installed fault injector, if any.
    pub fn fault(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// The retransmission policy for dropped messages.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Node of a UPC thread.
    pub fn thread_node(&self, t: usize) -> NodeId {
        self.placement.thread_node(&self.machine, t)
    }

    /// Bound PU of a UPC thread.
    pub fn thread_pu(&self, t: usize) -> PuId {
        self.placement.thread_pu(t)
    }

    /// Home socket of a thread's segment (first-touch by the bound thread).
    pub fn segment_home(&self, t: usize) -> SocketId {
        self.placement.thread_socket(&self.machine, t)
    }

    /// Access path between two threads (thesis §3.1's castability query:
    /// anything better than [`AccessPath::Network`]/`Loopback` is
    /// memory-reachable).
    pub fn path(&self, src: usize, dst: usize) -> AccessPath {
        let per_node = self.placement.threads_per_node();
        let same_node = self.thread_node(src) == self.thread_node(dst);
        self.backend
            .path(same_node, src % per_node, dst % per_node, src == dst)
    }

    /// Whether `dst`'s segment can be cast to a local pointer from `src`
    /// (the `bupc_cast` castability extension of §3.2.1).
    pub fn castable(&self, src: usize, dst: usize) -> bool {
        matches!(
            self.path(src, dst),
            AccessPath::Local | AccessPath::SameProcess | AccessPath::Pshm
        )
    }

    /// Segment of a thread.
    pub fn segment(&self, t: usize) -> &Segment {
        &self.segments[t]
    }

    // ----- compute charging ---------------------------------------------------

    /// CPU slowdown of the node hosting `pu` under the fault plan (1.0 when
    /// no plan or the node is healthy — a multiply by 1.0 is exact, so
    /// healthy nodes keep bit-identical timings).
    fn straggler_factor(&self, pu: PuId) -> f64 {
        match &self.fault {
            Some(inj) => inj.plan().cpu_slowdown(self.machine.pu_node(pu).0),
            None => 1.0,
        }
    }

    /// Charge `work` at full core speed on `pu` (sub-thread aware: the
    /// occupancy recorded via [`Gasnet::occupy_pu`] sets the SMT factor).
    /// Straggler nodes in the fault plan stretch the charge.
    pub fn compute_on(&self, ctx: &Ctx, pu: PuId, work: Time) {
        let slow = self.straggler_factor(pu);
        let work = if slow > 1.0 {
            time::from_secs_f64(time::as_secs_f64(work) * slow)
        } else {
            work
        };
        self.cpu.with(|c| c.compute(ctx, &self.machine, pu, work));
    }

    /// Charge `flops` at `efficiency` of peak on `pu`. Straggler nodes
    /// deliver proportionally less of their peak.
    pub fn compute_flops_on(&self, ctx: &Ctx, pu: PuId, flops: f64, efficiency: f64) {
        let efficiency = efficiency / self.straggler_factor(pu);
        self.cpu
            .with(|c| c.compute_flops(ctx, &self.machine, pu, flops, efficiency));
    }

    /// Charge `work` on the bound PU of UPC thread `me`.
    pub fn compute(&self, ctx: &Ctx, me: usize, work: Time) {
        self.compute_on(ctx, self.thread_pu(me), work);
    }

    /// Record a sub-thread binding (affects SMT factors).
    pub fn occupy_pu(&self, pu: PuId) {
        self.cpu.with_mut(|c| c.occupy(&self.machine, pu));
    }

    /// Release a sub-thread binding.
    pub fn release_pu(&self, pu: PuId) {
        self.cpu.with_mut(|c| c.release(&self.machine, pu));
    }

    /// Stream `bytes` of memory traffic from thread `me` against `home`.
    pub fn mem_stream(&self, ctx: &Ctx, me: usize, home: SocketId, bytes: usize) {
        self.mem
            .stream(ctx, &self.machine, self.thread_pu(me), home, bytes);
    }

    /// Stream `bytes` of memory traffic from an explicit PU (sub-threads).
    pub fn mem_stream_on(&self, ctx: &Ctx, pu: PuId, home: SocketId, bytes: usize) {
        self.mem.stream(ctx, &self.machine, pu, home, bytes);
    }

    // ----- one-sided communication --------------------------------------------

    /// Trace location of a UPC thread (node + thread).
    #[cfg(feature = "trace")]
    fn tloc(&self, t: usize) -> hupc_trace::Loc {
        hupc_trace::Loc::new(self.thread_node(t).0 as u32, t as u32)
    }

    /// Advance past the failed attempt's injection, then sit out the ack
    /// timeout before retransmitting.
    fn await_retry(&self, ctx: &Ctx, local: Time, attempt: u32) {
        let now = ctx.now();
        let resume = local.max(now) + self.retry.backoff_after(attempt);
        #[cfg(feature = "trace")]
        ctx.trace_emit(hupc_trace::EventKind::Backoff, resume - now, attempt as u64);
        // Lazy: the backoff coalesces with the next attempt's send overhead
        // into a single advance at the retransmission's kernel interaction.
        ctx.advance_lazy(resume - now);
    }

    fn retries_exhausted(
        &self,
        op: &'static str,
        me: usize,
        peer: usize,
        bytes: usize,
    ) -> CommError {
        CommError::RetriesExhausted {
            op,
            src: me,
            dst: peer,
            src_node: self.thread_node(me),
            dst_node: self.thread_node(peer),
            bytes,
            attempts: self.retry.max_attempts,
        }
    }

    /// Inject towards `dst`'s node, retransmitting dropped messages with
    /// exponential backoff until delivered or the retry budget runs out.
    fn net_send(
        &self,
        ctx: &Ctx,
        op: &'static str,
        me: usize,
        dst: usize,
        bytes: usize,
    ) -> Result<(Time, Time), CommError> {
        let dst_node = self.thread_node(dst);
        for attempt in 1..=self.retry.max_attempts.max(1) {
            // Lazy: folded into the inject's kernel interaction just below.
            ctx.advance_lazy(self.fabric.send_overhead());
            let d = ctx
                .with_kernel(|k| self.fabric.inject(k, self.conns[me], dst_node, bytes))
                .expect("placement guarantees valid inter-node addressing");
            match d {
                Delivery::Delivered { local, remote } => return Ok((local, remote)),
                Delivery::Dropped { local } => {
                    #[cfg(feature = "trace")]
                    {
                        ctx.trace_emit(hupc_trace::EventKind::Retry, attempt as u64, bytes as u64);
                        ctx.trace_count("gasnet.retries", self.tloc(me), 1);
                    }
                    self.await_retry(ctx, local, attempt)
                }
            }
        }
        Err(self.retries_exhausted(op, me, dst, bytes))
    }

    /// RDMA read from `src`'s node with the same retransmission loop.
    fn net_get(
        &self,
        ctx: &Ctx,
        op: &'static str,
        me: usize,
        src: usize,
        bytes: usize,
    ) -> Result<(Time, Time), CommError> {
        let src_node = self.thread_node(src);
        for attempt in 1..=self.retry.max_attempts.max(1) {
            // Lazy: folded into the rdma_get's kernel interaction just below.
            ctx.advance_lazy(self.fabric.send_overhead());
            let d = ctx
                .with_kernel(|k| self.fabric.rdma_get(k, self.conns[me], src_node, bytes))
                .expect("placement guarantees valid inter-node addressing");
            match d {
                Delivery::Delivered { local, remote } => return Ok((local, remote)),
                Delivery::Dropped { local } => {
                    #[cfg(feature = "trace")]
                    {
                        ctx.trace_emit(hupc_trace::EventKind::Retry, attempt as u64, bytes as u64);
                        ctx.trace_count("gasnet.retries", self.tloc(me), 1);
                    }
                    self.await_retry(ctx, local, attempt)
                }
            }
        }
        Err(self.retries_exhausted(op, me, src, bytes))
    }

    /// Fallible non-blocking put: like [`Gasnet::put_nb`] but surfaces
    /// [`CommError::RetriesExhausted`] instead of panicking when the fault
    /// plan eats every retransmission.
    pub fn try_put_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        data: &[u64],
    ) -> Result<Handle, CommError> {
        self.segments[dst].write(dst_off, data);
        self.charge_transfer(ctx, "put", me, dst, data.len() * WORD_BYTES)
    }

    /// Non-blocking put of `data` into `dst`'s segment at word offset
    /// `dst_off`. Bytes move immediately; the returned handle's completions
    /// fire at the modeled times.
    pub fn put_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        data: &[u64],
    ) -> Handle {
        self.try_put_nb(ctx, me, dst, dst_off, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible blocking put.
    pub fn try_put(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        data: &[u64],
    ) -> Result<(), CommError> {
        let h = self.try_put_nb(ctx, me, dst, dst_off, data)?;
        self.wait_sync(ctx, me, h);
        Ok(())
    }

    /// Blocking put: returns when the data is visible at the destination
    /// (`upc_memput` semantics).
    pub fn put(&self, ctx: &Ctx, me: usize, dst: usize, dst_off: usize, data: &[u64]) {
        self.try_put(ctx, me, dst, dst_off, data)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible non-blocking get.
    pub fn try_get_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        src: usize,
        src_off: usize,
        out: &mut [u64],
    ) -> Result<Handle, CommError> {
        self.segments[src].read(src_off, out);
        let bytes = out.len() * WORD_BYTES;
        self.charge_get(ctx, "get", me, src, bytes)
    }

    /// Non-blocking get from `src`'s segment at `src_off` into `out`.
    /// Bytes are copied immediately; wait on the handle before *using* them
    /// to respect modeled timing.
    pub fn get_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        src: usize,
        src_off: usize,
        out: &mut [u64],
    ) -> Handle {
        self.try_get_nb(ctx, me, src, src_off, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible blocking get.
    pub fn try_get(
        &self,
        ctx: &Ctx,
        me: usize,
        src: usize,
        src_off: usize,
        out: &mut [u64],
    ) -> Result<(), CommError> {
        let h = self.try_get_nb(ctx, me, src, src_off, out)?;
        self.wait_sync(ctx, me, h);
        Ok(())
    }

    /// Blocking get (`upc_memget` semantics).
    pub fn get(&self, ctx: &Ctx, me: usize, src: usize, src_off: usize, out: &mut [u64]) {
        self.try_get(ctx, me, src, src_off, out)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    // ----- scoped zero-copy transfers ---------------------------------------
    //
    // The `_with` family charges exactly like the buffer-based calls above
    // but hands the caller a borrowed view of the segment range instead of
    // copying through a staging `Vec`. The closures run under the segment's
    // `SimCell` borrow, so they must not issue simcalls and must not touch
    // the same segment again.

    /// Fallible non-blocking put that lets `f` write the destination words
    /// in place. Mirrors [`Gasnet::try_put_nb`]: bytes "move" (the closure
    /// runs) before the transfer is charged, and the charge is identical to
    /// a put of `words * 8` bytes.
    pub fn try_put_nb_with<R>(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        words: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> Result<(R, Handle), CommError> {
        let r = self.segments[dst].with_range_mut(dst_off, words, f);
        let h = self.charge_transfer(ctx, "put", me, dst, words * WORD_BYTES)?;
        Ok((r, h))
    }

    /// Non-blocking in-place put; panics on exhausted retries.
    pub fn put_nb_with<R>(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        words: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> (R, Handle) {
        self.try_put_nb_with(ctx, me, dst, dst_off, words, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Blocking in-place put (`upc_memput` timing, no staging buffer).
    pub fn put_with<R>(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        words: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        let (r, h) = self
            .try_put_nb_with(ctx, me, dst, dst_off, words, f)
            .unwrap_or_else(|e| panic!("{e}"));
        self.wait_sync(ctx, me, h);
        r
    }

    /// Fallible blocking get that lets `f` read the source words in place.
    /// Mirrors [`Gasnet::try_get_nb`] + [`Gasnet::wait_sync`]: the data is
    /// observed at issue time (exactly when `try_get_nb` copies it out),
    /// then the caller's virtual time advances to the modeled completion.
    pub fn try_get_with<R>(
        &self,
        ctx: &Ctx,
        me: usize,
        src: usize,
        src_off: usize,
        words: usize,
        f: impl FnOnce(&[u64]) -> R,
    ) -> Result<R, CommError> {
        let r = self.segments[src].with_range(src_off, words, f);
        let h = self.charge_get(ctx, "get", me, src, words * WORD_BYTES)?;
        self.wait_sync(ctx, me, h);
        Ok(r)
    }

    /// Blocking in-place get (`upc_memget` timing, no staging buffer).
    pub fn get_with<R>(
        &self,
        ctx: &Ctx,
        me: usize,
        src: usize,
        src_off: usize,
        words: usize,
        f: impl FnOnce(&[u64]) -> R,
    ) -> R {
        self.try_get_with(ctx, me, src, src_off, words, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible non-blocking memcpy.
    #[allow(clippy::too_many_arguments)]
    pub fn try_memcpy_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        src: usize,
        src_off: usize,
        len: usize,
    ) -> Result<Handle, CommError> {
        Segment::copy_between(&self.segments[src], src_off, &self.segments[dst], dst_off, len);
        let bytes = len * WORD_BYTES;
        // Dominant cost: whichever leg leaves the initiator's node.
        let src_path = self.path(me, src);
        let dst_path = self.path(me, dst);
        if dst_path == AccessPath::Network {
            self.charge_transfer(ctx, "memcpy", me, dst, bytes)
        } else if src_path == AccessPath::Network {
            self.charge_get(ctx, "memcpy", me, src, bytes)
        } else {
            let worst = src_path.max(dst_path);
            Ok(self.charge_local_copy(ctx, me, dst, bytes, worst))
        }
    }

    /// Segment-to-segment memcpy (`upc_memcpy`): word range from
    /// (`src`,`src_off`) to (`dst`,`dst_off`), charged as a get+put pipeline
    /// from `me`'s point of view.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        src: usize,
        src_off: usize,
        len: usize,
    ) -> Handle {
        self.try_memcpy_nb(ctx, me, dst, dst_off, src, src_off, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible blocking memcpy.
    #[allow(clippy::too_many_arguments)]
    pub fn try_memcpy(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        src: usize,
        src_off: usize,
        len: usize,
    ) -> Result<(), CommError> {
        let h = self.try_memcpy_nb(ctx, me, dst, dst_off, src, src_off, len)?;
        self.wait_sync(ctx, me, h);
        Ok(())
    }

    /// Blocking memcpy.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        dst_off: usize,
        src: usize,
        src_off: usize,
        len: usize,
    ) {
        self.try_memcpy(ctx, me, dst, dst_off, src, src_off, len)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible variant of [`Gasnet::transfer_nb`].
    pub fn try_transfer_nb(
        &self,
        ctx: &Ctx,
        me: usize,
        dst: usize,
        bytes: usize,
    ) -> Result<Handle, CommError> {
        self.charge_transfer(ctx, "transfer", me, dst, bytes)
    }

    /// Charge the cost of moving `bytes` from `me` to `dst` without touching
    /// segment data — the timing primitive layered protocols (e.g. the MPI
    /// baseline's two-sided messages) build on.
    pub fn transfer_nb(&self, ctx: &Ctx, me: usize, dst: usize, bytes: usize) -> Handle {
        self.try_transfer_nb(ctx, me, dst, bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Charge the transfer cost of `bytes` from `me` to `dst` and build a
    /// handle (data already moved).
    fn charge_transfer(
        &self,
        ctx: &Ctx,
        op: &'static str,
        me: usize,
        dst: usize,
        bytes: usize,
    ) -> Result<Handle, CommError> {
        let path = self.path(me, dst);
        #[cfg(feature = "trace")]
        {
            ctx.trace_emit(hupc_trace::EventKind::PutIssue, dst as u64, bytes as u64);
            ctx.trace_count("gasnet.puts", self.tloc(me), 1);
            ctx.trace_count("gasnet.put_bytes", self.tloc(me), bytes as u64);
        }
        let h = match path {
            AccessPath::Network => {
                let (local_t, remote_t) = self.net_send(ctx, op, me, dst, bytes)?;
                self.make_handle(ctx, me, local_t, remote_t)
            }
            path => self.charge_local_copy(ctx, me, dst, bytes, path),
        };
        #[cfg(feature = "trace")]
        ctx.trace_emit(hupc_trace::EventKind::PutCharge, bytes as u64, path_code(path));
        Ok(h)
    }

    /// Charge the cost of reading `bytes` from `src` into `me` and build a
    /// handle (data already observed by the caller). Shared by the buffer,
    /// zero-copy and memcpy get paths.
    fn charge_get(
        &self,
        ctx: &Ctx,
        op: &'static str,
        me: usize,
        src: usize,
        bytes: usize,
    ) -> Result<Handle, CommError> {
        let path = self.path(me, src);
        #[cfg(feature = "trace")]
        {
            ctx.trace_emit(hupc_trace::EventKind::GetIssue, src as u64, bytes as u64);
            ctx.trace_count("gasnet.gets", self.tloc(me), 1);
            ctx.trace_count("gasnet.get_bytes", self.tloc(me), bytes as u64);
        }
        let h = match path {
            AccessPath::Network => {
                // Request + RDMA read response.
                let (req_done, data_here) = self.net_get(ctx, op, me, src, bytes)?;
                self.make_handle(ctx, me, req_done, data_here)
            }
            path => self.charge_local_copy(ctx, me, src, bytes, path),
        };
        #[cfg(feature = "trace")]
        ctx.trace_emit(hupc_trace::EventKind::GetCharge, bytes as u64, path_code(path));
        Ok(h)
    }

    /// Intra-node copy charge along `path`; returns the handle.
    fn charge_local_copy(
        &self,
        ctx: &Ctx,
        me: usize,
        peer: usize,
        bytes: usize,
        path: AccessPath,
    ) -> Handle {
        let (overhead, copies) = match path {
            AccessPath::Local => (0, 1),
            AccessPath::SameProcess => (self.overheads.same_process_call, 1),
            AccessPath::Pshm => (self.overheads.pshm_call, 1),
            AccessPath::Loopback => (self.overheads.loopback_per_message, 2),
            AccessPath::Network => unreachable!("handled by caller"),
        };
        ctx.advance_lazy(overhead); // folded into the copy charge below
        let pu = self.thread_pu(me);
        let my_home = self.segment_home(me);
        let peer_home = self.segment_home(peer);
        let done = ctx.with_kernel(|k| {
            // Without shared memory the message loops back through the
            // network API, occupying the node's connection and NIC — the
            // contention PSHM/pthreads eliminate (thesis §3.1 / Fig 3.4).
            let mut t = if path == AccessPath::Loopback {
                self.fabric.inject_loopback(k, self.conns[me], bytes)
            } else {
                k.now()
            };
            for _ in 0..copies {
                t = self
                    .mem
                    .copy_after(k, &self.machine, pu, my_home, peer_home, bytes, t);
            }
            t
        });
        self.make_handle(ctx, me, done, done)
    }

    fn make_handle(&self, ctx: &Ctx, me: usize, local_t: Time, remote_t: Time) -> Handle {
        let h = ctx.with_kernel(|k| {
            let local = k.new_completion();
            let remote = k.new_completion();
            k.complete_at(local_t, local);
            k.complete_at(remote_t, remote);
            Handle { local, remote }
        });
        self.outstanding[me].with_mut(|v| v.push(h.remote));
        h
    }

    // ----- synchronization ------------------------------------------------------

    /// Wait until the source buffer of `h` is reusable.
    pub fn wait_local(&self, ctx: &Ctx, h: Handle) {
        ctx.wait(h.local);
    }

    /// Wait until `h` is fully complete (`upc_waitsync`).
    pub fn wait_sync(&self, ctx: &Ctx, me: usize, h: Handle) {
        ctx.wait(h.remote);
        self.outstanding[me].with_mut(|v| v.retain(|&c| c != h.remote));
    }

    /// Poll for completion (`upc_trysync`).
    pub fn try_sync(&self, ctx: &Ctx, me: usize, h: Handle) -> bool {
        if ctx.test(h.remote) {
            self.outstanding[me].with_mut(|v| v.retain(|&c| c != h.remote));
            true
        } else {
            false
        }
    }

    /// Drain all outstanding non-blocking operations issued by `me`.
    pub fn quiesce(&self, ctx: &Ctx, me: usize) {
        let pending = self.outstanding[me].with_mut(std::mem::take);
        for c in pending {
            ctx.wait(c);
        }
    }

    /// Fallible full-job barrier: like [`Gasnet::barrier`], but when
    /// `GasnetConfig::barrier_timeout` is set, a thread stuck longer than
    /// the timeout aborts with [`CommError::BarrierTimeout`] instead of
    /// hanging the simulation until the deadlock detector fires.
    ///
    /// A timed-out thread's arrival is withdrawn: the barrier round is
    /// broken for everyone still parked in it (they too will time out), which
    /// is the honest failure shape — a barrier with a missing participant
    /// cannot be "partially" passed.
    pub fn try_barrier(&self, ctx: &Ctx, me: usize) -> Result<(), CommError> {
        self.quiesce(ctx, me);
        #[cfg(feature = "trace")]
        {
            ctx.trace_emit(hupc_trace::EventKind::BarrierEnter, self.barrier_cost(), 0);
            ctx.trace_count("gasnet.barriers", self.tloc(me), 1);
        }
        let r = match self.barrier_timeout {
            None => {
                ctx.barrier_wait_cost(self.barrier_all, self.barrier_cost());
                Ok(())
            }
            Some(timeout) => ctx
                .barrier_wait_timeout_cost(self.barrier_all, self.barrier_cost(), timeout)
                .map_err(|_| CommError::BarrierTimeout { thread: me, timeout }),
        };
        #[cfg(feature = "trace")]
        if r.is_ok() {
            ctx.trace_emit(hupc_trace::EventKind::BarrierExit, 0, 0);
        }
        r
    }

    /// Full-job barrier (`upc_barrier`): drains outstanding ops, then a
    /// dissemination barrier whose release cost scales with log₂(nodes).
    pub fn barrier(&self, ctx: &Ctx, me: usize) {
        self.try_barrier(ctx, me).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Split-phase barrier, arrival half (`upc_notify`): signals this
    /// thread's arrival and returns immediately. Outstanding non-blocking
    /// operations are drained first (UPC's barrier memory semantics).
    /// Panics on a double notify (two `upc_notify` with no `upc_wait`
    /// between them — erroneous per the UPC spec).
    pub fn barrier_notify(&self, ctx: &Ctx, me: usize) {
        self.split_notified[me].with_mut(|n| {
            assert!(!*n, "upc_notify twice without an intervening upc_wait");
            *n = true;
        });
        self.quiesce(ctx, me);
        #[cfg(feature = "trace")]
        ctx.trace_emit(hupc_trace::EventKind::BarrierNotify, 0, 0);
        // Initiation cost; lazy — folded into the arrival interaction below.
        ctx.advance_lazy(self.overheads.barrier_stage);
        self.split_target[me].with_mut(|t| *t = self.split_gen.get() + 1);
        let arrived = self.split_arrived.with_mut(|a| {
            *a += 1;
            *a
        });
        if arrived == self.n_threads {
            self.split_arrived.set(0);
            self.split_gen.with_mut(|g| *g += 1);
            ctx.cond_notify_all(self.split_cond);
        }
    }

    /// Split-phase barrier, completion half (`upc_wait`): blocks until the
    /// phase this thread notified for has completed. Panics if called
    /// without a preceding [`Gasnet::barrier_notify`].
    pub fn barrier_wait_phase(&self, ctx: &Ctx, me: usize) {
        assert!(
            self.split_notified[me].get(),
            "upc_wait without a matching upc_notify"
        );
        let target = self.split_target[me].get();
        while self.split_gen.get() < target {
            ctx.cond_wait(self.split_cond);
        }
        self.split_notified[me].set(false);
        ctx.advance(self.barrier_cost()); // release propagation
        #[cfg(feature = "trace")]
        ctx.trace_emit(hupc_trace::EventKind::BarrierWait, 0, 0);
    }

    /// Modeled release cost of the all-threads barrier.
    pub fn barrier_cost(&self) -> Time {
        let stages = (self.nodes_used.max(2) as f64).log2().ceil() as u64;
        let intra = self.overheads.barrier_stage;
        if self.nodes_used > 1 {
            intra + stages * (self.fabric.conduit().wire_latency + self.overheads.barrier_stage)
        } else {
            intra
        }
    }
}

impl std::fmt::Debug for Gasnet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gasnet")
            .field("threads", &self.n_threads)
            .field("nodes", &self.nodes_used)
            .field("backend", &self.backend)
            .field("conduit", &self.conduit_kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn launch<F>(cfg: GasnetConfig, body: F) -> hupc_sim::SimulationStats
    where
        F: Fn(&Ctx, &Gasnet, usize) + Send + Sync + 'static,
    {
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, cfg);
        let body = Arc::new(body);
        for t in 0..gn.n_threads() {
            let gn = Arc::clone(&gn);
            let body = Arc::clone(&body);
            sim.spawn(format!("upc{t}"), move |ctx| body(ctx, &gn, t));
        }
        sim.run()
    }

    #[test]
    fn put_moves_data_and_time() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            if me == 0 {
                gn.put(ctx, 0, 3, 10, &[7, 8, 9]);
                assert!(ctx.now() > 0);
            }
            gn.barrier(ctx, me);
            if me == 3 {
                assert_eq!(gn.segment(3).read_word(10), 7);
                assert_eq!(gn.segment(3).read_word(12), 9);
            }
        });
    }

    #[test]
    fn get_round_trips() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            gn.segment(me).write_word(0, me as u64 + 100);
            gn.barrier(ctx, me);
            let peer = (me + 1) % 4;
            let mut out = [0u64];
            gn.get(ctx, me, peer, 0, &mut out);
            assert_eq!(out[0], peer as u64 + 100);
        });
    }

    #[test]
    fn remote_put_slower_than_local_put() {
        let cfg = GasnetConfig::test_default(4, 2);
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        launch(cfg, move |ctx, gn, me| {
            if me == 0 {
                let data = vec![1u64; 1024];
                let t0 = ctx.now();
                gn.put(ctx, 0, 1, 0, &data); // same node (threads 0,1 on node 0)
                let t1 = ctx.now();
                gn.put(ctx, 0, 2, 0, &data); // remote node
                let t2_ = ctx.now();
                t2.lock().unwrap().push((t1 - t0, t2_ - t1));
            }
            gn.barrier(ctx, me);
        });
        let v = times.lock().unwrap();
        let (local, remote) = v[0];
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn paths_match_layout() {
        let mut cfg = GasnetConfig::test_default(8, 2);
        cfg.backend = Backend::processes_pshm();
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, cfg);
        // 4 threads per node
        assert_eq!(gn.path(0, 0), AccessPath::Local);
        assert_eq!(gn.path(0, 1), AccessPath::Pshm);
        assert_eq!(gn.path(0, 4), AccessPath::Network);
        assert!(gn.castable(0, 1));
        assert!(!gn.castable(0, 4));
    }

    #[test]
    fn pthread_backend_shares_connection_and_process() {
        let mut cfg = GasnetConfig::test_default(8, 2);
        cfg.backend = Backend::pthreads(4);
        let mut sim = Simulation::new();
        let gn = Gasnet::new(&mut sim, cfg);
        assert_eq!(gn.path(0, 3), AccessPath::SameProcess);
        assert_eq!(gn.conns[0], gn.conns[3]);
        assert_ne!(gn.conns[0], gn.conns[4]);
    }

    #[test]
    fn loopback_is_most_expensive_intranode_path() {
        // Compare intra-node put cost: plain processes vs PSHM vs pthreads.
        fn intranode_put_time(backend: Backend) -> Time {
            let mut cfg = GasnetConfig::test_default(4, 1);
            cfg.backend = backend;
            let out = Arc::new(Mutex::new(0));
            let o2 = Arc::clone(&out);
            launch(cfg, move |ctx, gn, me| {
                if me == 0 {
                    let data = vec![0u64; 4096];
                    let t0 = ctx.now();
                    gn.put(ctx, 0, 1, 0, &data);
                    *o2.lock().unwrap() = ctx.now() - t0;
                }
                gn.barrier(ctx, me);
            });
            let v = *out.lock().unwrap();
            v
        }
        let plain = intranode_put_time(Backend::processes());
        let pshm = intranode_put_time(Backend::processes_pshm());
        let pthr = intranode_put_time(Backend::pthreads(4));
        assert!(plain > pshm, "loopback {plain} vs pshm {pshm}");
        assert!(pshm > pthr, "pshm {pshm} vs pthreads {pthr}");
    }

    #[test]
    fn nonblocking_overlap_beats_blocking() {
        fn run(nb: bool) -> Time {
            let cfg = GasnetConfig::test_default(4, 2);
            let out = Arc::new(Mutex::new(0));
            let o2 = Arc::clone(&out);
            launch(cfg, move |ctx, gn, me| {
                if me == 0 {
                    let data = vec![0u64; 1 << 14];
                    let t0 = ctx.now();
                    if nb {
                        let hs: Vec<Handle> = (0..4)
                            .map(|i| gn.put_nb(ctx, 0, 2, i << 14, &data))
                            .collect();
                        for h in hs {
                            gn.wait_sync(ctx, 0, h);
                        }
                    } else {
                        for i in 0..4 {
                            gn.put(ctx, 0, 2, i << 14, &data);
                        }
                    }
                    *o2.lock().unwrap() = ctx.now() - t0;
                }
                gn.barrier(ctx, me);
            });
            let v = *out.lock().unwrap();
            v
        }
        // Pipelining across connection/NIC/wire stages shortens the total.
        assert!(run(true) < run(false));
    }

    #[test]
    fn barrier_synchronizes_and_drains() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            if me == 1 {
                let data = vec![3u64; 2048];
                let _ = gn.put_nb(ctx, 1, 2, 0, &data); // deliberately un-waited
            }
            gn.barrier(ctx, me);
            // After the barrier everyone observes the same virtual time
            // ordering and the put has fully completed.
            if me == 2 {
                assert_eq!(gn.segment(2).read_word(2047), 3);
            }
        });
    }

    #[test]
    fn split_phase_barrier_overlaps_work() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            gn.segment(me).write_word(0, me as u64 + 1);
            gn.barrier_notify(ctx, me);
            // Overlappable local work between notify and wait.
            ctx.advance(hupc_sim::time::us(me as u64 * 10));
            gn.barrier_wait_phase(ctx, me);
            // After wait, everyone's pre-notify writes are visible.
            for t in 0..4 {
                assert_eq!(gn.segment(t).read_word(0), t as u64 + 1);
            }
            // Reusable: a second phase works.
            gn.barrier_notify(ctx, me);
            gn.barrier_wait_phase(ctx, me);
        });
    }

    #[test]
    fn memcpy_third_party() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            gn.segment(me).write_word(5, 40 + me as u64);
            gn.barrier(ctx, me);
            if me == 0 {
                // copy from thread 1's segment to thread 2's segment
                gn.memcpy(ctx, 0, 2, 77, 1, 5, 1);
            }
            gn.barrier(ctx, me);
            assert_eq!(gn.segment(2).read_word(77), 41);
        });
    }

    // ----- split-phase barrier edge cases ---------------------------------

    #[test]
    #[should_panic(expected = "upc_wait without a matching upc_notify")]
    fn split_wait_without_notify_panics() {
        let cfg = GasnetConfig::test_default(2, 1);
        launch(cfg, |ctx, gn, me| {
            if me == 0 {
                gn.barrier_wait_phase(ctx, 0); // never notified
            }
        });
    }

    #[test]
    #[should_panic(expected = "upc_wait without a matching upc_notify")]
    fn split_second_wait_without_renotify_panics() {
        // A full notify/wait cycle, then a second wait: the flag must have
        // been cleared by the first wait, so the second is misuse even
        // though split_target is non-zero by now.
        let cfg = GasnetConfig::test_default(2, 1);
        launch(cfg, |ctx, gn, me| {
            gn.barrier_notify(ctx, me);
            gn.barrier_wait_phase(ctx, me);
            if me == 0 {
                gn.barrier_wait_phase(ctx, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "upc_notify twice without an intervening upc_wait")]
    fn split_double_notify_panics() {
        let cfg = GasnetConfig::test_default(2, 1);
        launch(cfg, |ctx, gn, me| {
            if me == 0 {
                gn.barrier_notify(ctx, 0);
                gn.barrier_notify(ctx, 0);
            } else {
                gn.barrier_notify(ctx, 1);
                gn.barrier_wait_phase(ctx, 1);
            }
        });
    }

    // ----- fault injection + recovery -------------------------------------

    #[test]
    fn lossy_put_retries_and_delivers() {
        // 20% loss: every put must still land (the retry budget makes the
        // chance of 8 consecutive drops ~2.6e-6 per message) and data must
        // be correct.
        let mut cfg = GasnetConfig::test_default(4, 2);
        cfg.conduit = Conduit::gige();
        cfg.fault = Some(FaultPlan::new(11).loss(0.20));
        launch(cfg, |ctx, gn, me| {
            if me == 0 {
                for i in 0..32u64 {
                    gn.try_put(ctx, 0, 2, i as usize, &[i * 3]).unwrap();
                }
            }
            gn.barrier(ctx, me);
            if me == 2 {
                for i in 0..32u64 {
                    assert_eq!(gn.segment(2).read_word(i as usize), i * 3);
                }
            }
        });
    }

    #[test]
    fn lossy_put_takes_longer_than_clean_put() {
        let run = |plan: Option<FaultPlan>| -> Time {
            let mut cfg = GasnetConfig::test_default(4, 2);
            cfg.conduit = Conduit::gige();
            cfg.fault = plan;
            let out = Arc::new(Mutex::new(0));
            let o2 = Arc::clone(&out);
            launch(cfg, move |ctx, gn, me| {
                if me == 0 {
                    for i in 0..64 {
                        gn.put(ctx, 0, 2, i, &[1]);
                    }
                    *o2.lock().unwrap() = ctx.now();
                }
                gn.barrier(ctx, me);
            });
            let v = *out.lock().unwrap();
            v
        };
        let clean = run(None);
        let lossy = run(Some(FaultPlan::new(3).loss(0.25)));
        assert!(lossy > clean, "lossy {lossy} vs clean {clean}");
        // And an identity plan is *exactly* the clean run.
        assert_eq!(run(Some(FaultPlan::new(3))), clean);
    }

    #[test]
    fn dead_link_exhausts_retries_with_typed_error() {
        let mut cfg = GasnetConfig::test_default(4, 2);
        cfg.conduit = Conduit::gige();
        // Only the node0 → node1 direction is dead.
        cfg.fault = Some(FaultPlan::new(5).link_loss(0, 1, 1.0));
        cfg.retry.max_attempts = 4;
        let errs = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&errs);
        launch(cfg, move |ctx, gn, me| {
            if me == 0 {
                let err = gn.try_put(ctx, 0, 2, 0, &[9]).unwrap_err();
                e2.lock().unwrap().push(err);
            }
        });
        let errs = errs.lock().unwrap();
        match &errs[0] {
            CommError::RetriesExhausted {
                op,
                src,
                dst,
                attempts,
                ..
            } => {
                assert_eq!(*op, "put");
                assert_eq!((*src, *dst), (0, 2));
                assert_eq!(*attempts, 4);
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(errs[0].to_string().contains("retry budget exhausted"));
    }

    #[test]
    fn lossy_get_retries_and_delivers() {
        let mut cfg = GasnetConfig::test_default(4, 2);
        cfg.conduit = Conduit::gige();
        cfg.fault = Some(FaultPlan::new(21).loss(0.2));
        launch(cfg, |ctx, gn, me| {
            gn.segment(me).write_word(0, 500 + me as u64);
            gn.barrier(ctx, me);
            if me == 0 {
                let mut out = [0u64];
                gn.try_get(ctx, 0, 2, 0, &mut out).unwrap();
                assert_eq!(out[0], 502);
            }
            gn.barrier(ctx, me);
        });
    }

    #[test]
    fn barrier_timeout_surfaces_typed_error() {
        // Thread 1 never reaches the barrier (it "crashes" after a long
        // sleep); the others give up with BarrierTimeout instead of
        // deadlocking, and the simulation drains cleanly.
        let mut cfg = GasnetConfig::test_default(4, 2);
        cfg.barrier_timeout = Some(time::ms(1));
        let failures = Arc::new(Mutex::new(Vec::new()));
        let f2 = Arc::clone(&failures);
        launch(cfg, move |ctx, gn, me| {
            if me == 1 {
                ctx.advance(time::secs(1)); // outlives everyone's timeout
                return;
            }
            let r = gn.try_barrier(ctx, me);
            match r.unwrap_err() {
                CommError::BarrierTimeout { thread, timeout } => {
                    assert_eq!(thread, me);
                    assert_eq!(timeout, time::ms(1));
                    f2.lock().unwrap().push(me);
                }
                other => panic!("expected BarrierTimeout, got {other}"),
            }
        });
        let mut seen = failures.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3]);
    }

    #[test]
    fn barrier_without_timeout_is_unchanged() {
        let cfg = GasnetConfig::test_default(4, 2);
        launch(cfg, |ctx, gn, me| {
            assert!(gn.try_barrier(ctx, me).is_ok());
        });
    }

    #[test]
    fn straggler_node_slows_compute() {
        let run = |plan: Option<FaultPlan>| -> Time {
            let mut cfg = GasnetConfig::test_default(4, 2);
            cfg.fault = plan;
            let out = Arc::new(Mutex::new(0));
            let o2 = Arc::clone(&out);
            launch(cfg, move |ctx, gn, me| {
                gn.compute(ctx, me, time::us(100));
                gn.barrier(ctx, me);
                if me == 0 {
                    *o2.lock().unwrap() = ctx.now();
                }
            });
            let v = *out.lock().unwrap();
            v
        };
        let healthy = run(None);
        // Node 1 (threads 2,3) computes 3× slower; the barrier waits for it.
        let straggling = run(Some(FaultPlan::new(0).straggler(1, 3.0)));
        assert!(straggling > healthy, "{straggling} <= {healthy}");
    }

    /// The straggler stretch, exactly: only threads on the straggling node
    /// pay the factor, and they pay precisely `work × factor` through the
    /// same float path `compute_on` uses. Healthy nodes stay bit-identical.
    #[test]
    fn straggler_stretch_is_exact_and_per_node() {
        let per_thread = |plan: Option<FaultPlan>| -> Vec<Time> {
            let mut cfg = GasnetConfig::test_default(4, 2);
            cfg.fault = plan;
            let out = Arc::new(Mutex::new(vec![0; 4]));
            let o2 = Arc::clone(&out);
            launch(cfg, move |ctx, gn, me| {
                let t0 = ctx.now();
                gn.compute(ctx, me, time::us(100));
                o2.lock().unwrap()[me] = ctx.now() - t0;
            });
            let v = out.lock().unwrap().clone();
            v
        };
        let healthy = per_thread(None);
        let slowed = per_thread(Some(FaultPlan::new(0).straggler(1, 2.5)));
        // Threads 0,1 live on node 0: untouched, bit-identical.
        assert_eq!(slowed[0], healthy[0]);
        assert_eq!(slowed[1], healthy[1]);
        // Threads 2,3 live on node 1: stretched by exactly 2.5×.
        let stretched = time::from_secs_f64(time::as_secs_f64(time::us(100)) * 2.5);
        let base = time::us(100);
        for t in 2..4 {
            assert_eq!(healthy[t], base);
            assert_eq!(slowed[t], stretched, "thread {t}");
        }
        // An identity plan (factor 1.0) takes the untouched branch.
        let identity = per_thread(Some(FaultPlan::new(0).straggler(1, 1.0)));
        assert_eq!(identity, healthy);
    }
}
