//! `hupc-gasnet` — the communication runtime underneath the UPC layer,
//! modeled after GASNet (the Berkeley UPC compilation target).
//!
//! It provides registered **segments** (one per UPC thread, holding real
//! data), one-sided blocking and non-blocking **put/get**, split-phase
//! **barriers**, **teams**, and — crucially for Chapter 3 of the thesis —
//! the *shared-memory-aware backends*:
//!
//! * process backend (optionally with **PSHM**, inter-Process SHared
//!   Memory: cross-mapped segments inside a supernode);
//! * pthread backend (several UPC threads per process share the address
//!   space *and one network connection*);
//! * mixed process × pthread layouts (the `8(4*2)`-style configurations of
//!   thesis Fig 3.4).
//!
//! Every operation moves real bytes immediately and charges modeled virtual
//! time for when those bytes *would* be visible; correct UPC programs
//! synchronize before reading, so the early copy is unobservable.
//!
//! Data granularity is 8-byte **words** (`u64`): every transfer length and
//! offset counts words, which keeps the whole stack safe-Rust while matching
//! the `double`/`double complex`-dominated workloads of the evaluation.

mod backend;
mod error;
mod runtime;
mod segment;
mod team;

pub use backend::{AccessPath, Backend};
pub use error::{CommError, RetryPolicy};
pub use runtime::{Gasnet, GasnetConfig, Handle, Overheads};
pub use segment::{word, Segment, WORD_BYTES};
pub use team::Team;

// Fault-model vocabulary, re-exported so runtime users configure plans
// without depending on `hupc-fault` directly.
pub use hupc_fault::{DegradedWindow, FaultInjector, FaultPlan, Jitter};
