//! Registered segments: per-UPC-thread shared-memory regions holding real
//! data, in 8-byte words.

use hupc_sim::SimCell;

/// Bytes per segment word.
pub const WORD_BYTES: usize = 8;

/// One thread's registered shared segment. Grows on demand (the model's
/// analogue of the runtime-reserved GASNet segment).
pub struct Segment {
    data: SimCell<Vec<u64>>,
}

impl Segment {
    /// Create a segment with an initial size in words.
    pub fn new(words: usize) -> Self {
        Segment {
            data: SimCell::new(vec![0u64; words]),
        }
    }

    /// Current size in words.
    pub fn len(&self) -> usize {
        self.data.with(|d| d.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensure the segment covers `words` words.
    pub fn ensure(&self, words: usize) {
        self.data.with_mut(|d| {
            if d.len() < words {
                d.resize(words, 0);
            }
        });
    }

    /// Copy `dst.len()` words starting at `off` out of the segment.
    pub fn read(&self, off: usize, dst: &mut [u64]) {
        self.data.with(|d| {
            dst.copy_from_slice(&d[off..off + dst.len()]);
        });
    }

    /// Read a single word.
    pub fn read_word(&self, off: usize) -> u64 {
        self.data.with(|d| d[off])
    }

    /// Copy `src` into the segment at `off`.
    pub fn write(&self, off: usize, src: &[u64]) {
        self.data.with_mut(|d| {
            assert!(
                off + src.len() <= d.len(),
                "segment write out of bounds: {}..{} > {}",
                off,
                off + src.len(),
                d.len()
            );
            d[off..off + src.len()].copy_from_slice(src);
        });
    }

    /// Write a single word.
    pub fn write_word(&self, off: usize, v: u64) {
        self.data.with_mut(|d| d[off] = v);
    }

    /// Scoped shared access to a range (privatized/cast reads).
    pub fn with_range<R>(&self, off: usize, len: usize, f: impl FnOnce(&[u64]) -> R) -> R {
        self.data.with(|d| f(&d[off..off + len]))
    }

    /// Scoped exclusive access to a range (privatized/cast writes).
    pub fn with_range_mut<R>(
        &self,
        off: usize,
        len: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        self.data.with_mut(|d| f(&mut d[off..off + len]))
    }

    /// Segment-to-segment copy (the memcpy fast paths). Handles the
    /// same-segment case with a temporary.
    pub fn copy_between(src: &Segment, src_off: usize, dst: &Segment, dst_off: usize, len: usize) {
        if std::ptr::eq(src, dst) {
            let mut tmp = vec![0u64; len];
            src.read(src_off, &mut tmp);
            dst.write(dst_off, &tmp);
        } else {
            src.data.with(|s| {
                dst.data.with_mut(|d| {
                    d[dst_off..dst_off + len].copy_from_slice(&s[src_off..src_off + len]);
                });
            });
        }
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment").field("words", &self.len()).finish()
    }
}

/// f64 ⇄ word conversions (free: bit casts).
pub mod word {
    /// Pack an `f64` into a segment word.
    #[inline]
    pub fn from_f64(v: f64) -> u64 {
        v.to_bits()
    }

    /// Unpack an `f64` from a segment word.
    #[inline]
    pub fn to_f64(w: u64) -> f64 {
        f64::from_bits(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let s = Segment::new(16);
        s.write(4, &[1, 2, 3]);
        let mut out = [0u64; 3];
        s.read(4, &mut out);
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(s.read_word(5), 2);
        s.write_word(5, 42);
        assert_eq!(s.read_word(5), 42);
    }

    #[test]
    fn ensure_grows_but_never_shrinks() {
        let s = Segment::new(4);
        s.ensure(100);
        assert_eq!(s.len(), 100);
        s.ensure(10);
        assert_eq!(s.len(), 100);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let s = Segment::new(4);
        s.write(3, &[1, 2]);
    }

    #[test]
    fn copy_between_distinct_segments() {
        let a = Segment::new(8);
        let b = Segment::new(8);
        a.write(0, &[9, 8, 7]);
        Segment::copy_between(&a, 0, &b, 5, 3);
        assert_eq!(b.read_word(5), 9);
        assert_eq!(b.read_word(7), 7);
    }

    #[test]
    fn copy_within_same_segment() {
        let a = Segment::new(8);
        a.write(0, &[1, 2, 3]);
        Segment::copy_between(&a, 0, &a, 4, 3);
        assert_eq!(a.read_word(4), 1);
        assert_eq!(a.read_word(6), 3);
    }

    #[test]
    fn f64_word_round_trip() {
        let v = -1234.5678e-9;
        assert_eq!(word::to_f64(word::from_f64(v)), v);
    }

    #[test]
    fn ranged_access() {
        let s = Segment::new(10);
        s.with_range_mut(2, 4, |r| {
            for (i, w) in r.iter_mut().enumerate() {
                *w = i as u64;
            }
        });
        let sum: u64 = s.with_range(2, 4, |r| r.iter().sum());
        assert_eq!(sum, 1 + 2 + 3);
    }
}
