//! The shared steal-stack: each thread's stealable work region in the PGAS.
//!
//! Layout of each thread's chunk (thesis §3.3.2: "each thread maintains a
//! steal-stack residing in the UPC shared memory"):
//!
//! ```text
//! word 0            : workavail (nodes currently stealable)
//! words META..      : node slots, 3 words each, `[0, workavail)` live
//! ```
//!
//! The owner moves work between its private stack and this region; thieves
//! probe `workavail` with a one-word get and transfer nodes under the
//! owner's lock. All counters are read/written through the normal one-sided
//! paths, so probe and steal costs follow the conduit (the IB-vs-Ethernet
//! contrast of Fig 3.3 comes from exactly these operations).

use hupc_upc::{CommError, SharedArray, Upc, UpcLock};

use crate::tree::Node;

/// Words of metadata before the node slots.
const META: usize = 4;

/// The steal-stack region handle (one region per thread, symmetric).
#[derive(Clone, Copy, Debug)]
pub struct StealStacks {
    arr: SharedArray<u64>,
    /// Capacity in nodes of each thread's stealable region.
    cap: usize,
}

impl StealStacks {
    /// Allocate regions for all threads plus one lock per thread. Call on
    /// the job before running; pass the returned handle into the SPMD body.
    pub fn allocate(job: &hupc_upc::UpcJob, cap: usize) -> (StealStacks, Vec<UpcLock>) {
        let threads = job.gasnet().n_threads();
        let words_per = META + cap * Node::WORDS;
        let arr = job.alloc_shared::<u64>(words_per * threads, words_per);
        let locks = (0..threads).map(|t| job.alloc_lock_at(t)).collect();
        (
            StealStacks { arr, cap },
            locks,
        )
    }

    /// Capacity in nodes.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn avail_word(&self) -> usize {
        self.arr.word_offset()
    }

    fn slot_word(&self, i: usize) -> usize {
        self.arr.word_offset() + META + i * Node::WORDS
    }

    // ----- owner-side (local, cheap) ----------------------------------------

    /// Owner: current stealable count (direct read).
    pub fn my_avail(&self, upc: &Upc<'_>) -> usize {
        upc.gasnet()
            .segment(upc.mythread())
            .read_word(self.avail_word()) as usize
    }

    /// Owner: append `nodes` to the stealable region (hold the own lock).
    /// Returns how many were actually placed (bounded by capacity).
    pub fn release(&self, upc: &Upc<'_>, nodes: &[Node]) -> usize {
        let me = upc.mythread();
        let seg = upc.gasnet().segment(me);
        let avail = seg.read_word(self.avail_word()) as usize;
        let take = nodes.len().min(self.cap - avail);
        for (i, n) in nodes[..take].iter().enumerate() {
            seg.write(self.slot_word(avail + i), &n.to_words());
        }
        seg.write_word(self.avail_word(), (avail + take) as u64);
        take
    }

    /// Owner: reclaim all stealable nodes back to the private stack (hold
    /// the own lock).
    pub fn reacquire(&self, upc: &Upc<'_>, out: &mut Vec<Node>) -> usize {
        let me = upc.mythread();
        let seg = upc.gasnet().segment(me);
        let avail = seg.read_word(self.avail_word()) as usize;
        let mut buf = vec![0u64; Node::WORDS];
        for i in 0..avail {
            seg.read(self.slot_word(i), &mut buf);
            out.push(Node::from_words(&buf));
        }
        seg.write_word(self.avail_word(), 0);
        avail
    }

    // ----- thief-side (remote, charged) ---------------------------------------

    /// Thief: probe `victim`'s stealable count (one-word one-sided read).
    pub fn probe(&self, upc: &Upc<'_>, victim: usize) -> usize {
        self.try_probe(upc, victim).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible probe: surfaces the retry-budget failure instead of
    /// panicking, so a thief facing an unreachable victim can move on to
    /// the next one.
    pub fn try_probe(&self, upc: &Upc<'_>, victim: usize) -> Result<usize, CommError> {
        let mut w = [0u64];
        upc.try_memget(victim, self.avail_word(), &mut w)?;
        Ok(w[0] as usize)
    }

    /// Thief: transfer up to `want` nodes from `victim` (caller must hold
    /// the victim's lock). Returns the stolen nodes (possibly empty if the
    /// region drained between probe and lock).
    pub fn steal_locked(&self, upc: &Upc<'_>, victim: usize, want: usize) -> Vec<Node> {
        self.try_steal_locked(upc, victim, want)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible transfer (caller must hold the victim's lock).
    ///
    /// The two reads are side-effect free in the data plane, so an error
    /// there aborts cleanly with the victim's region untouched. The final
    /// counter write-back is the commit point: the segment write lands
    /// even when its modeled delivery exhausts the retry budget, so once
    /// the reads succeeded the transfer is kept — abandoning the nodes at
    /// that point would drop real work from the tree. A lost write-back
    /// acknowledgement therefore only costs (a lot of) virtual time.
    pub fn try_steal_locked(
        &self,
        upc: &Upc<'_>,
        victim: usize,
        want: usize,
    ) -> Result<Vec<Node>, CommError> {
        let mut w = [0u64];
        upc.try_memget(victim, self.avail_word(), &mut w)?;
        let avail = w[0] as usize;
        let take = want.min(avail);
        if take == 0 {
            return Ok(Vec::new());
        }
        let from = avail - take;
        let mut words = vec![0u64; take * Node::WORDS];
        upc.try_memget(victim, self.slot_word(from), &mut words)?;
        let _ = upc.try_memput(victim, self.avail_word(), &[from as u64]);
        Ok(words
            .chunks_exact(Node::WORDS)
            .map(Node::from_words)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use hupc_upc::{UpcConfig, UpcJob};

    #[test]
    fn release_reacquire_round_trip() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let (stacks, locks) = StealStacks::allocate(&job, 64);
        job.run(move |upc| {
            if upc.mythread() == 0 {
                let p = TreeParams::small_binomial(1);
                let mut kids = Vec::new();
                p.children(&p.root(), &mut kids);
                let n = kids.len().min(10);
                locks[0].lock(&upc);
                let placed = stacks.release(&upc, &kids[..n]);
                assert_eq!(placed, n);
                assert_eq!(stacks.my_avail(&upc), n);
                let mut back = Vec::new();
                let got = stacks.reacquire(&upc, &mut back);
                assert_eq!(got, n);
                assert_eq!(back, kids[..n].to_vec());
                assert_eq!(stacks.my_avail(&upc), 0);
                locks[0].unlock(&upc);
            }
        });
    }

    #[test]
    fn capacity_bounds_release() {
        let job = UpcJob::new(UpcConfig::test_default(1, 1));
        let (stacks, locks) = StealStacks::allocate(&job, 4);
        job.run(move |upc| {
            let p = TreeParams::small_binomial(2);
            let mut kids = Vec::new();
            p.children(&p.root(), &mut kids); // 60 children
            locks[0].lock(&upc);
            let placed = stacks.release(&upc, &kids);
            assert_eq!(placed, 4);
            let more = stacks.release(&upc, &kids);
            assert_eq!(more, 0);
            locks[0].unlock(&upc);
        });
    }

    #[test]
    fn thief_steals_from_the_top() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let (stacks, locks) = StealStacks::allocate(&job, 64);
        job.run(move |upc| {
            let p = TreeParams::small_binomial(3);
            let mut kids = Vec::new();
            p.children(&p.root(), &mut kids);
            let kids = &kids[..8];
            if upc.mythread() == 0 {
                locks[0].lock(&upc);
                stacks.release(&upc, kids);
                locks[0].unlock(&upc);
            }
            upc.barrier();
            if upc.mythread() == 1 {
                assert_eq!(stacks.probe(&upc, 0), 8);
                locks[0].lock(&upc);
                let stolen = stacks.steal_locked(&upc, 0, 3);
                locks[0].unlock(&upc);
                assert_eq!(stolen, kids[5..8].to_vec());
                assert_eq!(stacks.probe(&upc, 0), 5);
            }
            upc.barrier();
        });
    }

    #[test]
    fn steal_more_than_available_takes_all() {
        let job = UpcJob::new(UpcConfig::test_default(2, 1));
        let (stacks, locks) = StealStacks::allocate(&job, 16);
        job.run(move |upc| {
            let p = TreeParams::small_binomial(4);
            let mut kids = Vec::new();
            p.children(&p.root(), &mut kids);
            if upc.mythread() == 0 {
                locks[0].lock(&upc);
                stacks.release(&upc, &kids[..5]);
                locks[0].unlock(&upc);
            }
            upc.barrier();
            if upc.mythread() == 1 {
                locks[0].lock(&upc);
                let stolen = stacks.steal_locked(&upc, 0, 100);
                locks[0].unlock(&upc);
                assert_eq!(stolen.len(), 5);
                assert_eq!(stacks.probe(&upc, 0), 0);
            }
            upc.barrier();
        });
    }
}
