//! The parallel UTS driver: depth-first work on a private stack, work
//! release to the shared steal-stack, hierarchical stealing, and distributed
//! termination — the state machine of thesis Fig 3.2.

use std::collections::VecDeque;
use std::sync::Arc;

use hupc_groups::{GroupLevel, GroupSet};
use hupc_sim::{time, SimCell, Time};
use hupc_topo::MachineSpec;
use hupc_upc::{Conduit, FaultPlan, Upc, UpcConfig, UpcJob, UpcLock};

use crate::stealstack::StealStacks;
use crate::tree::{Node, TreeParams};

/// Victim-selection / transfer policy (the three curves of Fig 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealStrategy {
    /// Uniform random victims (the original UTS scheme).
    Random,
    /// Probe the local (intra-node) group first; go remote only when the
    /// group is dry (§3.3.2.1).
    LocalFirst,
    /// Local-first plus rapid diffusion: steal half the victim's available
    /// work when it is plentiful.
    LocalFirstRapid,
}

impl StealStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            StealStrategy::Random => "Baseline",
            StealStrategy::LocalFirst => "Local-stealing",
            StealStrategy::LocalFirstRapid => "Local-stealing + Rapid-diffusion",
        }
    }
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct UtsConfig {
    pub tree: TreeParams,
    pub machine: MachineSpec,
    pub threads: usize,
    pub nodes_used: usize,
    pub conduit: Conduit,
    pub strategy: StealStrategy,
    /// Nodes transferred per steal (thesis: 8 on InfiniBand, 20 on GigE).
    pub steal_granularity: usize,
    /// Modeled CPU time to process one tree node (SHA-1 + bookkeeping).
    pub node_work: Time,
    /// Nodes processed between scheduler interactions.
    pub batch: usize,
    /// Capacity of each thread's stealable region, in nodes.
    pub region_cap: usize,
    /// Optional fault plan (packet loss, jitter, stragglers). Steals that
    /// exhaust the retry budget are rerouted to another victim.
    pub fault: Option<FaultPlan>,
}

impl UtsConfig {
    /// The Fig 3.3 setup on `threads` cores of 16 Pyramid nodes.
    pub fn thesis(threads: usize, conduit: Conduit, strategy: StealStrategy) -> Self {
        let gran = match conduit.kind {
            hupc_net::ConduitKind::GigE => 20,
            _ => 8,
        };
        UtsConfig {
            tree: TreeParams::thesis_binomial(),
            machine: MachineSpec::pyramid().with_nodes(16),
            threads,
            nodes_used: 16,
            conduit,
            strategy,
            steal_granularity: gran,
            node_work: time::ns(350),
            batch: 64,
            region_cap: 512,
            fault: None,
        }
    }

    /// Small setup for tests.
    pub fn small(threads: usize, nodes: usize, strategy: StealStrategy, seed: u32) -> Self {
        UtsConfig {
            tree: TreeParams::small_binomial(seed),
            machine: MachineSpec::small_test(nodes),
            threads,
            nodes_used: nodes,
            conduit: Conduit::ib_qdr(),
            strategy,
            steal_granularity: 4,
            node_work: time::ns(450),
            batch: 16,
            region_cap: 64,
            fault: None,
        }
    }
}

/// Aggregated results + profiling counters (Table 3.2's inputs).
#[derive(Clone, Debug, Default)]
pub struct UtsResult {
    pub total_nodes: u64,
    pub max_depth: u64,
    pub leaves: u64,
    pub seconds: f64,
    pub mnodes_per_sec: f64,
    pub local_steals: u64,
    pub remote_steals: u64,
    pub local_probes: u64,
    pub remote_probes: u64,
    pub failed_steals: u64,
    pub releases: u64,
    /// Steal-path operations abandoned after the retry budget ran out
    /// (the thief moved on to another victim).
    pub comm_failures: u64,
}

impl UtsResult {
    /// Fraction of successful steals served within the thief's node group.
    pub fn local_steal_ratio(&self) -> f64 {
        let total = self.local_steals + self.remote_steals;
        if total == 0 {
            0.0
        } else {
            self.local_steals as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Stats {
    nodes: u64,
    max_depth: u64,
    leaves: u64,
    local_steals: u64,
    remote_steals: u64,
    local_probes: u64,
    remote_probes: u64,
    failed_steals: u64,
    releases: u64,
    comm_failures: u64,
}

/// xorshift64* — deterministic per-thread victim selection.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Run the parallel UTS; returns aggregated results (identical
/// `total_nodes` to [`crate::tree::sequential_traverse`] by construction).
pub fn run_uts(cfg: UtsConfig) -> UtsResult {
    run_uts_prepared(cfg, |_| {}).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_uts`], but calls `prepare` on the simulation kernel before
/// spawning the UPC threads (for installing a schedule-exploration policy or
/// an event log — see the `hupc-check` crate) and returns failures as typed
/// values: a perturbed interleaving that deadlocks or panics becomes an
/// `Err(SimError)` instead of aborting the caller.
pub fn run_uts_prepared(
    cfg: UtsConfig,
    prepare: impl FnOnce(&mut hupc_sim::Kernel),
) -> Result<UtsResult, hupc_sim::SimError> {
    let job = UpcJob::new(UpcConfig::standard(
        cfg.machine.clone(),
        cfg.threads,
        cfg.nodes_used,
        cfg.conduit.clone(),
        1 << 12,
        cfg.fault.clone(),
    ));
    let (stacks, locks) = StealStacks::allocate(&job, cfg.region_cap);
    // Termination words live on thread 0: [idle_count, done].
    let term_off = job.runtime().alloc_words(2);
    let term_lock = job.alloc_lock_at(0);
    let groups = Arc::new(GroupSet::partition(
        &mut job.kernel(),
        job.runtime(),
        GroupLevel::Node,
    ));
    // Termination stats and the start barrier go through the hierarchical
    // collective layer (group-staged allreduce/barrier on multi-node runs).
    hupc_coll::CollDomain::install_auto(&job);
    prepare(&mut job.kernel());

    let out: Arc<SimCell<UtsResult>> = Arc::new(SimCell::default());
    let out2 = Arc::clone(&out);
    let cfg = Arc::new(cfg);
    let cfg2 = Arc::clone(&cfg);

    job.run_result(move |upc| {
        let me = upc.mythread();
        let mut stats = Stats::default();
        let mut local: VecDeque<Node> = VecDeque::new();
        if me == 0 {
            local.push_back(cfg2.tree.root());
        }
        upc.staged_barrier();
        let t0 = upc.now();
        let mut rng = Rng::new((me as u64) << 32 | 0xC0FFEE);
        let mut kids = Vec::new();

        'outer: loop {
            if !local.is_empty() {
                work_batch(&upc, &cfg2, &mut local, &mut kids, &mut stats);
                maybe_release(&upc, &cfg2, &stacks, &locks, &mut local, &mut stats);
                continue;
            }
            // Private stack dry: reclaim our own shared region first.
            let own = locks[me];
            own.lock(&upc);
            let mut back = Vec::new();
            stacks.reacquire(&upc, &mut back);
            own.unlock(&upc);
            if !back.is_empty() {
                local.extend(back);
                continue;
            }
            // Optimistic sweep first: most dry spells end at the first
            // discovery round, without touching the global termination
            // state (whose lock lives on thread 0 and would serialize).
            let stolen = attempt_steal(
                &upc, &cfg2, &stacks, &locks, &groups, &mut rng, &mut stats,
            );
            if !stolen.is_empty() {
                local.extend(stolen);
                continue;
            }
            // Enter the idle protocol (Fig 3.2's discovery/stealing states).
            enter_idle(&upc, term_off, term_lock, cfg2.threads);
            loop {
                if is_done(&upc, term_off) {
                    break 'outer;
                }
                let stolen = attempt_steal(
                    &upc, &cfg2, &stacks, &locks, &groups, &mut rng, &mut stats,
                );
                if !stolen.is_empty() {
                    leave_idle(&upc, term_off, term_lock);
                    local.extend(stolen);
                    continue 'outer;
                }
                // Lazy polling backoff: consecutive empty probes coalesce
                // into one advance at the next steal attempt's kernel call.
                upc.ctx().advance_lazy(time::us(5));
            }
        }
        let dt = upc.now() - t0;

        // Aggregate (untimed reporting).
        let total = upc.allreduce_sum_u64(stats.nodes);
        let depth = upc.allreduce_max_u64(stats.max_depth);
        let leaves = upc.allreduce_sum_u64(stats.leaves);
        let ls = upc.allreduce_sum_u64(stats.local_steals);
        let rs = upc.allreduce_sum_u64(stats.remote_steals);
        let lp = upc.allreduce_sum_u64(stats.local_probes);
        let rp = upc.allreduce_sum_u64(stats.remote_probes);
        let fs = upc.allreduce_sum_u64(stats.failed_steals);
        let rel = upc.allreduce_sum_u64(stats.releases);
        let cf = upc.allreduce_sum_u64(stats.comm_failures);
        let dt_max = upc.allreduce_max_u64(dt);
        if me == 0 {
            let seconds = time::as_secs_f64(dt_max);
            out2.with_mut(|r| {
                *r = UtsResult {
                    total_nodes: total,
                    max_depth: depth,
                    leaves,
                    seconds,
                    mnodes_per_sec: total as f64 / seconds / 1e6,
                    local_steals: ls,
                    remote_steals: rs,
                    local_probes: lp,
                    remote_probes: rp,
                    failed_steals: fs,
                    releases: rel,
                    comm_failures: cf,
                }
            });
        }
    })?;
    Ok(Arc::try_unwrap(out).expect("result still shared").into_inner())
}

/// Process up to `batch` nodes depth-first; charge their compute once.
fn work_batch(
    upc: &Upc<'_>,
    cfg: &UtsConfig,
    local: &mut VecDeque<Node>,
    kids: &mut Vec<Node>,
    stats: &mut Stats,
) {
    let n = cfg.batch.min(local.len());
    for _ in 0..n {
        let node = local.pop_back().expect("checked non-empty");
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(node.depth as u64);
        cfg.tree.children(&node, kids);
        if kids.is_empty() {
            stats.leaves += 1;
        }
        local.extend(kids.drain(..));
    }
    upc.compute(cfg.node_work * n as u64);
}

/// Move surplus work (oldest nodes — the largest subtrees) to the shared
/// region when the private stack runs deep: everything beyond a 2-chunk
/// private reserve, as far as the region has room. Aggressive release is
/// what keeps thieves fed (the reference UTS releases on every interval).
fn maybe_release(
    upc: &Upc<'_>,
    cfg: &UtsConfig,
    stacks: &StealStacks,
    locks: &[UpcLock],
    local: &mut VecDeque<Node>,
    stats: &mut Stats,
) {
    let chunk = cfg.steal_granularity.max(4);
    if local.len() <= 2 * chunk {
        return;
    }
    let me = upc.mythread();
    let avail = stacks.my_avail(upc);
    let room = stacks.cap().saturating_sub(avail);
    let surplus = local.len() - 2 * chunk;
    let n = surplus.min(room);
    if n == 0 {
        return;
    }
    let release: Vec<Node> = local.drain(..n).collect();
    locks[me].lock(upc);
    let placed = stacks.release(upc, &release);
    locks[me].unlock(upc);
    stats.releases += 1;
    // Anything that did not fit goes back to the private stack's bottom.
    for n in release.into_iter().skip(placed).rev() {
        local.push_front(n);
    }
}

/// One steal round per the configured strategy. Empty result = round failed.
fn attempt_steal(
    upc: &Upc<'_>,
    cfg: &UtsConfig,
    stacks: &StealStacks,
    locks: &[UpcLock],
    groups: &GroupSet,
    rng: &mut Rng,
    stats: &mut Stats,
) -> Vec<Node> {
    let me = upc.mythread();
    match cfg.strategy {
        StealStrategy::Random => {
            // The reference UTS discovery: one full sweep of the peers,
            // linearly from MYTHREAD+1 (which is what gives the baseline its
            // residual intra-node steal ratio on blocked placements).
            for d in 1..cfg.threads {
                let victim = (me + d) % cfg.threads;
                if let Some(n) = try_victim(upc, cfg, stacks, locks, victim, false, stats) {
                    return n;
                }
            }
            Vec::new()
        }
        StealStrategy::LocalFirst | StealStrategy::LocalFirstRapid => {
            let rapid = cfg.strategy == StealStrategy::LocalFirstRapid;
            // Local work discovery: sweep the node group first (Fig 3.2).
            let group = groups.group_of(me);
            let peers = group.peers_of(me);
            let start = if peers.is_empty() { 0 } else { rng.pick(peers.len()) };
            for k in 0..peers.len() {
                let victim = peers[(start + k) % peers.len()];
                if let Some(n) = try_victim(upc, cfg, stacks, locks, victim, rapid, stats) {
                    return n;
                }
            }
            // Remote work discovery: sweep outsiders from a random start.
            let outsiders = groups.outsiders_of(me);
            if outsiders.is_empty() {
                return Vec::new();
            }
            let start = rng.pick(outsiders.len());
            for k in 0..outsiders.len() {
                let victim = outsiders[(start + k) % outsiders.len()];
                if let Some(n) = try_victim(upc, cfg, stacks, locks, victim, rapid, stats) {
                    return n;
                }
            }
            Vec::new()
        }
    }
}

/// Probe one victim; lock and transfer on success. A probe or transfer
/// that exhausts its retry budget (dead link, hopeless straggler) is
/// counted in `comm_failures` and treated as a failed round — the caller's
/// sweep simply moves on to the next victim.
fn try_victim(
    upc: &Upc<'_>,
    cfg: &UtsConfig,
    stacks: &StealStacks,
    locks: &[UpcLock],
    victim: usize,
    rapid: bool,
    stats: &mut Stats,
) -> Option<Vec<Node>> {
    let me = upc.mythread();
    let local_victim = upc.gasnet().castable(me, victim);
    // Group distance in node hops: 0 = same node, further apart = larger.
    #[cfg(feature = "trace")]
    let distance = {
        let g = upc.gasnet();
        (g.thread_node(me).0 as i64 - g.thread_node(victim).0 as i64).unsigned_abs()
    };
    #[cfg(feature = "trace")]
    {
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::StealAttempt, victim as u64, distance);
        upc.trace_count("uts.steal_attempts", 1);
        upc.trace_observe("uts.probe_distance", distance);
    }
    if local_victim {
        stats.local_probes += 1;
    } else {
        stats.remote_probes += 1;
    }
    let avail = match stacks.try_probe(upc, victim) {
        Ok(n) => n,
        Err(_) => {
            stats.comm_failures += 1;
            return None;
        }
    };
    if avail == 0 {
        return None;
    }
    let want = if rapid && avail >= 2 * cfg.steal_granularity {
        avail / 2
    } else {
        cfg.steal_granularity.min(avail)
    };
    locks[victim].lock(upc);
    let stolen = stacks.try_steal_locked(upc, victim, want);
    locks[victim].unlock(upc);
    let stolen = match stolen {
        Ok(s) => s,
        Err(_) => {
            stats.comm_failures += 1;
            stats.failed_steals += 1;
            return None;
        }
    };
    if stolen.is_empty() {
        stats.failed_steals += 1;
        return None;
    }
    if local_victim {
        stats.local_steals += 1;
    } else {
        stats.remote_steals += 1;
    }
    #[cfg(feature = "trace")]
    {
        upc.ctx()
            .trace_emit(hupc_trace::EventKind::StealSuccess, victim as u64, distance);
        upc.trace_count("uts.steals", 1);
        upc.trace_count(
            if distance == 0 { "uts.steals_local" } else { "uts.steals_remote" },
            1,
        );
        upc.trace_observe("uts.steal_distance", distance);
        upc.trace_observe("uts.steal_size", stolen.len() as u64);
    }
    Some(stolen)
}

// ----- distributed termination (idle counting on thread 0) -----------------

fn enter_idle(upc: &Upc<'_>, term_off: usize, term_lock: UpcLock, threads: usize) {
    term_lock.lock(upc);
    let mut w = [0u64];
    upc.memget(0, term_off, &mut w);
    let idle = w[0] + 1;
    upc.memput(0, term_off, &[idle]);
    if idle as usize == threads {
        upc.memput(0, term_off + 1, &[1]);
    }
    term_lock.unlock(upc);
}

fn leave_idle(upc: &Upc<'_>, term_off: usize, term_lock: UpcLock) {
    term_lock.lock(upc);
    let mut w = [0u64];
    upc.memget(0, term_off, &mut w);
    upc.memput(0, term_off, &[w[0] - 1]);
    term_lock.unlock(upc);
}

fn is_done(upc: &Upc<'_>, term_off: usize) -> bool {
    let mut w = [0u64];
    upc.memget(0, term_off + 1, &mut w);
    w[0] == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::sequential_traverse;

    #[test]
    fn parallel_count_matches_sequential() {
        let seq = sequential_traverse(&TreeParams::small_binomial(5));
        for strategy in [
            StealStrategy::Random,
            StealStrategy::LocalFirst,
            StealStrategy::LocalFirstRapid,
        ] {
            let r = run_uts(UtsConfig::small(4, 2, strategy, 5));
            assert_eq!(r.total_nodes, seq.0, "{strategy:?}");
            assert_eq!(r.max_depth, seq.1 as u64, "{strategy:?}");
            assert_eq!(r.leaves, seq.2, "{strategy:?}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_tree() {
        let seq = sequential_traverse(&TreeParams::small_binomial(8));
        for threads in [1, 2, 6] {
            let nodes = if threads == 1 { 1 } else { 2 };
            let r = run_uts(UtsConfig::small(threads, nodes, StealStrategy::LocalFirst, 8));
            assert_eq!(r.total_nodes, seq.0, "threads={threads}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_uts(UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 6));
        let b = run_uts(UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 6));
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.local_steals, b.local_steals);
        assert_eq!(a.remote_steals, b.remote_steals);
    }

    #[test]
    fn local_first_raises_local_ratio() {
        let base = run_uts(UtsConfig::small(8, 2, StealStrategy::Random, 12));
        let opt = run_uts(UtsConfig::small(8, 2, StealStrategy::LocalFirst, 12));
        assert!(
            opt.local_steal_ratio() >= base.local_steal_ratio(),
            "opt {:.2} vs base {:.2}",
            opt.local_steal_ratio(),
            base.local_steal_ratio()
        );
    }

    #[test]
    fn lossy_gige_still_counts_the_whole_tree() {
        // The ISSUE acceptance scenario: UTS on GigE with 2% injected
        // packet loss completes with the correct tree-node count.
        let seq = sequential_traverse(&TreeParams::small_binomial(5));
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirst, 5);
        cfg.conduit = Conduit::gige();
        cfg.fault = Some(FaultPlan::new(0xFA17).loss(0.02));
        let r = run_uts(cfg);
        assert_eq!(r.total_nodes, seq.0);
        assert_eq!(r.max_depth, seq.1 as u64);
        assert_eq!(r.leaves, seq.2);
    }

    #[test]
    fn identity_fault_plan_is_byte_identical() {
        let base = run_uts(UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 6));
        let mut cfg = UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 6);
        cfg.fault = Some(FaultPlan::new(99));
        let r = run_uts(cfg);
        assert_eq!(r.seconds, base.seconds);
        assert_eq!(r.local_steals, base.local_steals);
        assert_eq!(r.remote_steals, base.remote_steals);
        assert_eq!(r.releases, base.releases);
        assert_eq!(r.comm_failures, 0);
    }

    #[test]
    fn dead_link_reroutes_steals() {
        // Nodes 1 and 2 cannot reach each other; all their traffic must
        // route through stealing via node 0's threads. The run still
        // terminates with the full count, and the failed probes show up
        // in the comm_failures counter.
        let seq = sequential_traverse(&TreeParams::small_binomial(7));
        let mut cfg = UtsConfig::small(6, 3, StealStrategy::Random, 7);
        cfg.fault = Some(
            FaultPlan::new(1)
                .link_loss(1, 2, 1.0)
                .link_loss(2, 1, 1.0),
        );
        let r = run_uts(cfg);
        assert_eq!(r.total_nodes, seq.0);
        assert!(r.comm_failures > 0, "expected failed probes over the dead link");
    }

    #[test]
    fn work_actually_parallelizes() {
        let r1 = run_uts(UtsConfig::small(1, 1, StealStrategy::Random, 5));
        let r4 = run_uts(UtsConfig::small(4, 2, StealStrategy::LocalFirstRapid, 5));
        assert!(
            r4.seconds < r1.seconds,
            "4 threads {} vs 1 thread {}",
            r4.seconds,
            r1.seconds
        );
    }
}
