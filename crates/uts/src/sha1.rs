//! SHA-1 (RFC 3174), implemented from scratch.
//!
//! The UTS benchmark derives its tree deterministically from SHA-1: every
//! node carries a 20-byte digest, and child `i`'s descriptor is
//! `SHA1(parent_digest ‖ i)`. The same construction is used here so tree
//! shapes are reproducible bit-for-bit across thread counts and stealing
//! strategies. (SHA-1's cryptographic weakness is irrelevant — it is a
//! splittable PRNG in this role, exactly as in the reference UTS code.)

/// A 20-byte SHA-1 digest.
pub type Digest = [u8; 20];

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = H0;
    let ml = (data.len() as u64) * 8;

    // Process complete input + padding, block by block without allocating
    // the padded message.
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for c in chunks.by_ref() {
        block.copy_from_slice(c);
        compress(&mut h, &block);
    }
    let rem = chunks.remainder();
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    for b in block.iter_mut().skip(rem.len() + 1) {
        *b = 0;
    }
    if rem.len() + 1 > 56 {
        compress(&mut h, &block);
        block = [0u8; 64];
    }
    block[56..64].copy_from_slice(&ml.to_be_bytes());
    compress(&mut h, &block);

    let mut out = [0u8; 20];
    for (i, w) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, c) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i / 20 {
            0 => ((b & c) | ((!b) & d), 0x5A827999u32),
            1 => (b ^ c ^ d, 0x6ED9EBA1),
            2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Digest of a parent digest plus a 32-bit child index (the UTS child
/// derivation).
pub fn sha1_child(parent: &Digest, child: u32) -> Digest {
    let mut buf = [0u8; 24];
    buf[..20].copy_from_slice(parent);
    buf[20..].copy_from_slice(&child.to_be_bytes());
    sha1(&buf)
}

// ----- batched child derivation ---------------------------------------------
//
// The 24-byte child message `parent ‖ i` is exactly one padded SHA-1 block
// in which only schedule word w5 (the child index) varies between siblings:
// w0..w4 hold the parent digest, w6 = 0x80000000 (the padding bit),
// w7..w14 = 0, and w15 = 192 (the message bit length). A batch therefore
// shares one message template per parent and precomputes the compression
// state after rounds 0..=4 — the last rounds whose inputs (w0..w4) are
// child-independent. Per child only rounds 5..=79 run, fully unrolled with
// the 16-word rolling schedule kept in registers instead of a [u32; 80]
// spill and with the per-round `i / 20` dispatch of [`compress`] folded
// away. On x86-64, groups of four siblings additionally run lane-parallel
// through SSE2 (multi-buffer hashing — the chains are independent and
// identically structured, so one vector instruction serves four children).
// Bit-identical to `sha1_child` (pinned by tests + a proptest).

const K: [u32; 4] = [0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6];

macro_rules! rnd {
    ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident, $f:expr, $k:expr, $wi:expr) => {{
        let t = $a
            .rotate_left(5)
            .wrapping_add($f)
            .wrapping_add($e)
            .wrapping_add($k)
            .wrapping_add($wi);
        $e = $d;
        $d = $c;
        $c = $b.rotate_left(30);
        $b = $a;
        $a = t;
    }};
}

/// `w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16])` on a 16-word ring.
macro_rules! wnext {
    ($w:ident, $i:expr) => {{
        let v = ($w[($i + 13) & 15] ^ $w[($i + 8) & 15] ^ $w[($i + 2) & 15] ^ $w[$i & 15])
            .rotate_left(1);
        $w[$i & 15] = v;
        v
    }};
}

/// Reusable per-parent template for deriving many children of one node.
#[derive(Clone, Copy, Debug)]
pub struct ChildHasher {
    /// One padded block; `w[5]` is patched with the child index per call.
    w: [u32; 16],
    /// Compression state after rounds 0..=4 (child-independent prefix).
    mid: [u32; 5],
    /// Schedule words w16..=w18 — the expansions whose taps (w0..w4 and the
    /// padding constants) are all child-independent; w19 is the first to
    /// involve w5.
    w16: [u32; 3],
}

impl ChildHasher {
    pub fn new(parent: &Digest) -> Self {
        let mut w = [0u32; 16];
        for (wi, c) in w.iter_mut().zip(parent.chunks_exact(4)) {
            *wi = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        w[6] = 0x8000_0000;
        w[15] = 24 * 8;
        let [mut a, mut b, mut c, mut d, mut e] = H0;
        for &wi in w.iter().take(5) {
            rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], wi);
        }
        let w16 = [
            (w[13] ^ w[8] ^ w[2] ^ w[0]).rotate_left(1),
            (w[14] ^ w[9] ^ w[3] ^ w[1]).rotate_left(1),
            (w[15] ^ w[10] ^ w[4] ^ w[2]).rotate_left(1),
        ];
        ChildHasher { w, mid: [a, b, c, d, e], w16 }
    }

    /// `SHA1(parent ‖ index)`, sharing the precomputed prefix.
    #[inline]
    pub fn child(&self, index: u32) -> Digest {
        let mut w = self.w;
        w[5] = index;
        let [mut a, mut b, mut c, mut d, mut e] = self.mid;
        // Rounds 5..=15 — every schedule word here is a known padding
        // constant except w5, so spell them out and let the zero adds fold.
        rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], index);
        rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], 0x8000_0000u32);
        for _ in 7..15 {
            rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], 0u32);
        }
        rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], 24 * 8);
        // Rounds 16..=18 use the parent-precomputed expansions; the ring
        // slots still need the stores for the rolling schedule from 19 on.
        for i in 16..19 {
            let wi = self.w16[i - 16];
            w[i & 15] = wi;
            rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], wi);
        }
        {
            let wi = wnext!(w, 19);
            rnd!(a, b, c, d, e, (b & c) | (!b & d), K[0], wi);
        }
        for i in 20..40 {
            let wi = wnext!(w, i);
            rnd!(a, b, c, d, e, b ^ c ^ d, K[1], wi);
        }
        for i in 40..60 {
            let wi = wnext!(w, i);
            rnd!(a, b, c, d, e, (b & c) | (b & d) | (c & d), K[2], wi);
        }
        for i in 60..80 {
            let wi = wnext!(w, i);
            rnd!(a, b, c, d, e, b ^ c ^ d, K[3], wi);
        }
        let h = [
            H0[0].wrapping_add(a),
            H0[1].wrapping_add(b),
            H0[2].wrapping_add(c),
            H0[3].wrapping_add(d),
            H0[4].wrapping_add(e),
        ];
        let mut out = [0u8; 20];
        for (o, word) in out.chunks_exact_mut(4).zip(h) {
            o.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Four consecutive siblings `i0..i0+4` at once. On x86-64 the four
    /// (independent, identically-structured) compression chains run one per
    /// 32-bit SSE2 lane — multi-buffer hashing — so the per-round work is
    /// shared across all four children. Elsewhere this is four `child`
    /// calls. Bit-identical to `child` either way (lane ops are exact u32
    /// arithmetic).
    #[inline]
    pub fn child4(&self, i0: u32) -> [Digest; 4] {
        #[cfg(target_arch = "x86_64")]
        {
            // SSE2 is part of the x86-64 baseline: no runtime detection
            // needed, the intrinsics are unconditionally available.
            unsafe { self.child4_sse2(i0) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            [
                self.child(i0),
                self.child(i0 + 1),
                self.child(i0 + 2),
                self.child(i0 + 3),
            ]
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn child4_sse2(&self, i0: u32) -> [Digest; 4] {
        use std::arch::x86_64::*;

        #[inline(always)]
        unsafe fn rotl<const L: i32, const R: i32>(x: __m128i) -> __m128i {
            _mm_or_si128(_mm_slli_epi32(x, L), _mm_srli_epi32(x, R))
        }
        #[inline(always)]
        unsafe fn add(a: __m128i, b: __m128i) -> __m128i {
            _mm_add_epi32(a, b)
        }
        /// One SHA-1 round on four lane-parallel states (`f` precomputed).
        #[inline(always)]
        unsafe fn round4(s: &mut [__m128i; 5], f: __m128i, k: __m128i, wi: __m128i) {
            let t = add(add(rotl::<5, 27>(s[0]), f), add(s[4], add(k, wi)));
            s[4] = s[3];
            s[3] = s[2];
            s[2] = rotl::<30, 2>(s[1]);
            s[1] = s[0];
            s[0] = t;
        }
        #[inline(always)]
        unsafe fn bc(x: u32) -> __m128i {
            _mm_set1_epi32(x as i32)
        }
        // ch(b,c,d) = (b & c) | (!b & d) == d ^ (b & (c ^ d))
        #[inline(always)]
        unsafe fn ch(b: __m128i, c: __m128i, d: __m128i) -> __m128i {
            _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d)))
        }
        #[inline(always)]
        unsafe fn parity(b: __m128i, c: __m128i, d: __m128i) -> __m128i {
            _mm_xor_si128(_mm_xor_si128(b, c), d)
        }
        // maj(b,c,d) = (b & c) | (d & (b ^ c))
        #[inline(always)]
        unsafe fn maj(b: __m128i, c: __m128i, d: __m128i) -> __m128i {
            _mm_or_si128(_mm_and_si128(b, c), _mm_and_si128(d, _mm_xor_si128(b, c)))
        }

        macro_rules! r4 {
            ($s:ident, $f:ident, $k:expr, $wi:expr) => {{
                let f = $f($s[1], $s[2], $s[3]);
                round4(&mut $s, f, $k, $wi);
            }};
        }
        macro_rules! w4 {
            ($w:ident, $i:expr) => {{
                let v = rotl::<1, 31>(_mm_xor_si128(
                    _mm_xor_si128($w[($i + 13) & 15], $w[($i + 8) & 15]),
                    _mm_xor_si128($w[($i + 2) & 15], $w[$i & 15]),
                ));
                $w[$i & 15] = v;
                v
            }};
        }

        // Broadcast the template; lane L of w5 is child i0 + L.
        let mut w = [_mm_setzero_si128(); 16];
        for (slot, &word) in w.iter_mut().zip(self.w.iter()) {
            *slot = bc(word);
        }
        w[5] = _mm_set_epi32(
            (i0 + 3) as i32,
            (i0 + 2) as i32,
            (i0 + 1) as i32,
            i0 as i32,
        );
        let mut s = [
            bc(self.mid[0]),
            bc(self.mid[1]),
            bc(self.mid[2]),
            bc(self.mid[3]),
            bc(self.mid[4]),
        ];
        let k0 = bc(K[0]);
        let zero = _mm_setzero_si128();

        // Rounds 5..=15: the padding constants, as in `child`.
        r4!(s, ch, k0, w[5]);
        r4!(s, ch, k0, bc(0x8000_0000));
        for _ in 7..15 {
            r4!(s, ch, k0, zero);
        }
        r4!(s, ch, k0, bc(24 * 8));
        for i in 16..19 {
            let wi = bc(self.w16[i - 16]);
            w[i & 15] = wi;
            r4!(s, ch, k0, wi);
        }
        {
            let wi = w4!(w, 19);
            r4!(s, ch, k0, wi);
        }
        let k1 = bc(K[1]);
        for i in 20..40 {
            let wi = w4!(w, i);
            r4!(s, parity, k1, wi);
        }
        let k2 = bc(K[2]);
        for i in 40..60 {
            let wi = w4!(w, i);
            r4!(s, maj, k2, wi);
        }
        let k3 = bc(K[3]);
        for i in 60..80 {
            let wi = w4!(w, i);
            r4!(s, parity, k3, wi);
        }

        // lanes[word][lane]: final h-words per child.
        let mut lanes = [[0u32; 4]; 5];
        for (row, (v, h0)) in lanes.iter_mut().zip(s.into_iter().zip(H0)) {
            _mm_storeu_si128(row.as_mut_ptr() as *mut __m128i, add(v, bc(h0)));
        }
        let mut out = [[0u8; 20]; 4];
        for (lane, digest) in out.iter_mut().enumerate() {
            for (bytes, row) in digest.chunks_exact_mut(4).zip(&lanes) {
                bytes.copy_from_slice(&row[lane].to_be_bytes());
            }
        }
        out
    }
}

/// Derive children `lo..hi` of `parent` in one batch, calling
/// `emit(index, digest)` for each. Equivalent to `sha1_child` per index but
/// amortizes the message template and round-0..4 prefix across the batch and
/// runs groups of four siblings through the SIMD lanes of [`ChildHasher::child4`].
pub fn sha1_children(parent: &Digest, children: std::ops::Range<u32>, mut emit: impl FnMut(u32, Digest)) {
    let h = ChildHasher::new(parent);
    let mut i = children.start;
    while children.end.saturating_sub(i) >= 4 {
        for (k, d) in h.child4(i).into_iter().enumerate() {
            emit(i + k as u32, d);
        }
        i += 4;
    }
    while i < children.end {
        emit(i, h.child(i));
        i += 1;
    }
}

/// Interpret the first 4 digest bytes as a uniform value in `[0, 1)`.
pub fn unit_interval(d: &Digest) -> f64 {
    let v = u32::from_be_bytes([d[0], d[1], d[2], d[3]]);
    v as f64 / (u32::MAX as f64 + 1.0)
}

#[cfg(test)]
fn hex(d: &Digest) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3174_test_vectors() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65] {
            let msg = vec![0x5au8; len];
            let d = sha1(&msg);
            // compare against a second, allocation-based reference padding
            assert_eq!(d, sha1_reference(&msg), "len {len}");
        }
    }

    /// Naive reference: build the padded message explicitly.
    fn sha1_reference(data: &[u8]) -> Digest {
        let mut m = data.to_vec();
        let ml = (data.len() as u64) * 8;
        m.push(0x80);
        while m.len() % 64 != 56 {
            m.push(0);
        }
        m.extend_from_slice(&ml.to_be_bytes());
        let mut h = H0;
        for c in m.chunks_exact(64) {
            let mut block = [0u8; 64];
            block.copy_from_slice(c);
            compress(&mut h, &block);
        }
        let mut out = [0u8; 20];
        for (i, w) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    #[test]
    fn batched_children_match_scalar() {
        let mut parent = sha1(b"batch-parent");
        for round in 0..8 {
            let mut got = Vec::new();
            sha1_children(&parent, 0..50, |i, d| got.push((i, d)));
            assert_eq!(got.len(), 50);
            for (i, d) in &got {
                assert_eq!(*d, sha1_child(&parent, *i), "round {round} child {i}");
            }
            // also sub-ranges away from zero
            let h = ChildHasher::new(&parent);
            for i in [7u32, 1 << 20, u32::MAX] {
                assert_eq!(h.child(i), sha1_child(&parent, i));
            }
            parent = got[round].1;
        }
    }

    #[test]
    fn child_derivation_is_deterministic_and_distinct() {
        let root = sha1(b"root");
        let c0 = sha1_child(&root, 0);
        let c1 = sha1_child(&root, 1);
        assert_ne!(c0, c1);
        assert_eq!(c0, sha1_child(&root, 0));
    }

    #[test]
    fn unit_interval_in_range() {
        let d = sha1(b"x");
        let u = unit_interval(&d);
        assert!((0.0..1.0).contains(&u));
    }
}
