//! SHA-1 (RFC 3174), implemented from scratch.
//!
//! The UTS benchmark derives its tree deterministically from SHA-1: every
//! node carries a 20-byte digest, and child `i`'s descriptor is
//! `SHA1(parent_digest ‖ i)`. The same construction is used here so tree
//! shapes are reproducible bit-for-bit across thread counts and stealing
//! strategies. (SHA-1's cryptographic weakness is irrelevant — it is a
//! splittable PRNG in this role, exactly as in the reference UTS code.)

/// A 20-byte SHA-1 digest.
pub type Digest = [u8; 20];

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = H0;
    let ml = (data.len() as u64) * 8;

    // Process complete input + padding, block by block without allocating
    // the padded message.
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for c in chunks.by_ref() {
        block.copy_from_slice(c);
        compress(&mut h, &block);
    }
    let rem = chunks.remainder();
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    for b in block.iter_mut().skip(rem.len() + 1) {
        *b = 0;
    }
    if rem.len() + 1 > 56 {
        compress(&mut h, &block);
        block = [0u8; 64];
    }
    block[56..64].copy_from_slice(&ml.to_be_bytes());
    compress(&mut h, &block);

    let mut out = [0u8; 20];
    for (i, w) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, c) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i / 20 {
            0 => ((b & c) | ((!b) & d), 0x5A827999u32),
            1 => (b ^ c ^ d, 0x6ED9EBA1),
            2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Digest of a parent digest plus a 32-bit child index (the UTS child
/// derivation).
pub fn sha1_child(parent: &Digest, child: u32) -> Digest {
    let mut buf = [0u8; 24];
    buf[..20].copy_from_slice(parent);
    buf[20..].copy_from_slice(&child.to_be_bytes());
    sha1(&buf)
}

/// Interpret the first 4 digest bytes as a uniform value in `[0, 1)`.
pub fn unit_interval(d: &Digest) -> f64 {
    let v = u32::from_be_bytes([d[0], d[1], d[2], d[3]]);
    v as f64 / (u32::MAX as f64 + 1.0)
}

#[cfg(test)]
fn hex(d: &Digest) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3174_test_vectors() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65] {
            let msg = vec![0x5au8; len];
            let d = sha1(&msg);
            // compare against a second, allocation-based reference padding
            assert_eq!(d, sha1_reference(&msg), "len {len}");
        }
    }

    /// Naive reference: build the padded message explicitly.
    fn sha1_reference(data: &[u8]) -> Digest {
        let mut m = data.to_vec();
        let ml = (data.len() as u64) * 8;
        m.push(0x80);
        while m.len() % 64 != 56 {
            m.push(0);
        }
        m.extend_from_slice(&ml.to_be_bytes());
        let mut h = H0;
        for c in m.chunks_exact(64) {
            let mut block = [0u8; 64];
            block.copy_from_slice(c);
            compress(&mut h, &block);
        }
        let mut out = [0u8; 20];
        for (i, w) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    #[test]
    fn child_derivation_is_deterministic_and_distinct() {
        let root = sha1(b"root");
        let c0 = sha1_child(&root, 0);
        let c1 = sha1_child(&root, 1);
        assert_ne!(c0, c1);
        assert_eq!(c0, sha1_child(&root, 0));
    }

    #[test]
    fn unit_interval_in_range() {
        let d = sha1(b"x");
        let u = unit_interval(&d);
        assert!((0.0..1.0).contains(&u));
    }
}
