//! `hupc-uts` — the Unbalanced Tree Search benchmark (thesis §3.3.2).
//!
//! UTS counts the nodes of an unpredictable, deterministic tree: each node's
//! descriptor is a SHA-1 digest and its children derive from it, so the tree
//! is identical for any thread count, schedule or stealing strategy — which
//! makes the benchmark a pure test of *dynamic load balancing*.
//!
//! The parallel driver follows the UPC implementation the thesis builds on:
//! private depth-first stacks, a stealable region per thread in the PGAS
//! ([`StealStacks`]), and work stealing in the Fig 3.2 state machine, with
//! the thesis' two optimizations as selectable [`StealStrategy`]s:
//! locality-conscious (group-first) victim selection, and rapid diffusion
//! (steal-half).
//!
//! Node counts are validated against [`sequential_traverse`]; runs are
//! bit-deterministic.

mod sha1;
mod stealstack;
mod tree;
mod worker;

pub use sha1::{sha1, sha1_child, sha1_children, ChildHasher, Digest};
pub use stealstack::StealStacks;
pub use tree::{sequential_traverse, Node, TreeParams};
pub use worker::{run_uts, run_uts_prepared, StealStrategy, UtsConfig, UtsResult};
