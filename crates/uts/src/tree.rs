//! UTS tree definition: node descriptors and deterministic child generation.
//!
//! Two shapes from the UTS suite:
//!
//! * **Binomial** — the root has `b0` children; every other node has `m`
//!   children with probability `q` and none otherwise (`m·q < 1` keeps the
//!   tree finite). This is the highly unbalanced shape the thesis' Fig 3.3
//!   and Table 3.2 use (≈4.1 million nodes).
//! * **Geometric** — branching factor drawn geometrically, bounded depth.

use crate::sha1::{sha1, sha1_children, unit_interval, Digest};

/// Tree shape parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeParams {
    Binomial {
        /// Root branching factor.
        b0: u32,
        /// Non-root branching factor.
        m: u32,
        /// Probability a non-root node has children.
        q: f64,
        /// Root seed.
        seed: u32,
    },
    Geometric {
        /// Expected branching factor at the root.
        b0: f64,
        /// Maximum depth.
        depth: u32,
        /// Root seed.
        seed: u32,
    },
}

impl TreeParams {
    /// The thesis' Fig 3.3 / Table 3.2 tree: a binomial tree of ≈4.1 million
    /// nodes ("The binomial tree used in our tests has total 4.1 million
    /// nodes"). Seed 34 yields 4,065,321 nodes at depth 1308.
    pub fn thesis_binomial() -> TreeParams {
        TreeParams::Binomial {
            b0: 2000,
            m: 8,
            q: 0.124875,
            seed: 34,
        }
    }

    /// A small binomial tree (thousands of nodes) for tests.
    pub fn small_binomial(seed: u32) -> TreeParams {
        TreeParams::Binomial {
            b0: 60,
            m: 4,
            q: 0.23,
            seed,
        }
    }

    /// A small geometric tree for tests.
    pub fn small_geometric(seed: u32) -> TreeParams {
        TreeParams::Geometric {
            b0: 3.0,
            depth: 8,
            seed,
        }
    }

    /// The root node.
    pub fn root(&self) -> Node {
        let seed = match self {
            TreeParams::Binomial { seed, .. } | TreeParams::Geometric { seed, .. } => *seed,
        };
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(b"UTS\0");
        buf[4..].copy_from_slice(&seed.to_be_bytes());
        Node {
            digest: sha1(&buf),
            depth: 0,
        }
    }

    /// Number of children of `node`.
    pub fn num_children(&self, node: &Node) -> u32 {
        match self {
            TreeParams::Binomial { b0, m, q, .. } => {
                if node.depth == 0 {
                    *b0
                } else if unit_interval(&node.digest) < *q {
                    *m
                } else {
                    0
                }
            }
            TreeParams::Geometric { b0, depth, .. } => {
                if node.depth >= *depth {
                    return 0;
                }
                // Branching factor shrinks linearly with depth (UTS "linear"
                // geometric shape).
                let b_i = b0 * (1.0 - node.depth as f64 / *depth as f64);
                let u = unit_interval(&node.digest);
                // Geometric sample with mean b_i (p = 1/(1+b_i)).
                let p = 1.0 / (1.0 + b_i.max(0.0));
                (u.ln() / (1.0 - p).ln()).floor() as u32
            }
        }
    }

    /// Generate the children of `node` into `out` (cleared first). Interior
    /// expansion runs the batched hasher: one message template + round
    /// prefix per parent instead of a full `sha1` per child.
    pub fn children(&self, node: &Node, out: &mut Vec<Node>) {
        out.clear();
        let n = self.num_children(node);
        out.reserve(n as usize);
        let depth = node.depth + 1;
        sha1_children(&node.digest, 0..n, |_, digest| {
            out.push(Node { digest, depth });
        });
    }
}

/// A tree node descriptor: 20-byte SHA-1 state plus depth. Packs into 3
/// PGAS words for steal-stack storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Node {
    pub digest: Digest,
    pub depth: u32,
}

impl Node {
    /// Words a node occupies in shared memory.
    pub const WORDS: usize = 3;

    pub fn to_words(&self) -> [u64; 3] {
        let d = &self.digest;
        let w0 = u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
        let w1 = u64::from_be_bytes([d[8], d[9], d[10], d[11], d[12], d[13], d[14], d[15]]);
        let w2 = (u64::from(u32::from_be_bytes([d[16], d[17], d[18], d[19]])) << 32)
            | u64::from(self.depth);
        [w0, w1, w2]
    }

    pub fn from_words(w: &[u64]) -> Node {
        let mut digest = [0u8; 20];
        digest[..8].copy_from_slice(&w[0].to_be_bytes());
        digest[8..16].copy_from_slice(&w[1].to_be_bytes());
        digest[16..20].copy_from_slice(&(((w[2] >> 32) as u32).to_be_bytes()));
        Node {
            digest,
            depth: w[2] as u32,
        }
    }
}

/// Sequential traversal: `(total_nodes, max_depth, leaves)`. The reference
/// every parallel run must agree with.
pub fn sequential_traverse(params: &TreeParams) -> (u64, u32, u64) {
    let mut stack = vec![params.root()];
    let mut total = 0u64;
    let mut max_depth = 0u32;
    let mut leaves = 0u64;
    let mut kids = Vec::new();
    while let Some(node) = stack.pop() {
        total += 1;
        max_depth = max_depth.max(node.depth);
        params.children(&node, &mut kids);
        if kids.is_empty() {
            leaves += 1;
        }
        stack.append(&mut kids);
    }
    (total, max_depth, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_word_round_trip() {
        let p = TreeParams::small_binomial(7);
        let mut kids = Vec::new();
        p.children(&p.root(), &mut kids);
        for n in &kids {
            let w = n.to_words();
            assert_eq!(Node::from_words(&w), *n);
        }
    }

    #[test]
    fn sequential_traverse_is_deterministic() {
        let p = TreeParams::small_binomial(3);
        let a = sequential_traverse(&p);
        let b = sequential_traverse(&p);
        assert_eq!(a, b);
        assert!(a.0 > 60, "tree should exceed the root fanout, got {}", a.0);
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let a = sequential_traverse(&TreeParams::small_binomial(1));
        let b = sequential_traverse(&TreeParams::small_binomial(2));
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn binomial_root_has_b0_children() {
        let p = TreeParams::small_binomial(5);
        let root = p.root();
        assert_eq!(p.num_children(&root), 60);
    }

    #[test]
    fn geometric_tree_respects_depth_bound() {
        let p = TreeParams::small_geometric(11);
        let (total, depth, leaves) = sequential_traverse(&p);
        assert!(depth <= 8);
        assert!(total >= 1);
        assert!(leaves >= 1);
    }

    #[test]
    fn leaves_plus_internals_account_for_all() {
        let p = TreeParams::small_binomial(9);
        let (total, _, leaves) = sequential_traverse(&p);
        // binomial: every internal non-root node has exactly m children
        assert!(leaves < total);
        assert!(leaves > total / 2); // q < 1/2 ⇒ most nodes are leaves
    }
}
