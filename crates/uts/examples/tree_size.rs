//! Report the size/depth of UTS trees for a range of seeds — how the
//! thesis' ≈4.1-million-node tree (seed 34) was selected.
//!
//! Run with `cargo run --release -p hupc-uts --example tree_size`.

use hupc_uts::{sequential_traverse, TreeParams};

fn main() {
    println!("binomial trees, b0=2000 m=8 q=0.124875:");
    for seed in [1u32, 14, 16, 25, 33, 34, 35] {
        let p = TreeParams::Binomial {
            b0: 2000,
            m: 8,
            q: 0.124875,
            seed,
        };
        let (total, depth, leaves) = sequential_traverse(&p);
        let mark = if seed == 34 { "  <- thesis tree (~4.1M)" } else { "" };
        println!("  seed {seed:3}: {total:9} nodes, depth {depth:5}, {leaves:9} leaves{mark}");
    }
}
