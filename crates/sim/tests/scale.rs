//! Actor-count scale smoke tests for the coroutine core.
//!
//! These are tier-1 (plain `cargo test`) pins on the scale properties the
//! lightweight-actor refactor exists for: a hundred thousand simultaneously
//! live actors spawn, synchronize, and tear down in a debug build without
//! exhausting memory or kernel limits (the old one-OS-thread-per-actor
//! engine capped out around a few thousand). The million-actor run lives in
//! the perf-smoke benchmark (`hupc-bench simcore`), not here, to keep tier-1
//! fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hupc_sim::{time, ActorBackend, Simulation};

/// 100k live actors arrive at one barrier, then all tear down. Exercises:
/// mass registration, lazy context creation at first dispatch, a
/// 100k-party release wave through the near bucket, and stack reclamation.
#[test]
fn hundred_thousand_actors_spawn_barrier_teardown() {
    let n: usize = 100_000;
    let mut sim = Simulation::new();
    // These counts only work on the coroutine backend — pin it so the
    // `thread-actors` CI lane doesn't try to spawn 100k OS threads.
    sim.set_actor_backend(ActorBackend::Coroutine);
    // Small explicit stacks: the bodies below need a few KB, and 100k of
    // them must not dominate the test runner's memory.
    sim.set_stack_size(32 * 1024);
    let bar = sim.kernel().new_barrier(n);
    for i in 0..n {
        sim.spawn(format!("a{i}"), move |ctx| {
            ctx.advance(time::ns((i % 64) as u64));
            ctx.barrier_wait(bar);
            ctx.advance(time::ns(1));
        });
    }
    let stats = sim.run();
    assert_eq!(stats.actors, n);
    // Barrier releases at the max arrival (63ns); everyone then advances 1ns.
    assert_eq!(stats.end_time, time::ns(64));
}

/// A budget-driven dynamic spawn tree (the shape of an unbalanced tree
/// search): each actor claims work from a shared budget and spawns up to two
/// children while any remains. Exercises staged spawning from running
/// actors at depth and the finished-stack pool (live stacks stay bounded by
/// the frontier, not the total actor count).
#[test]
fn fifty_thousand_actor_dynamic_spawn_tree() {
    const TOTAL: u64 = 50_000;
    let budget = Arc::new(AtomicU64::new(TOTAL - 1)); // root is actor 0
    let visited = Arc::new(AtomicU64::new(0));

    fn node(
        ctx: &hupc_sim::Ctx,
        depth: u64,
        budget: &Arc<AtomicU64>,
        visited: &Arc<AtomicU64>,
    ) {
        visited.fetch_add(1, Ordering::Relaxed);
        ctx.advance(time::ns(1 + depth % 7));
        let mut children = Vec::new();
        for c in 0..2 {
            // Serialized execution makes this claim order deterministic.
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok()
            {
                let (b, v) = (Arc::clone(budget), Arc::clone(visited));
                children.push(ctx.spawn_with_stack(
                    format!("n{depth}.{c}"),
                    24 * 1024,
                    move |cctx| node(cctx, depth + 1, &b, &v),
                ));
            }
        }
        for ch in children {
            ctx.join(ch);
        }
    }

    let mut sim = Simulation::new();
    sim.set_actor_backend(ActorBackend::Coroutine);
    let (b, v) = (Arc::clone(&budget), Arc::clone(&visited));
    sim.spawn_with_stack("root", 64 * 1024, move |ctx| node(ctx, 0, &b, &v));
    let stats = sim.run();
    assert_eq!(visited.load(Ordering::Relaxed), TOTAL);
    assert_eq!(stats.actors as u64, TOTAL);
    assert_eq!(budget.load(Ordering::Relaxed), 0);
}
