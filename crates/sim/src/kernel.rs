//! The simulation kernel: event queue, virtual clock, and the blocking /
//! resource primitives actors synchronize through.
//!
//! The kernel lives behind a single mutex, but there is never real
//! contention: only the running actor (or the scheduler between actors)
//! touches it. All mutation goes through methods here so invariants —
//! monotone time, at most one pending wake per actor, FIFO resource queues —
//! hold in one place.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::time::Time;

/// Process-wide default for the scheduler-bypass fast path; freshly created
/// kernels inherit it. Benchmarks toggle this around whole runs; tests that
/// need a per-run setting use [`Kernel::set_fast_path`] instead (which always
/// wins over the default).
static FAST_PATH_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Set the process-wide default for the scheduler-bypass fast path (see
/// [`Kernel::set_fast_path`]). Only affects simulations created afterwards.
pub fn set_fast_path_default(on: bool) {
    FAST_PATH_DEFAULT.store(on, Ordering::SeqCst);
}

/// Current process-wide fast-path default.
pub fn fast_path_default() -> bool {
    FAST_PATH_DEFAULT.load(Ordering::SeqCst)
}

/// Identifies an actor within one simulation.
pub(crate) type ActorId = usize;

/// Handle to a FIFO queueing resource (a core, a NIC, a link, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

/// Handle to a one-shot completion (an async operation's "done" flag).
///
/// `#[must_use]`: a dropped completion is a lost-completion bug — nobody can
/// ever wait on or poll the operation it represents.
#[must_use = "dropping a CompletionId loses the only way to observe the operation"]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompletionId(pub(crate) usize);

/// Handle to a condition variable (standalone; the engine's serialization
/// makes the usual lost-wakeup race impossible).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CondId(pub(crate) usize);

/// Handle to a reusable N-party barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BarrierId(pub(crate) usize);

/// Handle to a FIFO-fair simulated mutex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MutexId(pub(crate) usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventKind {
    Wake(ActorId),
    Complete(CompletionId),
    /// Timed-wait deadline for an actor; the `u64` is the actor's wake
    /// epoch at scheduling time — a stale epoch means the actor was woken
    /// (and possibly re-blocked) in the meantime and the timeout is void.
    Timeout(ActorId, u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

/// One entry of the set of events tied at the earliest pending virtual time,
/// as shown to a [`SchedulePolicy`]. Entries are sorted by sequence number;
/// index 0 is what the default (policy-free) scheduler would dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The shared virtual time of the tie.
    pub time: Time,
    /// Queue sequence number (smaller = scheduled earlier).
    pub seq: u64,
    pub kind: ReadyEventKind,
}

/// Public mirror of the internal event kinds, for schedule policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadyEventKind {
    /// An actor resumes.
    Wake { actor: usize },
    /// A completion fires (waking its registered waiters).
    Complete { completion: usize },
    /// A timed-wait deadline (may be stale by the time it is processed).
    Timeout { actor: usize },
}

/// The schedule-exploration seam: a tie-break hook consulted whenever two or
/// more events are pending at the same earliest virtual time.
///
/// Events at *different* virtual times are causally ordered and never
/// reorderable; events tied at one instant model operations that are truly
/// concurrent on a real machine, where hardware would order them arbitrarily.
/// The default scheduler breaks ties by sequence number (a fixed, legal
/// ordering). A `SchedulePolicy` picks any other member of the tie instead,
/// which lets an explorer (see the `hupc-check` crate) enumerate or randomly
/// sample interleavings while keeping each individual run fully
/// deterministic: the same policy decisions always yield the same run.
///
/// The scheduler-bypass fast path is unaffected: bypass requires a wake
/// *strictly* earlier than every pending event, so ties — the only points a
/// policy is consulted — never take it, and explored schedules are identical
/// with the fast path on or off.
pub trait SchedulePolicy: Send {
    /// Choose which tied event dispatches next. `ready` has at least two
    /// entries, sorted by sequence number. Out-of-range returns are clamped.
    fn choose(&mut self, ready: &[ReadyEvent]) -> usize;
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ActorStatus {
    /// Has a pending `Wake` event in the queue.
    Runnable,
    /// Currently executing user code (resumed, wake consumed).
    Running,
    /// Parked in a simcall with no pending wake (waiting on a completion,
    /// condition, barrier or mutex).
    Blocked,
    Finished,
}

/// What a blocked actor is waiting for — typed, so the deadlock detector can
/// walk the wait graph (who holds the mutex, how many arrived at the
/// barrier) instead of printing an opaque string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Spawned, first wake not yet delivered.
    Start,
    /// Pure time delay ([`crate::Ctx::advance`]); always has a pending wake.
    Advance,
    /// FIFO resource service; always has a pending wake.
    Resource(ResourceId),
    Completion(CompletionId),
    Cond(CondId),
    Barrier(BarrierId),
    Mutex(MutexId),
}

/// Payload code for structured `Park` trace events.
#[cfg(feature = "trace")]
fn park_code(on: BlockKind) -> u64 {
    match on {
        BlockKind::Start => hupc_trace::park::START,
        BlockKind::Advance => hupc_trace::park::ADVANCE,
        BlockKind::Resource(_) => hupc_trace::park::RESOURCE,
        BlockKind::Completion(_) => hupc_trace::park::COMPLETION,
        BlockKind::Cond(_) => hupc_trace::park::COND,
        BlockKind::Barrier(_) => hupc_trace::park::BARRIER,
        BlockKind::Mutex(_) => hupc_trace::park::MUTEX,
    }
}

pub(crate) struct ActorMeta {
    pub name: String,
    pub status: ActorStatus,
    /// The logical process this actor lives on. Its wake/timeout events are
    /// queued there and (under the parallel backend) it only ever runs on
    /// the worker thread owning that LP.
    pub lp: usize,
    /// Completed when the actor finishes; joiners wait on it.
    pub exit: CompletionId,
    /// What the actor is blocked on, for timeouts and deadlock diagnostics.
    pub blocked_on: BlockKind,
    /// Bumped on every wake; outstanding `Timeout` events carrying an older
    /// epoch are stale and ignored.
    pub wake_epoch: u64,
    /// Set when the last wake was a timed-wait expiry (consumed by `Ctx`).
    pub timed_out: bool,
    /// Virtual time of the most recent `mark_blocked` (for deadlock reports).
    pub blocked_since: Time,
    /// Ring of the actor's last few scheduler interactions, kept so a
    /// deadlock report can show what each stuck actor was doing just before
    /// it parked for good. Bounded at [`RECENT_CAP`]; no allocation per push
    /// once warm.
    pub recent: VecDeque<RecentOp>,
}

/// How many trailing scheduler interactions are retained per actor for the
/// deadlock report's activity tail.
pub(crate) const RECENT_CAP: usize = 4;

/// One retained scheduler interaction of an actor (see [`ActorMeta::recent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecentOp {
    /// A wake was scheduled at `.1` while the clock stood at `.0`.
    Scheduled(Time, Time),
    /// The actor resumed inline via the scheduler-bypass fast path.
    Bypassed(Time),
    /// The actor parked, blocked on the given primitive.
    Parked(Time, BlockKind),
}

impl RecentOp {
    /// Compact single-token rendering (`sched@0ns->5ns`, `park@5ns(barrier#0)`).
    fn render(&self) -> String {
        fn block_tag(on: BlockKind) -> String {
            match on {
                BlockKind::Start => "start".into(),
                BlockKind::Advance => "advance".into(),
                BlockKind::Resource(r) => format!("resource#{}", r.0),
                BlockKind::Completion(c) => format!("completion#{}", c.0),
                BlockKind::Cond(c) => format!("cond#{}", c.0),
                BlockKind::Barrier(b) => format!("barrier#{}", b.0),
                BlockKind::Mutex(m) => format!("mutex#{}", m.0),
            }
        }
        match self {
            RecentOp::Scheduled(at, wake) => format!(
                "sched@{}->{}",
                crate::time::format(*at),
                crate::time::format(*wake)
            ),
            RecentOp::Bypassed(t) => format!("bypass@{}", crate::time::format(*t)),
            RecentOp::Parked(t, on) => {
                format!("park@{}({})", crate::time::format(*t), block_tag(*on))
            }
        }
    }
}

impl ActorMeta {
    /// Push into the bounded recent-activity ring. Consecutive duplicates
    /// collapse (blocking simcalls mark the park twice: once registering the
    /// wait, once in the generic block path).
    fn note(&mut self, op: RecentOp) {
        if self.recent.back() == Some(&op) {
            return;
        }
        if self.recent.len() == RECENT_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(op);
    }
}

#[derive(Debug)]
struct ResourceState {
    name: String,
    next_free: Time,
    busy_total: Time,
}

#[derive(Debug, Default)]
struct CompletionState {
    done: bool,
    waiters: Vec<ActorId>,
    /// Home LP: `Complete` events dispatch here, and firing wakes waiters at
    /// the current instant — so waiters must live on the same LP (a
    /// cross-LP waiter would need a zero-latency wake, which the partition
    /// contract forbids).
    lp: usize,
}

#[derive(Debug, Default)]
struct CondState {
    waiters: Vec<ActorId>,
}

#[derive(Debug)]
struct BarrierState {
    parties: usize,
    arrived: Vec<ActorId>,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<ActorId>,
    queue: Vec<ActorId>,
}

/// Per-LP half of the split event queue plus the LP's private clock.
///
/// With one logical process (the default) this is exactly the old global
/// queue: `near`/`far` hold every event and `now` mirrors the kernel clock.
/// With `set_lp_count(k)` the simulation is partitioned: each LP owns the
/// events that target its actors (and completions homed on it), advances its
/// own clock, and draws sequence numbers from its own counter so numbering
/// never depends on cross-LP interleaving.
#[derive(Debug, Default)]
struct LpQueue {
    /// Near bucket: events at `time == now` *pushed by this LP*, in push
    /// (= sequence) order. Cross-LP arrivals always go to `far` — their
    /// sequence numbers come from the sender's counter and would break the
    /// bucket's FIFO-by-seq invariant.
    near: VecDeque<Event>,
    /// Everything else targeting this LP.
    far: BinaryHeap<Reverse<Event>>,
    /// Local sequence counter; global seq = `lseq * num_lps + lp`, which
    /// reduces to today's single counter when there is one LP.
    lseq: u64,
    /// Local actor-id counter: actors registered *by* this LP (wherever
    /// they are homed) get id `actor_lid * num_lps + lp`. Allocating from
    /// the spawner's counter keeps ids deterministic under the parallel
    /// backend — a single LP's actions are serial, while a shared global
    /// counter would hand out ids in host-timing order.
    actor_lid: u64,
    /// Local completion-id counter; same packing and rationale as
    /// `actor_lid`.
    comp_lid: u64,
    /// The LP's private virtual clock (last event it processed).
    now: Time,
    /// A worker is currently executing one of this LP's events (parallel
    /// backend only); the LP's lower-bound contribution is then `now`.
    busy: bool,
}

impl LpQueue {
    /// Head of this LP's queue by `(time, seq)`, and whether it sits in the
    /// far heap.
    fn head(&self) -> Option<(Time, u64, bool)> {
        match (self.near.front(), self.far.peek()) {
            (Some(n), Some(Reverse(f))) => {
                if (f.time, f.seq) < (n.time, n.seq) {
                    Some((f.time, f.seq, true))
                } else {
                    Some((n.time, n.seq, false))
                }
            }
            (Some(n), None) => Some((n.time, n.seq, false)),
            (None, Some(Reverse(f))) => Some((f.time, f.seq, true)),
            (None, None) => None,
        }
    }

    fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }

    fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }
}

/// One processed scheduler event, as recorded by the optional event log
/// ([`Kernel::record_event_log`]). Bypassed events are logged exactly as the
/// full scheduler path would have logged them — same time, same sequence
/// number, same kind — which is what lets tests assert bit-identical traces
/// with the fast path on and off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: Time,
    pub seq: u64,
    pub kind: TraceKind,
}

/// Public mirror of the internal event kinds for trace logging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// An actor resumed (scheduler wake or inline bypass).
    Wake(usize),
    /// A completion fired.
    Complete(usize),
    /// A timed-wait deadline event was processed (live or stale).
    Timeout(usize),
}

/// Central simulation state. Obtain mutable access through
/// [`crate::Simulation::kernel`] (before the run) or
/// [`crate::Ctx::with_kernel`] (from inside an actor).
pub struct Kernel {
    now: Time,
    /// Split event queues, one per logical process. `lps[0]` alone exists by
    /// default; [`Kernel::set_lp_count`] partitions the simulation. Each
    /// LP's near bucket holds events scheduled *at* its current time in push
    /// (= sequence) order — `wake_at(now, ..)`, every completion fire, mutex
    /// handover and cond notify land there, making the hot-path insert and
    /// pop O(1) instead of a heap churn.
    lps: Vec<LpQueue>,
    /// The LP whose context is active: the LP of the running actor, or of
    /// the event being dispatched. Sequence numbers are drawn from its
    /// counter and `set_now` advances its clock.
    cur_lp: usize,
    /// Minimum cross-LP event latency (the conservative-synchronization
    /// lookahead). Every cross-LP push must be at least this far in the
    /// sender's future; `hupc-net` link latencies provide the static floor.
    lookahead: Time,
    /// Parallel backend active: `now` tracks the *current LP's* clock (set
    /// on `enter_lp`) instead of a single global clock.
    parallel: bool,
    events_processed: u64,
    resources: Vec<ResourceState>,
    completions: Vec<CompletionState>,
    conds: Vec<CondState>,
    barriers: Vec<BarrierState>,
    mutexes: Vec<MutexState>,
    pub(crate) actors: Vec<ActorMeta>,
    /// Actors actually registered; `actors.len()` minus placeholder holes.
    registered_actors: usize,
    pub(crate) live_actors: usize,
    pub(crate) trace: bool,
    /// Scheduler-bypass fast path enabled for this kernel (defaults to the
    /// process-wide [`fast_path_default`]).
    fast_path: bool,
    /// Simcalls resolved inline without a scheduler handoff.
    pub(crate) fast_path_hits: u64,
    /// Scheduler → actor dispatches that went through a full handoff (a
    /// resume/yield context-switch round trip).
    pub(crate) handoffs: u64,
    /// Pushes + pops on the far (binary-heap) half of the event queue.
    pub(crate) heap_ops: u64,
    /// Optional full event log for trace-equality tests.
    event_log: Option<Vec<TraceEvent>>,
    /// Optional tie-break hook for schedule exploration (see
    /// [`SchedulePolicy`]). `None` (the default) keeps the plain
    /// sequence-order pop path with zero overhead.
    policy: Option<Box<dyn SchedulePolicy>>,
    /// First actor panic of the run: `(actor, payload rendering)`. Set by
    /// the panicking actor under the kernel lock (before it switches back to
    /// the scheduler) and drained by the scheduler loop — the typed channel
    /// behind [`crate::SimError::ActorPanic`].
    panic_note: Option<(ActorId, String)>,
    /// Structured virtual-time tracer (hupc-trace), if one is attached.
    /// Emitting never touches `now`, the queue, or any seq the simulation
    /// observes — tracing is observationally free by construction.
    #[cfg(feature = "trace")]
    tracer: Option<std::sync::Arc<hupc_trace::Tracer>>,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Kernel {
            now: 0,
            lps: vec![LpQueue::default()],
            cur_lp: 0,
            lookahead: 0,
            parallel: false,
            events_processed: 0,
            resources: Vec::new(),
            completions: Vec::new(),
            conds: Vec::new(),
            barriers: Vec::new(),
            mutexes: Vec::new(),
            actors: Vec::new(),
            registered_actors: 0,
            live_actors: 0,
            trace: false,
            fast_path: fast_path_default(),
            fast_path_hits: 0,
            handoffs: 0,
            heap_ops: 0,
            event_log: None,
            policy: None,
            panic_note: None,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Install (or remove) a schedule-exploration tie-break policy. With a
    /// policy installed, every instant at which two or more events are
    /// pending becomes a decision point: the policy picks which one
    /// dispatches. Without one, ties break by sequence number as always.
    pub fn set_schedule_policy(&mut self, p: Option<Box<dyn SchedulePolicy>>) {
        self.policy = p;
    }

    /// Whether a schedule policy is installed.
    pub fn has_schedule_policy(&self) -> bool {
        self.policy.is_some()
    }

    /// Record the first actor panic of the run (later ones are dropped; the
    /// run is already doomed and the first failure is the one to report).
    pub(crate) fn note_panic(&mut self, actor: ActorId, message: String) {
        if self.panic_note.is_none() {
            self.panic_note = Some((actor, message));
        }
    }

    /// Drain the pending panic note, if any.
    pub(crate) fn take_panic_note(&mut self) -> Option<(ActorId, String)> {
        self.panic_note.take()
    }

    /// Attach (or detach) a structured tracer. All kernel-level events
    /// (schedule / wake / fast-path bypass / park / complete / timeout) are
    /// emitted through it when its level is `Full`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, t: Option<std::sync::Arc<hupc_trace::Tracer>>) {
        self.tracer = t;
    }

    /// The attached tracer, if any.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> Option<&std::sync::Arc<hupc_trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// Emit a structured trace event at the kernel clock (single branch when
    /// no tracer is attached or its level is below `Full`).
    #[cfg(feature = "trace")]
    #[inline]
    pub(crate) fn temit(&self, time: Time, actor: usize, kind: hupc_trace::EventKind, a: u64, b: u64) {
        if let Some(t) = &self.tracer {
            t.emit(time, actor as u32, kind, a, b);
        }
    }

    /// Emit the structured counterpart of a dispatched scheduler event.
    #[cfg(feature = "trace")]
    pub(crate) fn trace_dispatch(&self, e: &Event) {
        match e.kind {
            EventKind::Wake(a) => self.temit(e.time, a, hupc_trace::EventKind::Wake, e.seq, 0),
            EventKind::Complete(c) => {
                self.temit(e.time, usize::MAX, hupc_trace::EventKind::Complete, c.0 as u64, e.seq)
            }
            EventKind::Timeout(a, epoch) => {
                let live = self.timeout_is_live(a, epoch);
                self.temit(e.time, a, hupc_trace::EventKind::Timeout, live as u64, e.seq)
            }
        }
    }

    /// Enable / disable the scheduler-bypass fast path for this kernel.
    ///
    /// With the fast path **on** (the default), a simcall whose resulting
    /// wake is provably the next event to run — strictly earlier than every
    /// pending event — is processed inline by the calling actor, which keeps
    /// running without a scheduler handoff. Virtual-time behavior is
    /// bit-identical either way (same event times, sequence numbers and
    /// order); only host wall-clock and the `fast_path_hits` / `handoffs`
    /// counters differ.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Whether the scheduler-bypass fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    // ----- logical processes (conservative parallel partitioning) ---------

    /// Partition the simulation into `k` logical processes. Must be called
    /// before any actor is spawned or event scheduled: sequence numbers are
    /// packed as `lseq * k + lp`, so the count cannot change once numbering
    /// has started. Each actor lives on exactly one LP (see
    /// `Simulation::spawn_on`); intra-LP events need no synchronization, and
    /// cross-LP events must honor the [`Kernel::set_lookahead`] floor.
    pub fn set_lp_count(&mut self, k: usize) {
        assert!(k >= 1, "need at least one logical process");
        assert!(
            self.actors.is_empty()
                && self.completions.is_empty()
                && self.events_processed == 0
                && self.lps.iter().all(|q| q.is_empty() && q.lseq == 0),
            "set_lp_count must be called before any spawn, completion or event"
        );
        self.lps = (0..k).map(|_| LpQueue::default()).collect();
        self.cur_lp = 0;
    }

    /// Number of logical processes (1 unless partitioned).
    pub fn num_lps(&self) -> usize {
        self.lps.len()
    }

    /// Set the cross-LP lookahead: the minimum virtual-time distance of any
    /// event one LP schedules onto another. The network model's minimum
    /// inter-node wire latency is the natural value (`Fabric::lookahead`).
    /// Cross-LP pushes closer than this panic — in *both* backends, so a
    /// partitioning bug cannot hide behind the sequential oracle.
    pub fn set_lookahead(&mut self, l: Time) {
        self.lookahead = l;
    }

    /// Current cross-LP lookahead.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Switch `now` bookkeeping to per-LP clocks (parallel backend) or back.
    pub(crate) fn set_parallel_mode(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Make `lp` the active context: subsequent sequence numbers come from
    /// its counter and (in parallel mode) `now()` reads its private clock.
    /// In sequential mode the global clock stands — whenever an actor is
    /// running, its LP's clock equals the global clock by construction.
    pub(crate) fn enter_lp(&mut self, lp: usize) {
        debug_assert!(lp < self.lps.len(), "LP {lp} out of range");
        self.cur_lp = lp;
        if self.parallel {
            self.now = self.lps[lp].now;
        }
    }

    /// The LP owning actor `a`.
    pub(crate) fn actor_lp(&self, a: ActorId) -> usize {
        self.actors[a].lp
    }

    /// Total pending events across every LP.
    pub(crate) fn pending_events(&self) -> usize {
        self.lps.iter().map(LpQueue::len).sum()
    }

    /// Whether any LP is mid-event on a worker (parallel backend).
    pub(crate) fn any_lp_busy(&self) -> bool {
        self.lps.iter().any(|q| q.busy)
    }

    /// Largest per-LP clock — the end time of a parallel run (equals the
    /// global clock after a sequential run).
    pub(crate) fn max_lp_now(&self) -> Time {
        self.lps.iter().map(|q| q.now).max().unwrap_or(self.now)
    }

    /// This LP's contribution to every other LP's safe-time bound: its clock
    /// while a worker is executing one of its events, else its queue head
    /// (an idle, empty LP constrains nobody — any event it will ever process
    /// must first be pushed by some other LP, whose own floor covers it).
    fn lp_floor(&self, lp: usize) -> Time {
        let q = &self.lps[lp];
        if q.busy {
            q.now
        } else {
            q.head().map_or(Time::MAX, |(t, _, _)| t)
        }
    }

    /// Lower-bound timestamp for `lp`: no event earlier than this can ever
    /// arrive from another LP. Computed under the kernel lock, so every
    /// already-sent event is visible in some queue and every future send
    /// is bounded below by its sender's floor plus the lookahead.
    pub(crate) fn lbts(&self, lp: usize) -> Time {
        let l = self.lookahead;
        (0..self.lps.len())
            .filter(|&i| i != lp)
            .map(|i| self.lp_floor(i).saturating_add(l))
            .min()
            .unwrap_or(Time::MAX)
    }

    /// Start recording every processed event (including bypassed ones) into
    /// an in-memory log; retrieve it with [`Kernel::take_event_log`].
    pub fn record_event_log(&mut self, on: bool) {
        self.event_log = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded event log (empty if recording was never enabled).
    /// With multiple LPs the log is normalized to `(time, seq)` order: the
    /// parallel backend appends in real-time completion order, and even the
    /// sequential backend's per-LP clocks admit same-instant cross-LP ties
    /// in either lock order — the sort makes logs comparable across
    /// backends, which is exactly what the equivalence tests need.
    pub fn take_event_log(&mut self) -> Vec<TraceEvent> {
        let mut log = self.event_log.take().unwrap_or_default();
        if self.lps.len() > 1 {
            log.sort_unstable_by_key(|e| (e.time, e.seq));
        }
        log
    }

    pub(crate) fn log_event(&mut self, time: Time, seq: u64, kind: EventKind) {
        if let Some(log) = &mut self.event_log {
            let kind = match kind {
                EventKind::Wake(a) => TraceKind::Wake(a),
                EventKind::Complete(c) => TraceKind::Complete(c.0),
                EventKind::Timeout(a, _) => TraceKind::Timeout(a),
            };
            log.push(TraceEvent { time, seq, kind });
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    pub(crate) fn set_now(&mut self, t: Time) {
        debug_assert!(
            t >= self.lps[self.cur_lp].now,
            "virtual time must be monotone per LP"
        );
        debug_assert!(
            self.parallel || t >= self.now,
            "virtual time must be monotone"
        );
        self.lps[self.cur_lp].now = t;
        self.now = t;
        self.events_processed += 1;
    }

    /// Which LP an event targets: the actor's home LP for wakes and
    /// timeouts, the completion's home LP for completes.
    fn target_lp(&self, kind: EventKind) -> usize {
        match kind {
            EventKind::Wake(a) | EventKind::Timeout(a, _) => self.actors[a].lp,
            EventKind::Complete(c) => self.completions[c.0].lp,
        }
    }

    pub(crate) fn push_event(&mut self, time: Time, kind: EventKind) {
        let cur = self.cur_lp;
        let target = self.target_lp(kind);
        if target == cur {
            debug_assert!(
                time >= self.lps[cur].now,
                "cannot schedule into the past"
            );
        } else {
            // The partition contract, enforced identically in both backends:
            // an LP may only reach into another LP's future by at least the
            // lookahead — that slack is what makes conservative parallel
            // execution (and the LBTS bound) sound.
            assert!(
                time >= self.lps[cur].now.saturating_add(self.lookahead),
                "cross-LP event from LP {cur} (now {}) to LP {target} at {} \
                 violates the lookahead floor of {}",
                crate::time::format(self.lps[cur].now),
                crate::time::format(time),
                crate::time::format(self.lookahead),
            );
        }
        let seq = self.lps[cur].lseq * self.lps.len() as u64 + cur as u64;
        self.lps[cur].lseq += 1;
        let ev = Event { time, seq, kind };
        if target == cur && time == self.lps[cur].now {
            // Near bucket: all entries share `time == now` (the LP's clock
            // cannot advance past a pending now-event, so the bucket drains
            // before `now` moves) and FIFO order is sequence order — both
            // hold only for the LP's own pushes, so cross-LP events always
            // take the far heap.
            self.lps[cur].near.push_back(ev);
        } else {
            self.heap_ops += 1;
            self.lps[target].far.push(Reverse(ev));
        }
    }

    /// Pop the globally earliest pending event by `(time, seq)` — the
    /// sequential backend's dispatch source. Returns the owning LP so the
    /// engine can enter its context before processing.
    pub(crate) fn pop_event(&mut self) -> Option<(usize, Event)> {
        if self.policy.is_some() {
            return self.pop_event_policy();
        }
        let mut best: Option<(usize, Time, u64, bool)> = None;
        for (i, q) in self.lps.iter().enumerate() {
            if let Some((t, s, far)) = q.head() {
                if best.map_or(true, |(_, bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((i, t, s, far));
                }
            }
        }
        let (lp, _, _, take_far) = best?;
        let ev = if take_far {
            self.heap_ops += 1;
            self.lps[lp].far.pop().map(|Reverse(e)| e)
        } else {
            self.lps[lp].near.pop_front()
        };
        ev.map(|e| (lp, e))
    }

    /// Pop the earliest *safe* event among `owned` LPs for a parallel
    /// worker: the head must beat every other LP's lower bound (its clock if
    /// a worker is inside it, else its queue head) plus the lookahead — the
    /// null-message guarantee that nothing earlier can still arrive. On
    /// success the LP is marked busy (its floor freezes at the event time)
    /// until the engine calls [`Kernel::finish_lp`].
    pub(crate) fn pop_safe(&mut self, owned: &[usize]) -> Option<(usize, Event)> {
        debug_assert!(self.policy.is_none(), "policy runs on the sequential path");
        let mut best: Option<(usize, Time, u64, bool)> = None;
        for &i in owned {
            let q = &self.lps[i];
            if q.busy {
                continue; // a worker is mid-event on this LP
            }
            if let Some((t, s, far)) = q.head() {
                if best.map_or(true, |(_, bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((i, t, s, far));
                }
            }
        }
        let (lp, t, _, take_far) = best?;
        if t >= self.lbts(lp) {
            return None; // not yet safe; wait for neighbors to advance
        }
        self.lps[lp].busy = true;
        let ev = if take_far {
            self.heap_ops += 1;
            self.lps[lp].far.pop().map(|Reverse(e)| e)
        } else {
            self.lps[lp].near.pop_front()
        };
        ev.map(|e| (lp, e))
    }

    /// Release an LP a worker finished processing an event on.
    pub(crate) fn finish_lp(&mut self, lp: usize) {
        debug_assert!(self.lps[lp].busy);
        self.lps[lp].busy = false;
    }

    /// Policy-mediated pop: gather every event tied at the earliest pending
    /// time, let the [`SchedulePolicy`] pick one, and reinsert the rest with
    /// their original sequence numbers (so the un-chosen members of the tie
    /// keep their identity for later decision points).
    fn pop_event_policy(&mut self) -> Option<(usize, Event)> {
        let t = self.earliest_pending()?;
        let mut ready: Vec<(usize, Event)> = Vec::new();
        for lp in 0..self.lps.len() {
            while self.lps[lp].far.peek().is_some_and(|Reverse(f)| f.time == t) {
                self.heap_ops += 1;
                let e = self.lps[lp].far.pop().map(|Reverse(e)| e).unwrap();
                ready.push((lp, e));
            }
            // Near entries all share the LP's `now`; they tie only at it.
            while self.lps[lp].near.front().is_some_and(|n| n.time == t) {
                ready.push((lp, self.lps[lp].near.pop_front().unwrap()));
            }
        }
        // Cross-LP sequence numbers interleave counters, so seq order needs
        // an explicit sort (a no-op for the single-LP fast case).
        ready.sort_unstable_by_key(|(_, e)| e.seq);
        let choice = if ready.len() > 1 {
            let view: Vec<ReadyEvent> = ready
                .iter()
                .map(|(_, e)| ReadyEvent {
                    time: e.time,
                    seq: e.seq,
                    kind: match e.kind {
                        EventKind::Wake(a) => ReadyEventKind::Wake { actor: a },
                        EventKind::Complete(c) => {
                            ReadyEventKind::Complete { completion: c.0 }
                        }
                        EventKind::Timeout(a, _) => ReadyEventKind::Timeout { actor: a },
                    },
                })
                .collect();
            // Temporarily lift the policy out to sidestep the simultaneous
            // &mut self borrow; `choose` must not touch the kernel anyway.
            let mut policy = self.policy.take().expect("checked in pop_event");
            let c = policy.choose(&view).min(ready.len() - 1);
            self.policy = Some(policy);
            c
        } else {
            0
        };
        let (lp, ev) = ready.remove(choice);
        let k = self.lps.len() as u64;
        for (l, e) in ready {
            // Ties at the LP's own clock that the LP itself pushed go back
            // to its near bucket — fully drained above, and reinsertion in
            // seq order keeps its FIFO-by-seq invariant (the LP's own future
            // pushes carry strictly larger seqs). Everything else, including
            // any cross-LP arrival, returns to the far heap.
            if e.time == self.lps[l].now && e.seq % k == l as u64 {
                self.lps[l].near.push_back(e);
            } else {
                self.heap_ops += 1;
                self.lps[l].far.push(Reverse(e));
            }
        }
        Some((lp, ev))
    }

    /// Time of the earliest pending event across every LP, if any.
    fn earliest_pending(&self) -> Option<Time> {
        self.lps
            .iter()
            .filter_map(|q| q.head().map(|(t, _, _)| t))
            .min()
    }

    /// Time of the earliest pending event targeting `lp`, if any.
    fn lp_earliest(&self, lp: usize) -> Option<Time> {
        self.lps[lp].head().map(|(t, _, _)| t)
    }

    /// Whether an actor resuming itself at `t` may take the scheduler-bypass
    /// fast path: its wake must be *strictly* earlier than every pending
    /// event. (An existing event at the same time holds a smaller sequence
    /// number and must run first, so ties disqualify.) Under the parallel
    /// backend only the actor's own LP and the cross-LP safe-time bound
    /// matter — other LPs' queues are causally separated by the lookahead.
    pub(crate) fn bypass_eligible(&self, t: Time) -> bool {
        if !self.fast_path {
            return false;
        }
        if self.parallel {
            self.lp_earliest(self.cur_lp).map_or(true, |p| t < p)
                && t < self.lbts(self.cur_lp)
        } else {
            self.earliest_pending().map_or(true, |p| t < p)
        }
    }

    /// Process an actor's own wake inline: consume the sequence number the
    /// wake event would have used, advance the clock, and account the event
    /// — without ever enqueueing it or handing off to the scheduler. The
    /// caller must have checked [`Kernel::bypass_eligible`]; the actor keeps
    /// running afterwards.
    pub(crate) fn bypass_resume(&mut self, actor: ActorId, t: Time) {
        // Bugfix-by-construction: taking the fast path while any other event
        // is pending at an earlier-or-equal (time, sequence) would silently
        // reorder the schedule — fail loudly instead. (Under the parallel
        // backend the bound is per-LP: other LPs are lookahead-separated.)
        debug_assert!(
            if self.parallel {
                self.lp_earliest(self.cur_lp).map_or(true, |p| t < p)
            } else {
                self.earliest_pending().map_or(true, |p| t < p)
            },
            "fast path taken at t={t} while an earlier event is pending"
        );
        debug_assert_eq!(
            self.actors[actor].status,
            ActorStatus::Running,
            "fast path requires the calling actor to be the running actor"
        );
        debug_assert_eq!(
            self.actors[actor].lp, self.cur_lp,
            "fast path requires the current LP context to be the actor's"
        );
        let cur = self.cur_lp;
        let seq = self.lps[cur].lseq * self.lps.len() as u64 + cur as u64;
        self.lps[cur].lseq += 1;
        self.actors[actor].wake_epoch += 1; // voids outstanding timeouts
        self.actors[actor].note(RecentOp::Bypassed(t));
        if self.trace {
            eprintln!(
                "[sim t={}] Wake({actor}) [bypass]",
                crate::time::format(t)
            );
        }
        self.log_event(t, seq, EventKind::Wake(actor));
        #[cfg(feature = "trace")]
        self.temit(t, actor, hupc_trace::EventKind::FastPathBypass, seq, 0);
        self.set_now(t);
        self.fast_path_hits += 1;
    }

    /// Schedule a wake for `actor` at `time`, marking it runnable.
    pub(crate) fn wake_at(&mut self, time: Time, actor: ActorId) {
        debug_assert_ne!(
            self.actors[actor].status,
            ActorStatus::Runnable,
            "actor {} ({}) already has a pending wake",
            actor,
            self.actors[actor].name
        );
        self.actors[actor].status = ActorStatus::Runnable;
        self.actors[actor].wake_epoch += 1; // voids outstanding timeouts
        let now = self.now;
        self.actors[actor].note(RecentOp::Scheduled(now, time));
        #[cfg(feature = "trace")]
        self.temit(self.now, actor, hupc_trace::EventKind::Schedule, time, 0);
        self.push_event(time, EventKind::Wake(actor));
    }

    pub(crate) fn mark_blocked(&mut self, actor: ActorId, on: BlockKind) {
        self.actors[actor].status = ActorStatus::Blocked;
        self.actors[actor].blocked_on = on;
        let now = self.now;
        self.actors[actor].blocked_since = now;
        self.actors[actor].note(RecentOp::Parked(now, on));
        #[cfg(feature = "trace")]
        self.temit(self.now, actor, hupc_trace::EventKind::Park, park_code(on), 0);
    }

    /// Arm a timed-wait deadline for `actor` at `at`. Must be called while
    /// the actor is (about to be) blocked; voided automatically if the actor
    /// is woken before the deadline.
    pub(crate) fn schedule_timeout(&mut self, actor: ActorId, at: Time) {
        let epoch = self.actors[actor].wake_epoch;
        self.push_event(at, EventKind::Timeout(actor, epoch));
    }

    /// Whether a `Timeout(actor, epoch)` event is still live when popped.
    pub(crate) fn timeout_is_live(&self, actor: ActorId, epoch: u64) -> bool {
        self.actors[actor].status == ActorStatus::Blocked
            && self.actors[actor].wake_epoch == epoch
    }

    /// Withdraw `actor` from whatever wait registration it holds (the
    /// cleanup half of a timed-wait expiry). A barrier arrival is taken
    /// back — the barrier will need a fresh arrival from someone to release,
    /// which is exactly the "broken barrier" semantics a timeout reports.
    pub(crate) fn cancel_wait(&mut self, actor: ActorId) {
        match self.actors[actor].blocked_on {
            BlockKind::Completion(c) => {
                self.completions[c.0].waiters.retain(|&w| w != actor);
            }
            BlockKind::Cond(c) => {
                self.conds[c.0].waiters.retain(|&w| w != actor);
            }
            BlockKind::Barrier(b) => {
                self.barriers[b.0].arrived.retain(|&w| w != actor);
            }
            BlockKind::Mutex(m) => {
                self.mutexes[m.0].queue.retain(|&w| w != actor);
            }
            BlockKind::Start | BlockKind::Advance | BlockKind::Resource(_) => {}
        }
    }

    pub(crate) fn mark_running(&mut self, actor: ActorId) {
        debug_assert_eq!(self.actors[actor].status, ActorStatus::Runnable);
        self.actors[actor].status = ActorStatus::Running;
    }

    // ----- resources ------------------------------------------------------

    /// Register a FIFO queueing resource.
    pub fn new_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(ResourceState {
            name: name.into(),
            next_free: 0,
            busy_total: 0,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// FIFO-acquire `res` for `service` time, starting no earlier than
    /// `earliest`. Returns the completion time. This is the single queueing
    /// primitive every contention effect in the platform model reduces to.
    pub fn acquire_after(
        &mut self,
        res: ResourceId,
        earliest: Time,
        service: Time,
    ) -> Time {
        let r = &mut self.resources[res.0];
        let start = earliest.max(r.next_free);
        r.next_free = start + service;
        r.busy_total += service;
        r.next_free
    }

    /// FIFO-acquire starting no earlier than the current time.
    pub fn acquire(&mut self, res: ResourceId, service: Time) -> Time {
        let now = self.now;
        self.acquire_after(res, now, service)
    }

    /// Earliest instant `res` is free (its queue tail).
    pub fn resource_free_at(&self, res: ResourceId) -> Time {
        self.resources[res.0].next_free
    }

    /// Total busy time accumulated on `res` (for utilization reporting).
    pub fn resource_busy_total(&self, res: ResourceId) -> Time {
        self.resources[res.0].busy_total
    }

    /// Name the resource was registered with.
    pub fn resource_name(&self, res: ResourceId) -> &str {
        &self.resources[res.0].name
    }

    // ----- completions ----------------------------------------------------

    /// Create a fresh not-yet-done completion, homed on the current LP.
    ///
    /// The id is allocated from the current LP's private counter (packed as
    /// `lid * num_lps + lp`, like event sequence numbers), so completion
    /// ids are deterministic even when LPs allocate concurrently. With one
    /// LP this is the plain dense counter it always was.
    pub fn new_completion(&mut self) -> CompletionId {
        let k = self.lps.len();
        let lp = self.cur_lp;
        let lid = self.lps[lp].comp_lid;
        self.lps[lp].comp_lid += 1;
        let id = lid as usize * k + lp;
        if self.completions.len() <= id {
            // Uneven allocation across LPs leaves holes; fill with inert
            // already-done placeholders nothing can reference.
            self.completions.resize_with(id + 1, || CompletionState {
                done: true,
                waiters: Vec::new(),
                lp: 0,
            });
        }
        self.completions[id] = CompletionState {
            done: false,
            waiters: Vec::new(),
            lp: self.cur_lp,
        };
        CompletionId(id)
    }

    /// Allocate an actor id from the current LP's private counter (same
    /// packing as [`Kernel::new_completion`]) and install `meta` there.
    /// Slot-table holes left by uneven cross-LP allocation are inert
    /// finished placeholders.
    pub(crate) fn alloc_actor(&mut self, meta: ActorMeta) -> ActorId {
        let k = self.lps.len();
        let lp = self.cur_lp;
        let lid = self.lps[lp].actor_lid;
        self.lps[lp].actor_lid += 1;
        let id = lid as usize * k + lp;
        if self.actors.len() <= id {
            self.actors.resize_with(id + 1, || ActorMeta {
                name: String::new(),
                status: ActorStatus::Finished,
                lp: 0,
                exit: CompletionId(usize::MAX),
                blocked_on: BlockKind::Start,
                wake_epoch: 0,
                timed_out: false,
                blocked_since: 0,
                recent: std::collections::VecDeque::new(),
            });
        }
        self.actors[id] = meta;
        self.registered_actors += 1;
        id
    }

    /// Number of actors actually registered (the slot table may be longer:
    /// uneven per-LP id allocation leaves placeholder holes).
    pub fn registered_actors(&self) -> usize {
        self.registered_actors
    }

    /// Schedule `comp` to become done at `time`.
    pub fn complete_at(&mut self, time: Time, comp: CompletionId) {
        self.push_event(time, EventKind::Complete(comp));
    }

    /// Whether `comp` has fired.
    pub fn is_complete(&self, comp: CompletionId) -> bool {
        self.completions[comp.0].done
    }

    /// Mark done immediately and wake waiters at the current time.
    pub(crate) fn fire_completion(&mut self, comp: CompletionId) {
        let c = &mut self.completions[comp.0];
        if c.done {
            return;
        }
        c.done = true;
        let waiters = std::mem::take(&mut c.waiters);
        let now = self.now;
        for w in waiters {
            self.wake_at(now, w);
        }
    }

    pub(crate) fn add_completion_waiter(&mut self, comp: CompletionId, actor: ActorId) {
        debug_assert!(!self.completions[comp.0].done);
        self.completions[comp.0].waiters.push(actor);
    }

    // ----- condition variables --------------------------------------------

    /// Create a condition variable.
    pub fn new_cond(&mut self) -> CondId {
        self.conds.push(CondState::default());
        CondId(self.conds.len() - 1)
    }

    pub(crate) fn add_cond_waiter(&mut self, cond: CondId, actor: ActorId) {
        self.conds[cond.0].waiters.push(actor);
    }

    /// Wake one waiter (FIFO). Returns whether anybody was woken.
    pub fn cond_notify_one(&mut self, cond: CondId) -> bool {
        if self.conds[cond.0].waiters.is_empty() {
            return false;
        }
        let w = self.conds[cond.0].waiters.remove(0);
        let now = self.now;
        self.wake_at(now, w);
        true
    }

    /// Wake all waiters. Returns how many were woken.
    pub fn cond_notify_all(&mut self, cond: CondId) -> usize {
        let waiters = std::mem::take(&mut self.conds[cond.0].waiters);
        let n = waiters.len();
        let now = self.now;
        for w in waiters {
            self.wake_at(now, w);
        }
        n
    }

    /// Number of actors currently parked on `cond`.
    pub fn cond_waiter_count(&self, cond: CondId) -> usize {
        self.conds[cond.0].waiters.len()
    }

    // ----- barriers ---------------------------------------------------------

    /// Create a reusable barrier for `parties` actors.
    pub fn new_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(BarrierState {
            parties,
            arrived: Vec::new(),
        });
        BarrierId(self.barriers.len() - 1)
    }

    /// Arrive at the barrier. Returns `true` if this arrival released the
    /// barrier (the caller is the last party and must NOT block); the kernel
    /// has then scheduled wakes for all the earlier arrivals at
    /// `now + release_cost`, and the caller should advance itself by
    /// `release_cost`.
    pub(crate) fn barrier_arrive(
        &mut self,
        bar: BarrierId,
        actor: ActorId,
        release_cost: Time,
    ) -> bool {
        let parties = self.barriers[bar.0].parties;
        self.barriers[bar.0].arrived.push(actor);
        if self.barriers[bar.0].arrived.len() < parties {
            return false;
        }
        let arrived = std::mem::take(&mut self.barriers[bar.0].arrived);
        let t = self.now + release_cost;
        for w in arrived {
            if w != actor {
                self.wake_at(t, w);
            }
        }
        true
    }

    /// Parties the barrier was created with.
    pub fn barrier_parties(&self, bar: BarrierId) -> usize {
        self.barriers[bar.0].parties
    }

    // ----- mutexes ----------------------------------------------------------

    /// Create a FIFO-fair simulated mutex.
    pub fn new_mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState::default());
        MutexId(self.mutexes.len() - 1)
    }

    /// Attempt the fast path of a lock. Returns `true` on success; on
    /// failure the caller was queued and must block.
    pub(crate) fn mutex_lock_or_enqueue(&mut self, m: MutexId, actor: ActorId) -> bool {
        let st = &mut self.mutexes[m.0];
        if st.owner.is_none() {
            st.owner = Some(actor);
            true
        } else {
            st.queue.push(actor);
            false
        }
    }

    /// Try-lock without queueing.
    pub(crate) fn mutex_try_lock(&mut self, m: MutexId, actor: ActorId) -> bool {
        let st = &mut self.mutexes[m.0];
        if st.owner.is_none() {
            st.owner = Some(actor);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(&mut self, m: MutexId, actor: ActorId) {
        let st = &mut self.mutexes[m.0];
        assert_eq!(
            st.owner,
            Some(actor),
            "mutex unlocked by non-owner actor {actor}"
        );
        if st.queue.is_empty() {
            st.owner = None;
        } else {
            let next = st.queue.remove(0);
            st.owner = Some(next);
            let now = self.now;
            self.wake_at(now, next);
        }
    }

    /// Whether the mutex is currently held.
    pub fn mutex_is_locked(&self, m: MutexId) -> bool {
        self.mutexes[m.0].owner.is_some()
    }

    // ----- diagnostics ------------------------------------------------------

    /// Snapshot the wait graph of every blocked actor (the deadlock report).
    pub(crate) fn wait_graph(&self) -> WaitGraph {
        let name_of = |id: usize| self.actors[id].name.clone();
        let edges = self
            .actors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.status == ActorStatus::Blocked)
            .map(|(i, a)| {
                let target = match a.blocked_on {
                    BlockKind::Start => WaitTarget::Start,
                    BlockKind::Advance => WaitTarget::Advance,
                    BlockKind::Resource(r) => WaitTarget::Resource {
                        id: r.0,
                        name: self.resources[r.0].name.clone(),
                    },
                    BlockKind::Completion(c) => WaitTarget::Completion { id: c.0 },
                    BlockKind::Cond(c) => WaitTarget::Cond {
                        id: c.0,
                        waiters: self.conds[c.0].waiters.len(),
                    },
                    BlockKind::Barrier(b) => WaitTarget::Barrier {
                        id: b.0,
                        arrived: self.barriers[b.0].arrived.len(),
                        parties: self.barriers[b.0].parties,
                        arrived_actors: self.barriers[b.0]
                            .arrived
                            .iter()
                            .map(|&w| (w, name_of(w)))
                            .collect(),
                    },
                    BlockKind::Mutex(m) => WaitTarget::Mutex {
                        id: m.0,
                        owner: self.mutexes[m.0].owner.map(|o| (o, name_of(o))),
                        queue_len: self.mutexes[m.0].queue.len(),
                    },
                };
                WaitEdge {
                    actor: i,
                    actor_name: a.name.clone(),
                    target,
                    blocked_since: a.blocked_since,
                    recent: a.recent.iter().map(RecentOp::render).collect(),
                }
            })
            .collect();
        WaitGraph { edges }
    }
}

/// What one blocked actor is waiting on, with enough context to see *why*
/// it cannot proceed (mutex owner, barrier arrival count, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitTarget {
    /// Spawned but never started (the scheduler quit first).
    Start,
    /// A pure time delay (cannot deadlock; shown for completeness).
    Advance,
    /// A FIFO resource service (cannot deadlock; shown for completeness).
    Resource { id: usize, name: String },
    Completion { id: usize },
    Cond { id: usize, waiters: usize },
    Barrier {
        id: usize,
        arrived: usize,
        parties: usize,
        arrived_actors: Vec<(usize, String)>,
    },
    Mutex {
        id: usize,
        owner: Option<(usize, String)>,
        queue_len: usize,
    },
}

/// One blocked actor and its blocking primitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    pub actor: usize,
    pub actor_name: String,
    pub target: WaitTarget,
    /// Virtual time at which the actor parked on `target`.
    pub blocked_since: Time,
    /// The actor's last few scheduler interactions (oldest first), rendered
    /// as compact tokens — the activity tail leading up to the park.
    pub recent: Vec<String>,
}

/// The full set of blocked actors at the moment the event queue drained —
/// the structured deadlock report returned inside
/// [`crate::SimError::Deadlock`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WaitGraph {
    pub edges: Vec<WaitEdge>,
}

impl std::fmt::Display for WaitGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.edges.is_empty() {
            return writeln!(f, "  (no blocked actors)");
        }
        for e in &self.edges {
            write!(f, "  actor {} '{}' waiting on ", e.actor, e.actor_name)?;
            match &e.target {
                WaitTarget::Start => writeln!(f, "its first wake (never started)")?,
                WaitTarget::Advance => writeln!(f, "a time advance")?,
                WaitTarget::Resource { id, name } => {
                    writeln!(f, "resource #{id} '{name}'")?;
                }
                WaitTarget::Completion { id } => writeln!(f, "completion #{id}")?,
                WaitTarget::Cond { id, waiters } => {
                    writeln!(f, "cond #{id} ({waiters} parked, nobody to notify)")?;
                }
                WaitTarget::Barrier {
                    id,
                    arrived,
                    parties,
                    arrived_actors,
                } => {
                    let who: Vec<String> = arrived_actors
                        .iter()
                        .map(|(i, n)| format!("{i} '{n}'"))
                        .collect();
                    writeln!(
                        f,
                        "barrier #{id} ({arrived}/{parties} arrived: [{}])",
                        who.join(", ")
                    )?;
                }
                WaitTarget::Mutex {
                    id,
                    owner,
                    queue_len,
                } => match owner {
                    Some((o, n)) => writeln!(
                        f,
                        "mutex #{id} (held by actor {o} '{n}', {queue_len} queued)"
                    )?,
                    None => writeln!(f, "mutex #{id} (unowned, {queue_len} queued)")?,
                },
            }
            writeln!(
                f,
                "    blocked since t={}; recent: [{}]",
                crate::time::format(e.blocked_since),
                e.recent.join(", ")
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("lps", &self.lps.len())
            .field("pending_events", &self.pending_events())
            .field("actors", &self.actors.len())
            .field("live_actors", &self.live_actors)
            .field("resources", &self.resources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Register `n` completions so tests can push `Complete` events (which
    /// need a home LP to route by).
    fn completions(k: &mut Kernel, n: usize) -> Vec<CompletionId> {
        (0..n).map(|_| k.new_completion()).collect()
    }

    #[test]
    fn event_ordering_is_time_then_seq() {
        let mut k = Kernel::new();
        let c = completions(&mut k, 3);
        k.push_event(10, EventKind::Complete(c[0]));
        k.push_event(5, EventKind::Complete(c[1]));
        k.push_event(5, EventKind::Complete(c[2]));
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[1]));
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[2]));
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[0]));
        assert!(k.pop_event().is_none());
    }

    #[test]
    fn fifo_resource_queues_back_to_back() {
        let mut k = Kernel::new();
        let r = k.new_resource("nic");
        assert_eq!(k.acquire_after(r, 0, 100), 100);
        assert_eq!(k.acquire_after(r, 0, 100), 200); // queued behind first
        assert_eq!(k.acquire_after(r, 500, 100), 600); // idle gap respected
        assert_eq!(k.resource_busy_total(r), 300);
        assert_eq!(k.resource_free_at(r), 600);
    }

    #[test]
    fn completion_state_machine() {
        let mut k = Kernel::new();
        let c = k.new_completion();
        assert!(!k.is_complete(c));
        k.fire_completion(c);
        assert!(k.is_complete(c));
        // firing twice is idempotent
        k.fire_completion(c);
        assert!(k.is_complete(c));
    }

    #[test]
    #[should_panic(expected = "barrier needs at least one party")]
    fn zero_party_barrier_rejected() {
        let mut k = Kernel::new();
        k.new_barrier(0);
    }

    #[test]
    fn near_bucket_preserves_global_order() {
        // A far event at time 5 pushed while now=0 must pop before bucket
        // events pushed at now=5 (it has the smaller sequence number), and
        // bucket events pop FIFO among themselves.
        let mut k = Kernel::new();
        let c = completions(&mut k, 5);
        k.push_event(5, EventKind::Complete(c[0])); // far, seq 0
        k.push_event(3, EventKind::Complete(c[1])); // far, seq 1
        let (_, e) = k.pop_event().unwrap();
        assert_eq!(e.kind, EventKind::Complete(c[1]));
        k.set_now(e.time);
        let (_, e) = k.pop_event().unwrap();
        assert_eq!(e.kind, EventKind::Complete(c[0]));
        k.set_now(e.time); // now = 5
        k.push_event(5, EventKind::Complete(c[2])); // bucket
        k.push_event(5, EventKind::Complete(c[3])); // bucket
        k.push_event(9, EventKind::Complete(c[4])); // far
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[2]));
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[3]));
        assert_eq!(k.pop_event().unwrap().1.kind, EventKind::Complete(c[4]));
        assert!(k.pop_event().is_none());
    }

    #[test]
    fn near_far_boundary_is_exact() {
        // The near window is zero-width: an event at exactly the LP's `now`
        // lands in the near bucket, one nanosecond later goes to the heap.
        // Pinned at the boundary and boundary+1 because the bucket's FIFO
        // invariant only holds for events *at* the current instant.
        let mut k = Kernel::new();
        let c = completions(&mut k, 3);
        let (_, e) = {
            k.push_event(7, EventKind::Complete(c[0]));
            k.pop_event().unwrap()
        };
        k.set_now(e.time); // now = 7
        let heap_before = k.heap_ops;
        k.push_event(7, EventKind::Complete(c[1])); // boundary: near
        assert_eq!(k.heap_ops, heap_before, "event at now must take the near bucket");
        assert_eq!(k.lps[0].near.len(), 1);
        k.push_event(8, EventKind::Complete(c[2])); // boundary+1: far
        assert_eq!(k.heap_ops, heap_before + 1, "event at now+1 must take the far heap");
        assert_eq!(k.lps[0].far.len(), 1);
    }

    #[test]
    fn near_far_boundary_is_per_lp_and_cross_lp_goes_far() {
        // Under partitioning the boundary is the *LP's own* clock, and a
        // cross-LP push never takes the near bucket even when it ties the
        // target's clock — its sender-drawn seq would break FIFO-by-seq.
        let mut k = Kernel::new();
        k.set_lp_count(2);
        k.set_lookahead(5);
        k.enter_lp(0);
        let c0 = k.new_completion(); // homed on LP 0
        k.enter_lp(1);
        let c1 = k.new_completion(); // homed on LP 1
        let c1b = k.new_completion(); // homed on LP 1

        // LP 1 schedules onto itself at its own now (= 0): near.
        k.push_event(0, EventKind::Complete(c1));
        assert_eq!(k.lps[1].near.len(), 1);
        // ... and at now+1: far.
        k.push_event(1, EventKind::Complete(c1b));
        assert_eq!(k.lps[1].far.len(), 1);

        // LP 1 pushes to LP 0 at exactly LP 0's now + lookahead — legal,
        // but it must land in LP 0's far heap, not its near bucket.
        k.push_event(5, EventKind::Complete(c0));
        assert_eq!(k.lps[0].near.len(), 0, "cross-LP events must not enter near");
        assert_eq!(k.lps[0].far.len(), 1);
    }

    #[test]
    fn packed_seqs_interleave_lp_counters() {
        let mut k = Kernel::new();
        k.set_lp_count(2);
        k.enter_lp(0);
        let a = k.new_completion();
        let b = k.new_completion();
        k.enter_lp(1);
        let c = k.new_completion();
        k.enter_lp(0);
        k.push_event(3, EventKind::Complete(a)); // LP0 lseq 0 -> seq 0
        k.push_event(4, EventKind::Complete(b)); // LP0 lseq 1 -> seq 2
        k.enter_lp(1);
        k.push_event(3, EventKind::Complete(c)); // LP1 lseq 0 -> seq 1
        let (lp, e) = k.pop_event().unwrap();
        assert_eq!((lp, e.seq), (0, 0));
        let (lp, e) = k.pop_event().unwrap();
        assert_eq!((lp, e.seq), (1, 1), "time tie breaks by packed seq across LPs");
        let (lp, e) = k.pop_event().unwrap();
        assert_eq!((lp, e.seq), (0, 2));
    }

    #[test]
    #[should_panic(expected = "violates the lookahead floor")]
    fn cross_lp_push_below_lookahead_panics() {
        let mut k = Kernel::new();
        k.set_lp_count(2);
        k.set_lookahead(10);
        k.enter_lp(0);
        let c = k.new_completion();
        k.enter_lp(1);
        k.push_event(9, EventKind::Complete(c)); // 9 < now(0) + 10
    }

    #[test]
    #[should_panic(expected = "before any spawn, completion or event")]
    fn lp_count_is_frozen_once_events_exist() {
        let mut k = Kernel::new();
        let c = k.new_completion();
        k.push_event(1, EventKind::Complete(c));
        k.set_lp_count(2);
    }

    #[test]
    fn pop_safe_respects_neighbor_floors() {
        let mut k = Kernel::new();
        k.set_lp_count(2);
        k.set_lookahead(5);
        k.set_parallel_mode(true);
        k.enter_lp(0);
        let a = k.new_completion();
        k.push_event(20, EventKind::Complete(a)); // LP0 head at 20
        k.enter_lp(1);
        let b = k.new_completion();
        k.push_event(3, EventKind::Complete(b)); // LP1 head at 3
        // LP0's head (20) is not safe: LP1 could still emit up to 3+5=8.
        assert_eq!(k.lbts(0), 8);
        assert!(k.pop_safe(&[0]).is_none());
        // LP1's head (3) is safe: LP0 cannot emit before 20+5.
        let (lp, e) = k.pop_safe(&[1]).expect("LP1 head is safe");
        assert_eq!((lp, e.time), (1, 3));
        assert!(k.lps[1].busy, "popped LP is held busy until finish_lp");
        // While LP1 is busy its floor is its clock, not its (empty) queue.
        k.enter_lp(1);
        k.set_now(3);
        assert_eq!(k.lbts(0), 8);
        k.finish_lp(1);
        // Idle + empty LP1 constrains nobody: LP0's head becomes safe.
        assert_eq!(k.lbts(0), Time::MAX);
        let (lp, e) = k.pop_safe(&[0]).expect("LP0 head safe once LP1 drained");
        assert_eq!((lp, e.time), (0, 20));
    }

    #[test]
    fn bypass_eligibility_is_strict() {
        let mut k = Kernel::new();
        assert!(k.bypass_eligible(7), "empty queue: any future time is next");
        let c = k.new_completion();
        k.push_event(10, EventKind::Complete(c));
        assert!(k.bypass_eligible(9));
        assert!(!k.bypass_eligible(10), "tie must go to the queued event");
        assert!(!k.bypass_eligible(11));
        k.set_fast_path(false);
        assert!(!k.bypass_eligible(9), "disabled fast path is never eligible");
    }

    #[test]
    fn bypass_resume_accounts_like_a_popped_event() {
        let mut k = Kernel::new();
        k.record_event_log(true);
        let exit = k.new_completion();
        k.actors.push(ActorMeta {
            name: "a".into(),
            status: ActorStatus::Running,
            lp: 0,
            exit,
            blocked_on: BlockKind::Start,
            wake_epoch: 3,
            timed_out: false,
            blocked_since: 0,
            recent: VecDeque::new(),
        });
        k.bypass_resume(0, 42);
        assert_eq!(k.now(), 42);
        assert_eq!(k.events_processed(), 1);
        assert_eq!(k.fast_path_hits, 1);
        assert_eq!(k.actors[0].wake_epoch, 4);
        let log = k.take_event_log();
        assert_eq!(
            log,
            vec![TraceEvent { time: 42, seq: 0, kind: TraceKind::Wake(0) }]
        );
        // the consumed sequence number is gone: the next push gets seq 1
        let c = k.new_completion();
        k.push_event(50, EventKind::Complete(c));
        assert_eq!(k.pop_event().unwrap().1.seq, 1);
    }
}
