//! Lightweight execution contexts for actors: stackful coroutines (the
//! default) or dedicated OS threads (the portable fallback), behind one
//! resume/yield interface.
//!
//! The engine guarantees that at most one party — the scheduler or a single
//! actor — is logically running at any instant, so an actor does not need a
//! kernel thread of its own: it needs a stack and a saved register file. The
//! coroutine backend gives it exactly that. A context switch is ~10 callee-
//! saved register moves in user space (no futex, no syscall, no scheduler
//! round trip), which is what takes a scheduler→actor handoff from
//! microseconds to ~100ns and lets a simulation hold a million actors —
//! memory, not kernel thread limits, becomes the bound.
//!
//! Two backends implement the same protocol:
//!
//! * [`SwitchCoro`] — a hand-rolled stackful coroutine: a malloc-backed
//!   [`Stack`] plus an assembly context switch (`hupc_sim_ctx_swap`) that
//!   saves the callee-saved registers, swaps stack pointers, and resumes the
//!   peer. Available on Linux x86_64 / aarch64 ([`SWITCH_SUPPORTED`]).
//! * [`ThreadCoro`] — one parked OS thread per actor, rendezvousing through
//!   the spin-then-park [`Handoff`]. This is the pre-coroutine execution
//!   model, kept fully working: it is portable, it keeps guard-page stack
//!   protection, and running both backends over the same program is how the
//!   equivalence tests pin that the switch is observably identical.
//!
//! The protocol, either way: the scheduler calls [`Coro::resume`] with a
//! [`ResumeArg`]; the actor runs until it calls [`yield_parked`] (returning
//! [`Poll::Parked`] to the scheduler) or its body returns ([`Poll::Finished`]).
//! Panics never cross the switch boundary: the engine's body wrapper catches
//! everything on the actor's own stack.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::handoff::Handoff;

/// An actor body as the backends consume it: the engine's wrapped closure,
/// invoked with the first resume argument.
pub(crate) type CoroBody = Box<dyn FnOnce(ResumeArg) + Send + 'static>;

/// Whether the assembly context-switch backend is available on this target.
pub(crate) const SWITCH_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Which execution-context implementation backs each actor of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActorBackend {
    /// Stackful coroutines resumed in-place by the scheduler (default where
    /// supported): handoffs are a user-space register swap, stacks come from
    /// the heap with a configurable size, and finished actors' stacks are
    /// pooled for reuse.
    Coroutine,
    /// One OS thread per actor, parked on a spin-then-park handoff between
    /// resumes — the portable fallback, and the reference implementation the
    /// coroutine backend is equivalence-tested against.
    OsThread,
}

/// What a resumed actor is being told to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResumeArg {
    /// Proceed normally.
    Run,
    /// The simulation is being torn down; unwind out of user code.
    Shutdown,
}

impl ResumeArg {
    fn encode(self) -> usize {
        match self {
            ResumeArg::Run => 0,
            ResumeArg::Shutdown => 1,
        }
    }
    fn decode(v: usize) -> Self {
        match v {
            0 => ResumeArg::Run,
            _ => ResumeArg::Shutdown,
        }
    }
}

/// Why control came back to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Poll {
    /// The actor parked in [`yield_parked`]; resume it again later.
    Parked,
    /// The actor's body returned; its context may be reclaimed.
    Finished,
}

impl Poll {
    fn encode(self) -> usize {
        match self {
            Poll::Parked => 0,
            Poll::Finished => 1,
        }
    }
    fn decode(v: usize) -> Self {
        match v {
            0 => Poll::Parked,
            _ => Poll::Finished,
        }
    }
}

// ---------------------------------------------------------------------------
// Yield dispatch: which context the currently running actor should yield
// through. Set around every resume (and in a thread-backend actor's thread),
// saved/restored so nested simulations (an actor driving its own inner
// Simulation) unwind correctly.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum CurrentYield {
    None,
    Switch(*const SwitchControl),
    Thread(*const ThreadShared),
}

thread_local! {
    static CURRENT: Cell<CurrentYield> = const { Cell::new(CurrentYield::None) };
}

/// Park the calling actor and hand control back to the scheduler; returns
/// when the scheduler next resumes this actor, with the argument it passed.
/// Must be called from inside an actor body (the engine's `Ctx::block` is the
/// only caller).
pub(crate) fn yield_parked() -> ResumeArg {
    match CURRENT.with(Cell::get) {
        CurrentYield::Switch(cb) => unsafe {
            // SAFETY: `cb` was published by the `resume` frame currently
            // suspended underneath us on this OS thread; the control block
            // outlives the resume (it is owned by the SwitchCoro being
            // resumed).
            let out = hupc_sim_ctx_swap(
                (*cb).coro_sp.as_ptr(),
                (*cb).sched_sp.get(),
                Poll::Parked.encode(),
            );
            ResumeArg::decode(out)
        },
        CurrentYield::Thread(ts) => unsafe {
            // SAFETY: published by this actor thread's own entry frame; the
            // Arc'd ThreadShared outlives the body running above it.
            (*ts).yield_parked()
        },
        CurrentYield::None => {
            panic!("simcall blocked outside an actor: yield_parked has no scheduler to return to")
        }
    }
}

// ---------------------------------------------------------------------------
// Stacks
// ---------------------------------------------------------------------------

/// Canary pattern written at the low (overflow) end of every coroutine stack.
const CANARY: usize = 0x5AFE_57AC_C0DE_D00D_u64 as usize;
/// Number of canary words.
const CANARY_WORDS: usize = 4;
/// Floor for requested stack sizes; smaller requests are rounded up.
pub(crate) const MIN_STACK: usize = 16 * 1024;

/// A heap-allocated coroutine stack.
///
/// Stacks come from the global allocator rather than `mmap` with a guard
/// page: at million-actor scale, per-stack mappings would exhaust the
/// kernel's VMA budget (`vm.max_map_count`, ~65k by default) long before
/// memory runs out, while malloc arenas stay within a handful of mappings
/// and only fault in the pages a stack actually touches. The trade-off is
/// that overflow protection is a checked canary (verified after every
/// resume) instead of a hardware fault; the OS-thread backend retains real
/// guard pages for code that wants them.
pub(crate) struct Stack {
    base: *mut u8,
    size: usize,
}

// SAFETY: the stack is a plain heap allocation; ownership moves with the
// struct and nothing aliases it.
unsafe impl Send for Stack {}

impl Stack {
    pub fn new(size: usize) -> Stack {
        let size = size.max(MIN_STACK).next_multiple_of(4096);
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("stack layout");
        // SAFETY: non-zero size, valid alignment.
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "failed to allocate a {size}-byte actor stack");
        let s = Stack { base, size };
        s.arm_canary();
        s
    }

    /// Usable size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// One-past-the-end of the stack (stacks grow down); 16-byte aligned.
    fn top(&self) -> *mut u8 {
        // SAFETY: base..base+size is one allocation.
        unsafe { self.base.add(self.size) }
    }

    fn arm_canary(&self) {
        for i in 0..CANARY_WORDS {
            // SAFETY: the first CANARY_WORDS words of the allocation.
            unsafe { (self.base as *mut usize).add(i).write(CANARY) };
        }
    }

    /// Panic if the low-end canary was overwritten (stack overflow).
    fn check_canary(&self) {
        for i in 0..CANARY_WORDS {
            // SAFETY: as in arm_canary.
            let w = unsafe { (self.base as *const usize).add(i).read() };
            assert!(
                w == CANARY,
                "actor stack overflow: canary clobbered on a {}-byte coroutine stack \
                 (raise it with Simulation::set_stack_size or Ctx::spawn_with_stack)",
                self.size
            );
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.size, 16).expect("stack layout");
        // SAFETY: allocated in Stack::new with the same layout.
        unsafe { std::alloc::dealloc(self.base, layout) };
    }
}

// ---------------------------------------------------------------------------
// The assembly context switch (Linux x86_64 / aarch64)
// ---------------------------------------------------------------------------
//
// `hupc_sim_ctx_swap(save, to, arg)`: push the callee-saved register file on
// the current stack, store the resulting stack pointer through `save`, adopt
// `to` as the new stack pointer, pop the register file saved there, and
// return `arg` — which the resumed side observes as the return value of *its*
// last `hupc_sim_ctx_swap` call (or, on first entry, as the argument the
// bootstrap trampoline forwards to `hupc_sim_coro_entry`).
//
// Only the integer callee-saved registers (plus d8–d15 on aarch64) are
// swapped. The floating-point control/status words (mxcsr / fpcr) are *not*:
// actor code in this workspace never changes rounding modes, and skipping
// them keeps the switch at its minimum cost. Revisit if any workload starts
// toying with fenv.
//
// Unwinding never crosses this boundary — the engine catches every panic on
// the coroutine's own stack — so the asm carries no CFI.

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
core::arch::global_asm!(
    ".text",
    ".balign 16",
    ".globl hupc_sim_ctx_swap",
    ".hidden hupc_sim_ctx_swap",
    ".type hupc_sim_ctx_swap, @function",
    "hupc_sim_ctx_swap:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov qword ptr [rdi], rsp",
    "mov rsp, rsi",
    "mov rax, rdx",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size hupc_sim_ctx_swap, . - hupc_sim_ctx_swap",
    // First-entry trampoline: the bootstrap frame "returns" here with the
    // control-block pointer in rbx (planted by `bootstrap_frame`) and the
    // first resume argument in rax. Realign, zero the frame pointer so
    // backtraces terminate cleanly, and enter Rust.
    ".balign 16",
    ".globl hupc_sim_ctx_entry",
    ".hidden hupc_sim_ctx_entry",
    ".type hupc_sim_ctx_entry, @function",
    "hupc_sim_ctx_entry:",
    "mov rdi, rbx",
    "mov rsi, rax",
    "xor ebp, ebp",
    "and rsp, -16",
    "call hupc_sim_coro_entry",
    "ud2",
    ".size hupc_sim_ctx_entry, . - hupc_sim_ctx_entry",
);

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
core::arch::global_asm!(
    ".text",
    ".balign 16",
    ".globl hupc_sim_ctx_swap",
    ".hidden hupc_sim_ctx_swap",
    ".type hupc_sim_ctx_swap, @function",
    "hupc_sim_ctx_swap:",
    "sub sp, sp, #160",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8,  d9,  [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "mov x10, x2",
    "mov sp, x1",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8,  d9,  [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "mov x0, x10",
    "ret",
    ".size hupc_sim_ctx_swap, . - hupc_sim_ctx_swap",
    // First entry: x19 carries the control block (from the bootstrap frame),
    // x0 the first resume argument, x30 pointed here by the frame's saved lr.
    ".balign 16",
    ".globl hupc_sim_ctx_entry",
    ".hidden hupc_sim_ctx_entry",
    ".type hupc_sim_ctx_entry, @function",
    "hupc_sim_ctx_entry:",
    "mov x1, x0",
    "mov x0, x19",
    "mov x29, xzr",
    "mov x30, xzr",
    "bl hupc_sim_coro_entry",
    "brk #0x1",
    ".size hupc_sim_ctx_entry, . - hupc_sim_ctx_entry",
);

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
extern "C" {
    /// See the assembly block above.
    fn hupc_sim_ctx_swap(save: *mut *mut u8, to: *mut u8, arg: usize) -> usize;
    /// Label only — never called from Rust; its address seeds bootstrap frames.
    fn hupc_sim_ctx_entry();
}

// Stubs so the module typechecks on targets without the asm backend; the
// engine never selects ActorBackend::Coroutine there (SWITCH_SUPPORTED is
// false), so these are unreachable.
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn hupc_sim_ctx_swap(_save: *mut *mut u8, _to: *mut u8, _arg: usize) -> usize {
    unreachable!("coroutine backend selected on an unsupported target")
}
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn hupc_sim_ctx_entry() {
    unreachable!("coroutine backend selected on an unsupported target")
}

/// Saved-register-file slot count of the bootstrap frame (see
/// `bootstrap_frame`).
#[cfg(target_arch = "x86_64")]
const BOOT_WORDS: usize = 7; // r15 r14 r13 r12 rbx rbp + return address
#[cfg(not(target_arch = "x86_64"))]
const BOOT_WORDS: usize = 20; // x19..x28, x29, x30, d8..d15

/// Lay a fake `hupc_sim_ctx_swap` frame at the top of a fresh stack so the
/// first `resume` "returns" into `hupc_sim_ctx_entry` with the control-block
/// pointer in a callee-saved register. Returns the stack pointer to resume.
unsafe fn bootstrap_frame(stack: &Stack, cb: *const SwitchControl) -> *mut u8 {
    let top = stack.top() as *mut usize;
    let sp = top.sub(BOOT_WORDS.next_multiple_of(2));
    std::ptr::write_bytes(sp, 0, BOOT_WORDS);
    #[cfg(target_arch = "x86_64")]
    {
        // Layout (low→high), matching the pops in hupc_sim_ctx_swap:
        // [r15][r14][r13][r12][rbx][rbp][return address]
        sp.add(4).write(cb as usize); // rbx
        sp.add(6).write(hupc_sim_ctx_entry as *const () as usize); // ret target
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Matches the ldp sequence: x19 at +0, x30 (lr) at +88 bytes.
        sp.write(cb as usize); // x19
        sp.add(11).write(hupc_sim_ctx_entry as *const () as usize); // x30
    }
    sp as *mut u8
}

/// Shared control block of one stackful coroutine. Lives boxed (stable
/// address) in the owning [`SwitchCoro`]; the running coroutine reaches it
/// through the thread-local [`CURRENT`] pointer.
struct SwitchControl {
    /// Stack pointer of the suspended coroutine (valid while suspended).
    coro_sp: Cell<*mut u8>,
    /// Stack pointer of the scheduler side (valid while the coroutine runs).
    sched_sp: Cell<*mut u8>,
    /// The actor body, taken by the entry shim on first resume.
    task: Cell<Option<CoroBody>>,
    finished: Cell<bool>,
}

/// Rust landing point of the bootstrap trampoline: runs the actor body on
/// the coroutine stack, then switches back to the scheduler for the last
/// time, reporting [`Poll::Finished`].
#[no_mangle]
unsafe extern "C" fn hupc_sim_coro_entry(cb: *mut SwitchControl, arg: usize) -> ! {
    let task = (*cb).task.take().expect("coroutine entered twice");
    // Backstop only: the engine's body wrapper catches every panic itself.
    // Unwinding must never reach the bootstrap frame (there is no unwind
    // info past it), so anything escaping here is a bug — abort loudly.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        task(ResumeArg::decode(arg))
    }));
    if r.is_err() {
        eprintln!("fatal: panic escaped an actor body wrapper; aborting");
        std::process::abort();
    }
    (*cb).finished.set(true);
    // Final switch out. The save slot is never read again (finished
    // coroutines are not resumed); reuse coro_sp.
    hupc_sim_ctx_swap(
        (*cb).coro_sp.as_ptr(),
        (*cb).sched_sp.get(),
        Poll::Finished.encode(),
    );
    unreachable!("finished coroutine resumed");
}

/// A stackful coroutine: heap stack + saved register file + body.
pub(crate) struct SwitchCoro {
    cb: Box<SwitchControl>,
    stack: Option<Stack>,
    finished: bool,
}

// SAFETY: all of the raw state (control block, saved stack) is reached only
// through `&mut self` in `resume`, never concurrently. A *suspended* actor's
// stack may hold non-Send locals, so moving a Simulation with suspended
// actors across threads and resuming there is as (un)sound as it was with
// the `Send` closure requirement alone — the same caveat every stackful
// coroutine runtime carries. Coroutines are created lazily at first
// dispatch, so a Simulation that has not started running carries no
// suspended stacks at all.
unsafe impl Send for SwitchCoro {}

impl SwitchCoro {
    pub fn new(stack: Stack, body: CoroBody) -> SwitchCoro {
        stack.arm_canary();
        let cb = Box::new(SwitchControl {
            coro_sp: Cell::new(std::ptr::null_mut()),
            sched_sp: Cell::new(std::ptr::null_mut()),
            task: Cell::new(Some(body)),
            finished: Cell::new(false),
        });
        // SAFETY: fresh stack, stable boxed control block.
        let sp = unsafe { bootstrap_frame(&stack, &*cb) };
        cb.coro_sp.set(sp);
        SwitchCoro {
            cb,
            stack: Some(stack),
            finished: false,
        }
    }

    pub fn resume(&mut self, arg: ResumeArg) -> Poll {
        assert!(!self.finished, "resumed a finished coroutine");
        let prev = CURRENT.with(|c| c.replace(CurrentYield::Switch(&*self.cb)));
        // SAFETY: coro_sp holds the suspended context's stack pointer (the
        // bootstrap frame on first resume, a swap frame afterwards); the
        // stack it points into is owned by self and alive.
        let out = unsafe {
            hupc_sim_ctx_swap(
                self.cb.sched_sp.as_ptr(),
                self.cb.coro_sp.get(),
                arg.encode(),
            )
        };
        CURRENT.with(|c| c.set(prev));
        if let Some(s) = &self.stack {
            s.check_canary();
        }
        let poll = Poll::decode(out);
        if poll == Poll::Finished {
            debug_assert!(self.cb.finished.get());
            self.finished = true;
        }
        poll
    }

    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Reclaim the stack of a finished coroutine for reuse.
    pub fn take_stack(&mut self) -> Option<Stack> {
        debug_assert!(self.finished);
        self.stack.take()
    }
}

// ---------------------------------------------------------------------------
// OS-thread fallback backend
// ---------------------------------------------------------------------------

/// Rendezvous state between the scheduler and one actor thread. `chan`
/// carries the resume argument one way and the poll result the other; the
/// strict run-one-party-at-a-time alternation makes a single slot race-free.
struct ThreadShared {
    to_actor: Handoff,
    to_sched: Handoff,
    chan: AtomicUsize,
}

impl ThreadShared {
    /// Actor-side park (runs on the actor's own OS thread).
    fn yield_parked(&self) -> ResumeArg {
        self.chan.store(Poll::Parked.encode(), Ordering::Release);
        self.to_sched.signal();
        self.to_actor.wait();
        ResumeArg::decode(self.chan.load(Ordering::Acquire))
    }
}

/// One actor on a dedicated OS thread, driven through the same
/// resume/yield protocol as [`SwitchCoro`].
pub(crate) struct ThreadCoro {
    shared: Arc<ThreadShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    finished: bool,
}

impl ThreadCoro {
    pub fn new(name: String, stack_size: usize, body: CoroBody) -> ThreadCoro {
        let shared = Arc::new(ThreadShared {
            to_actor: Handoff::new(),
            to_sched: Handoff::new(),
            chan: AtomicUsize::new(0),
        });
        let ts = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(name)
            .stack_size(stack_size.max(MIN_STACK))
            .spawn(move || {
                ts.to_actor.wait();
                let arg = ResumeArg::decode(ts.chan.load(Ordering::Acquire));
                let prev = CURRENT.with(|c| c.replace(CurrentYield::Thread(&*ts)));
                body(arg);
                CURRENT.with(|c| c.set(prev));
                ts.chan.store(Poll::Finished.encode(), Ordering::Release);
                ts.to_sched.signal();
            })
            .expect("failed to spawn actor thread");
        ThreadCoro {
            shared,
            thread: Some(thread),
            finished: false,
        }
    }

    pub fn resume(&mut self, arg: ResumeArg) -> Poll {
        assert!(!self.finished, "resumed a finished actor thread");
        self.shared.chan.store(arg.encode(), Ordering::Release);
        self.shared.to_actor.signal();
        self.shared.to_sched.wait();
        let poll = Poll::decode(self.shared.chan.load(Ordering::Acquire));
        if poll == Poll::Finished {
            self.finished = true;
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
        poll
    }

    pub fn finished(&self) -> bool {
        self.finished
    }
}

impl Drop for ThreadCoro {
    fn drop(&mut self) {
        // A live thread here means the engine is dropping an unfinished
        // actor without the shutdown protocol — resume-with-Shutdown in
        // Simulation::drop is the ordinary path. Unblock and detach rather
        // than deadlock.
        if let Some(t) = self.thread.take() {
            if !self.finished {
                self.shared.chan.store(ResumeArg::Shutdown.encode(), Ordering::Release);
                self.shared.to_actor.signal();
            }
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Unified handle
// ---------------------------------------------------------------------------

/// One actor's execution context, whichever backend it runs on.
pub(crate) enum Coro {
    Switch(SwitchCoro),
    Thread(ThreadCoro),
}

impl Coro {
    pub fn resume(&mut self, arg: ResumeArg) -> Poll {
        match self {
            Coro::Switch(c) => c.resume(arg),
            Coro::Thread(c) => c.resume(arg),
        }
    }

    pub fn finished(&self) -> bool {
        match self {
            Coro::Switch(c) => c.finished(),
            Coro::Thread(c) => c.finished(),
        }
    }

    /// Reclaim the coroutine stack (switch backend only) once finished.
    pub fn take_stack(&mut self) -> Option<Stack> {
        match self {
            Coro::Switch(c) => c.take_stack(),
            Coro::Thread(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_backend(mk: impl Fn(Box<dyn FnOnce(ResumeArg) + Send>) -> Coro) {
        // Full protocol: run → yield → run → yield → finish, with state
        // living across yields on the actor's stack.
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        let mut c = mk(Box::new(move |first| {
            assert_eq!(first, ResumeArg::Run);
            let mut local = vec![1u64, 2, 3]; // stack/heap state across yields
            l2.lock().unwrap().push("start");
            let a = yield_parked();
            assert_eq!(a, ResumeArg::Run);
            local.push(4);
            l2.lock().unwrap().push("mid");
            let b = yield_parked();
            assert_eq!(b, ResumeArg::Run);
            assert_eq!(local, vec![1, 2, 3, 4]);
            l2.lock().unwrap().push("end");
        }));
        assert!(!c.finished());
        assert_eq!(c.resume(ResumeArg::Run), Poll::Parked);
        assert_eq!(c.resume(ResumeArg::Run), Poll::Parked);
        assert_eq!(c.resume(ResumeArg::Run), Poll::Finished);
        assert!(c.finished());
        assert_eq!(*log.lock().unwrap(), vec!["start", "mid", "end"]);
    }

    #[test]
    fn thread_backend_protocol() {
        run_backend(|f| Coro::Thread(ThreadCoro::new("t".into(), 1 << 20, f)));
    }

    #[test]
    fn switch_backend_protocol() {
        if !SWITCH_SUPPORTED {
            return;
        }
        run_backend(|f| Coro::Switch(SwitchCoro::new(Stack::new(64 * 1024), f)));
    }

    #[test]
    fn switch_stack_is_reusable() {
        if !SWITCH_SUPPORTED {
            return;
        }
        let mut stack = Some(Stack::new(64 * 1024));
        for round in 0..100u64 {
            let mut c = SwitchCoro::new(
                stack.take().unwrap(),
                Box::new(move |_| {
                    let v: Vec<u64> = (0..round).collect();
                    let _ = yield_parked();
                    assert_eq!(v.iter().sum::<u64>(), round * round.saturating_sub(1) / 2);
                }),
            );
            assert_eq!(c.resume(ResumeArg::Run), Poll::Parked);
            assert_eq!(c.resume(ResumeArg::Run), Poll::Finished);
            stack = c.take_stack();
            assert!(stack.is_some());
        }
    }

    #[test]
    fn switch_many_coroutines_interleave() {
        if !SWITCH_SUPPORTED {
            return;
        }
        let n = 64;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut coros: Vec<Coro> = (0..n)
            .map(|i| {
                let c = Arc::clone(&counter);
                Coro::Switch(SwitchCoro::new(
                    Stack::new(32 * 1024),
                    Box::new(move |_| {
                        for _ in 0..i % 5 {
                            let _ = yield_parked();
                        }
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                ))
            })
            .collect();
        // Round-robin until all finish.
        while coros.iter().any(|c| !c.finished()) {
            for c in coros.iter_mut() {
                if !c.finished() {
                    let _ = c.resume(ResumeArg::Run);
                }
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn switch_panic_is_caught_inside_the_wrapper() {
        if !SWITCH_SUPPORTED {
            return;
        }
        // The engine wraps bodies in catch_unwind; model that here and check
        // the panic stays on the coroutine stack.
        let mut c = SwitchCoro::new(
            Stack::new(64 * 1024),
            Box::new(|_| {
                let r = std::panic::catch_unwind(|| panic!("inner boom"));
                assert!(r.is_err());
            }),
        );
        assert_eq!(c.resume(ResumeArg::Run), Poll::Finished);
    }

    #[test]
    fn canary_detects_overflow_writes() {
        let s = Stack::new(MIN_STACK);
        s.check_canary();
        unsafe { (s.base as *mut usize).write(0xdead) };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.check_canary()));
        assert!(r.is_err(), "clobbered canary must be detected");
        s.arm_canary(); // restore so Drop-era debug checks stay quiet
    }
}
