//! Virtual time: `u64` nanoseconds plus construction / formatting helpers.
//!
//! All simulation timestamps and durations share this unit. Costs are
//! computed in `f64` (bytes / bandwidth and the like) and rounded to the
//! nearest nanosecond, which keeps event ordering integral and deterministic.

/// A point in virtual time or a duration, in nanoseconds.
pub type Time = u64;

/// `n` nanoseconds.
#[inline]
pub const fn ns(n: u64) -> Time {
    n
}

/// `n` microseconds.
#[inline]
pub const fn us(n: u64) -> Time {
    n * 1_000
}

/// `n` milliseconds.
#[inline]
pub const fn ms(n: u64) -> Time {
    n * 1_000_000
}

/// `n` seconds.
#[inline]
pub const fn secs(n: u64) -> Time {
    n * 1_000_000_000
}

/// Convert a duration in (possibly fractional) seconds to virtual time,
/// rounding to the nearest nanosecond. Negative or non-finite inputs clamp
/// to zero.
#[inline]
pub fn from_secs_f64(s: f64) -> Time {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    (s * 1e9).round() as Time
}

/// Virtual time as fractional seconds.
#[inline]
pub fn as_secs_f64(t: Time) -> f64 {
    t as f64 / 1e9
}

/// Virtual time as fractional microseconds.
#[inline]
pub fn as_us_f64(t: Time) -> f64 {
    t as f64 / 1e3
}

/// Virtual time as fractional milliseconds.
#[inline]
pub fn as_ms_f64(t: Time) -> f64 {
    t as f64 / 1e6
}

/// Human-readable rendering with an auto-selected unit (`ns`, `us`, `ms`, `s`).
pub fn format(t: Time) -> String {
    if t < 1_000 {
        format!("{t}ns")
    } else if t < 1_000_000 {
        format!("{:.2}us", as_us_f64(t))
    } else if t < 1_000_000_000 {
        format!("{:.2}ms", as_ms_f64(t))
    } else {
        format!("{:.3}s", as_secs_f64(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_compose() {
        assert_eq!(us(1), ns(1_000));
        assert_eq!(ms(1), us(1_000));
        assert_eq!(secs(1), ms(1_000));
        assert_eq!(secs(3), 3_000_000_000);
    }

    #[test]
    fn f64_round_trip() {
        assert_eq!(from_secs_f64(1.5), 1_500_000_000);
        assert_eq!(from_secs_f64(0.0), 0);
        assert_eq!(from_secs_f64(-2.0), 0);
        assert_eq!(from_secs_f64(f64::NAN), 0);
        let t = us(1234);
        assert!((as_secs_f64(t) - 0.001234).abs() < 1e-12);
    }

    #[test]
    fn rounding_is_nearest() {
        assert_eq!(from_secs_f64(1.4e-9), 1);
        assert_eq!(from_secs_f64(1.6e-9), 2);
    }

    #[test]
    fn formatting_picks_unit() {
        assert_eq!(format(12), "12ns");
        assert_eq!(format(us(12)), "12.00us");
        assert_eq!(format(ms(12)), "12.00ms");
        assert_eq!(format(secs(2)), "2.000s");
    }
}
