//! `hupc-sim` — a deterministic discrete-event simulation engine with
//! lightweight coroutine actors and virtual time.
//!
//! The engine is the substrate every other `hupc` crate runs on. It plays the
//! role the physical clusters (*Lehman*, *Pyramid*) play in the thesis
//! "Exploiting Hierarchical Parallelism Using UPC": code executes for real,
//! but *time* is virtual and charged against modeled resources (CPU cores,
//! memory controllers, NICs, network links).
//!
//! # Execution model
//!
//! Every simulated execution stream (a UPC thread, a sub-thread, an MPI rank)
//! is an **actor**: a stackful coroutine that runs user Rust code, resumed in
//! place by the scheduler (see [`ActorBackend`]; a portable one-OS-thread-
//! per-actor fallback implements the same protocol). On the default
//! sequential backend exactly one actor runs at any instant; an actor
//! executes until it performs a *simcall* ([`Ctx::advance`],
//! [`Ctx::acquire`], [`Ctx::wait`], [`Ctx::barrier_wait`], …), at which
//! point control switches back to the central scheduler. The scheduler pops
//! the event queue in `(virtual_time, sequence)` order and resumes the next
//! runnable actor. This makes every run bit-for-bit deterministic while
//! still letting user code use plain Rust data structures.
//!
//! The simulation can additionally be partitioned into **logical processes**
//! ([`Simulation::set_lp_count`], [`Simulation::spawn_on`]) and dispatched
//! on multiple host cores with [`SimBackend::Parallel`] — a conservative
//! parallel engine using cross-LP lookahead ([`Simulation::set_lookahead`])
//! for synchronization. Actors on the *same* LP still never run
//! concurrently (so [`SimCell`] sharing stays LP-local), and virtual-time
//! behavior — events, times, sequence numbers — is identical to the
//! sequential backend. See DESIGN.md §12.
//!
//! Because an actor is a heap stack plus a saved register file — not a kernel
//! thread — a handoff costs ~100ns of user-space register swapping and a
//! simulation can hold **millions of actors**: memory (tunable via
//! [`Simulation::set_stack_size`] / [`Ctx::spawn_with_stack`]), not kernel
//! thread limits, bounds actor count.
//!
//! Because actors never run concurrently, shared state can be held in
//! [`SimCell`]s — interior-mutability cells whose safety is guaranteed by the
//! engine's serialization (and policed by a runtime borrow flag).
//!
//! # Scheduler-bypass fast path
//!
//! A simcall whose resulting wake is provably the next event to run and
//! resumes the *same* actor (a plain advance, an uncontended resource
//! charge) is processed inline under the kernel lock — the actor keeps
//! running with no scheduler handoff at all. Virtual-time behavior is
//! bit-identical with the fast path on or off (same events, times and
//! sequence numbers); only host speed and the [`SimulationStats`] counters
//! differ. See [`Kernel::set_fast_path`], [`Ctx::advance_lazy`] and
//! DESIGN.md §1 for the invariants.
//!
//! # Quick example
//!
//! ```
//! use hupc_sim::{Simulation, time};
//!
//! let mut sim = Simulation::new();
//! let bar = sim.kernel().new_barrier(2);
//! for id in 0..2 {
//!     sim.spawn(format!("worker{id}"), move |ctx| {
//!         ctx.advance(time::us(10) * (id as u64 + 1));
//!         ctx.barrier_wait(bar);
//!         assert_eq!(ctx.now(), time::us(20)); // barrier releases at max arrival
//!     });
//! }
//! sim.run();
//! ```

mod cell;
mod coro;
mod engine;
mod handoff;
mod kernel;
mod queue;
pub mod time;

pub use cell::SimCell;
pub use engine::{
    actor_backend_default, set_actor_backend_default, set_sim_backend_default,
    sim_backend_default, ActorBackend, ActorRef, Ctx, SimBackend, SimError, SimResult,
    Simulation, SimulationStats, WaitTimedOut, DEFAULT_STACK_SIZE,
};
pub use kernel::{
    fast_path_default, set_fast_path_default, BarrierId, CompletionId, CondId, Kernel,
    MutexId, ReadyEvent, ReadyEventKind, ResourceId, SchedulePolicy, TraceEvent,
    TraceKind, WaitEdge, WaitGraph, WaitTarget,
};
pub use queue::SimQueue;
pub use time::Time;

/// Structured virtual-time event tracing (re-export of `hupc-trace`).
/// Present only with the `trace` feature (on by default); see
/// [`Simulation::set_tracer`] and [`Ctx::trace_emit`].
#[cfg(feature = "trace")]
pub use hupc_trace as trace;
